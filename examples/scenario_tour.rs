//! Define a custom multi-phase scenario, run it, and round-trip its trace.
//!
//! This is the worked example from `docs/EXPERIMENTS.md`: a lunch-rush
//! shape (quiet morning → rush with short think times → quiet afternoon)
//! that the paper never evaluated, driven through the real gateway-ladder
//! and broker policy code by the scenario runner.
//!
//! Run with: `cargo run --release --example scenario_tour`

use throttledb::engine::ServerConfig;
use throttledb::scenario::{Phase, Scenario, ScenarioRunner, Trace};
use throttledb::sim::SimDuration;
use throttledb::workload::WorkloadMix;

fn main() {
    // Base machine: the paper's 8-CPU / 4 GB box, quick reporting slices,
    // no warm-up exclusion (we want every phase reported).
    let mut base = ServerConfig::quick(1, true);
    base.warmup = SimDuration::ZERO;
    base.seed = 42;

    let phases = vec![
        Phase::steady(
            "morning",
            SimDuration::from_secs(600),
            6,
            WorkloadMix::paper_default(0.05),
        ),
        // The rush: twice the users, all-SALES, barely any think time.
        Phase::steady(
            "lunch-rush",
            SimDuration::from_secs(600),
            16,
            WorkloadMix::sales_only(),
        )
        .with_think_time(SimDuration::from_secs(5)),
        Phase::steady(
            "afternoon",
            SimDuration::from_secs(600),
            6,
            WorkloadMix::new(0.70, 0.25, 0.05),
        ),
    ];
    let scenario = Scenario::new(
        "lunch_rush",
        "a custom scenario the paper never ran",
        base,
        phases,
    );

    println!("characterizing workloads through the real optimizer...");
    let outcome = ScenarioRunner::new(scenario).record_trace(true).run();
    print!("{}", outcome.render_report());

    // The recorded trace is a regression golden file: its replay must
    // reproduce the per-phase reports exactly, even after a round trip
    // through the text format.
    let trace = outcome.trace.expect("recording was enabled");
    let decoded = Trace::decode(&trace.encode()).expect("own encoding decodes");
    assert_eq!(decoded.replay(), outcome.phases);
    println!(
        "trace: {} events, digest {:016x}; replay reproduces all {} phases",
        trace.len(),
        trace.digest(),
        outcome.phases.len()
    );
}
