//! A real multi-threaded compile storm: many OS threads compile uniquified
//! SALES queries simultaneously through the threaded gateway ladder, showing
//! that the medium/big gateways serialize the memory hogs while small
//! diagnostic queries keep flowing.
//!
//! Run with: `cargo run --release -p throttledb-engine --example adhoc_compile_storm`

use std::sync::Arc;
use std::thread;
use throttledb_catalog::{sales_schema, SalesScale};
use throttledb_core::{ThreadedThrottle, ThrottleConfig};
use throttledb_membroker::{BrokerConfig, MemoryBroker, SubcomponentKind};
use throttledb_optimizer::Optimizer;
use throttledb_sim::SimRng;
use throttledb_sqlparse::parse;
use throttledb_workload::{oltp_templates, sales_templates, Uniquifier};

fn main() {
    let broker = MemoryBroker::new(BrokerConfig::paper_machine());
    let throttle = Arc::new(ThreadedThrottle::new(
        ThrottleConfig::for_cpus(2),
        broker.clone(),
    ));
    let catalog = Arc::new(sales_schema(SalesScale::paper()));

    let mut handles = Vec::new();
    for worker in 0..6u64 {
        let throttle = Arc::clone(&throttle);
        let broker = Arc::clone(&broker);
        let catalog = Arc::clone(&catalog);
        handles.push(thread::spawn(move || {
            let uniquifier = Uniquifier::new();
            let mut rng = SimRng::seed_from_u64(worker);
            let optimizer = Optimizer::new(&catalog);
            let templates = if worker % 3 == 0 {
                oltp_templates()
            } else {
                sales_templates()
            };
            for i in 0..2u64 {
                let template = &templates[(worker as usize + i as usize) % templates.len()];
                let sql = uniquifier.uniquify(&template.sql, &mut rng, worker * 10 + i);
                let stmt = parse(&sql).expect("uniquified SQL parses");
                let clerk = broker.register(SubcomponentKind::Compilation);
                let governor = throttle.governor();
                match optimizer.optimize_with_governor(&stmt, governor, Some(clerk)) {
                    Ok(out) => println!(
                        "worker {worker}: {} compiled, peak {:.0} MB{}",
                        template.name,
                        out.stats.peak_memory_bytes as f64 / 1e6,
                        if out.stats.finished_best_effort {
                            " (best-effort)"
                        } else {
                            ""
                        }
                    ),
                    Err(e) => println!("worker {worker}: {} failed: {e}", template.name),
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker thread");
    }
    println!("\nfinal ladder stats: {}", throttle.stats().summary_line());
}
