//! A tour of the Memory Broker: watch notifications change as compilation
//! memory squeezes the buffer pool, and see the dynamic gateway thresholds
//! follow the broker's compilation target.
//!
//! Run with: `cargo run --release -p throttledb-engine --example memory_broker_tour`

use throttledb_core::{DynamicThresholds, ThrottleConfig};
use throttledb_membroker::{BrokerConfig, MemoryBroker, SubcomponentKind};
use throttledb_sim::SimTime;

fn main() {
    let broker = MemoryBroker::new(BrokerConfig::paper_machine());
    let pool = broker.register(SubcomponentKind::BufferPool);
    let compile = broker.register(SubcomponentKind::Compilation);
    let exec = broker.register(SubcomponentKind::Execution);

    pool.allocate(2_800 << 20);
    exec.allocate(600 << 20);

    let cfg = ThrottleConfig::paper_machine();
    println!(
        "{:>6} {:>12} {:>12} {:>10} | per-clerk verdicts",
        "t(s)", "compile MB", "target MB", "pressure"
    );
    for step in 0..10u64 {
        compile.allocate(120 << 20); // a compile storm ramping up
        let decisions = broker.recalculate(SimTime::from_secs(step * 5));
        let target = broker.target_for_kind(SubcomponentKind::Compilation);
        let verdicts: Vec<String> = decisions
            .iter()
            .map(|d| {
                format!(
                    "{}={}",
                    d.notification.kind_of_component, d.notification.kind
                )
            })
            .collect();
        println!(
            "{:>6} {:>12} {:>12} {:>10} | {}",
            step * 5,
            compile.used_bytes() >> 20,
            target >> 20,
            broker.pressure(),
            verdicts.join(" ")
        );
        let thresholds = DynamicThresholds::effective(&cfg, Some(target), &[0, 6, 1, 0]);
        println!(
            "        dynamic gateway thresholds: {:?} MB",
            thresholds.iter().map(|t| t >> 20).collect::<Vec<_>>()
        );
    }
}
