//! Run a reduced-scale SALES benchmark (the Figure 3 experiment at 1/8th
//! duration) and print the throughput comparison.
//!
//! Run with: `cargo run --release -p throttledb-engine --example sales_benchmark`

use throttledb_engine::{throughput_experiment, ServerConfig};

fn main() {
    let clients = 20;
    let cfg = ServerConfig::quick(clients, true);
    let cmp = throughput_experiment(&cfg, clients);
    cmp.print("SALES benchmark (reduced scale)");
    println!(
        "\nthrottle stats (throttled run): {}",
        cmp.throttled.throttle.summary_line()
    );
}
