//! Quickstart: build the paper's machine, throttle a burst of real
//! compilations through the gateway ladder, and print the broker's view.
//!
//! Run with: `cargo run --release -p throttledb-engine --example quickstart`

use std::sync::Arc;
use throttledb_catalog::{sales_schema, SalesScale};
use throttledb_core::{ThreadedThrottle, ThrottleConfig};
use throttledb_membroker::{BrokerConfig, MemoryBroker, SubcomponentKind};
use throttledb_optimizer::Optimizer;
use throttledb_sqlparse::parse;
use throttledb_workload::sales_templates;

fn main() {
    // The paper's machine: 8 CPUs, 4 GB of physical memory.
    let broker = MemoryBroker::new(BrokerConfig::paper_machine());
    let throttle = Arc::new(ThreadedThrottle::new(
        ThrottleConfig::paper_machine(),
        broker.clone(),
    ));

    // A full-scale SALES warehouse and its optimizer.
    let catalog = sales_schema(SalesScale::paper());
    let optimizer = Optimizer::new(&catalog);

    // Compile three SALES templates through the gateway ladder.
    for template in sales_templates().into_iter().take(3) {
        let stmt = parse(&template.sql).expect("template parses");
        let clerk = broker.register(SubcomponentKind::Compilation);
        let governor = throttle.governor();
        let outcome = optimizer
            .optimize_with_governor(&stmt, governor, Some(clerk))
            .expect("compiles");
        println!(
            "{}: {} joins, peak compile memory {:.0} MB, plan cost {:.0}, stage {:?}",
            template.name,
            outcome.plan.join_count(),
            outcome.stats.peak_memory_bytes as f64 / 1e6,
            outcome.plan.total_cost.total(),
            outcome.stats.stage,
        );
    }
    println!(
        "\nGateway ladder statistics: {}",
        throttle.stats().summary_line()
    );
    let snap = broker.snapshot();
    println!(
        "Broker: {} clerks, {:.0} MB live of {:.0} MB brokered, pressure {}",
        snap.clerks.len(),
        snap.used_bytes as f64 / 1e6,
        snap.brokered_bytes as f64 / 1e6,
        snap.pressure
    );
}
