//! Two workload classes against separate per-class admission pools.
//!
//! The resource-governor layer lets one server carve its throttling policy
//! into named workload classes, each with its own gateway ladder (scaled
//! thresholds) and its own slice of the execution memory-grant budget. This
//! example runs an "adhoc" class (throttled early: thresholds halved, 40%
//! of the grant budget) next to a "report" class (relaxed thresholds for
//! big scheduled reports, 60% of grants) on an overloaded quick
//! configuration, and prints the per-class summary table.
//!
//! ```sh
//! cargo run --release --example resource_pools
//! ```

use std::sync::Arc;
use throttledb_engine::{Server, ServerConfig, WorkloadClassConfig, WorkloadProfiles};

fn main() {
    let mut cfg = ServerConfig::quick(24, true);
    cfg.classes = vec![
        WorkloadClassConfig {
            name: "adhoc".to_string(),
            client_share: 0.6,
            threshold_scale: 0.5,
            grant_fraction: 0.40,
        },
        WorkloadClassConfig {
            name: "report".to_string(),
            client_share: 0.4,
            threshold_scale: 1.5,
            grant_fraction: 0.60,
        },
    ];
    cfg.validate();

    println!("characterizing the SALES workload through the real optimizer...");
    let profiles = Arc::new(WorkloadProfiles::characterize_sales(&cfg));
    let metrics = Server::new(cfg, profiles).run();

    println!();
    println!("== per-class resource pools (quick scale, 24 clients, seed 2007) ==");
    println!(
        "{:>8} {:>8} {:>10} {:>8} {:>12} {:>14} {:>14} {:>16}",
        "class",
        "clients",
        "completed",
        "failed",
        "best-effort",
        "gateway waits",
        "grant queue",
        "mean wait (ms)"
    );
    for class in &metrics.classes {
        let waits = class.throttle.total_waits();
        let mean_wait_ms = class
            .throttle
            .total_wait_time()
            .as_millis()
            .checked_div(waits)
            .unwrap_or(0);
        println!(
            "{:>8} {:>8} {:>10} {:>8} {:>12} {:>14} {:>14} {:>16}",
            class.name,
            class.clients,
            class.completed,
            class.failed,
            class.best_effort_plans,
            waits,
            class.grants.queued,
            mean_wait_ms
        );
    }
    println!();
    println!(
        "run totals: {} completed ({} after warm-up), {} failed",
        metrics.completed.total(),
        metrics.completed_after_warmup,
        metrics.failed.total()
    );
    println!("merged ladder: {}", metrics.throttle.summary_line());
}
