//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use — the [`proptest!`] macro, `prop_assert*` macros,
//! [`strategy::Strategy`] for integer/float ranges and tuples,
//! [`collection::vec`] and [`bool::ANY`] — on top of a small deterministic
//! generator. Every `#[test]` inside `proptest!` runs a fixed number of
//! generated cases (currently 64) from a fixed seed, so failures reproduce
//! exactly. No shrinking: a failing case panics with the regular assert
//! message. Swap the real crate in via the root `Cargo.toml` for shrinking
//! and persistence; test sources need no changes.

pub mod test_runner {
    //! The deterministic case generator behind [`crate::proptest!`].

    /// Number of generated cases per property test.
    pub const CASES: u32 = 64;

    /// SplitMix64-based generator; deliberately tiny and dependency-free.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used for every property test run.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5EED_CAFE_F00D_2007,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),+) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let width = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(width) as i128) as $ty
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }

    /// Strategy yielding a constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn` runs [`test_runner::CASES`] generated
/// cases from a fixed seed.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __proptest_rng = $crate::test_runner::TestRng::deterministic();
            for __proptest_case in 0..$crate::test_runner::CASES {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
    )+};
}

/// `assert!` under proptest's name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vecs_respect_size_and_element_ranges(
            v in crate::collection::vec(0u32..100, 1..20),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|e| *e < 100));
            let _ = flag;
        }

        #[test]
        fn tuples_compose(pair in (0u8..3, 0u64..12)) {
            prop_assert!(pair.0 < 3 && pair.1 < 12);
        }
    }
}
