//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the subset of the `parking_lot` API this workspace uses — a
//! non-poisoning [`Mutex`], [`RwLock`] and a [`Condvar`] whose `wait_for`
//! takes `&mut MutexGuard` — so the member crates compile unchanged against
//! either this stub or the real crate. Poisoned std locks are recovered
//! (parking_lot has no poisoning), and `wait_for` reproduces parking_lot's
//! signature by briefly taking the inner std guard out of the wrapper.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive with the `parking_lot::Mutex` API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` lets [`Condvar::wait_for`] move the
/// std guard out and back while keeping parking_lot's `&mut` signature; it is
/// `None` only transiently inside that call.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader–writer lock with the `parking_lot::RwLock` API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with the `parking_lot::Condvar` API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses; says which one happened.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already taken");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        drop(g);
        assert_eq!(*m.lock(), ());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_for(&mut done, Duration::from_secs(5));
            assert!(!r.timed_out(), "notifier should arrive well within 5s");
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
