//! Offline stand-in for `criterion`.
//!
//! The build container has no registry access, so this crate provides the
//! `criterion` API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `black_box`, `criterion_group!`,
//! `criterion_main!` — with a simple measurement loop: warm up, run a fixed
//! number of timed samples, report min/mean/max per iteration. Swap the real
//! crate back in via the root `Cargo.toml` for statistics, plots and
//! regression detection; the bench sources need no changes.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly, timing the batch.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: one untimed call.
    let mut warmup = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);
    let per_iter = warmup.elapsed.max(Duration::from_nanos(1));

    // Aim for ~50 ms per sample, clamped to [1, 1000] iterations.
    let target = Duration::from_millis(50);
    let iterations = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1000) as u64;

    let mut times = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iterations as f64);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{name:<50} [{} samples x {iterations} iters]  min {:>12}  mean {:>12}  max {:>12}",
        times.len(),
        format_seconds(times[0]),
        format_seconds(mean),
        format_seconds(*times.last().unwrap()),
    );
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Collect benchmark functions into a runnable group, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut ran = 0;
        g.sample_size(2).bench_function("inner", |b| {
            b.iter(|| ());
        });
        ran += 1;
        g.finish();
        assert_eq!(ran, 1);
    }
}
