//! Offline stand-in for `rand` 0.8.
//!
//! Provides the exact API subset `throttledb-sim` uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] over
//! `u64` inclusive ranges and `f64` half-open ranges, and
//! [`distributions::Distribution`] — with the same call-site syntax, so the
//! real crate can be swapped back in without source changes.
//!
//! The generator is xoshiro256** seeded through SplitMix64 (the construction
//! rand's own `SmallRng` used for years). It is deliberately *not*
//! stream-compatible with rand's `StdRng` (ChaCha12); the workspace only
//! requires that a fixed seed yields a fixed stream, which this guarantees.

pub mod rngs;

pub mod distributions {
    //! Stand-in for `rand::distributions`.

    use super::Rng;

    /// A type that can produce samples of `T` given a source of randomness.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// Core randomness source: a stream of 64-bit values.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw a uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    // Lemire's multiply-shift with rejection of the biased zone.
    debug_assert!(width > 0);
    let zone = width.wrapping_neg() % width; // (2^64 - width) mod width
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (width as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

impl SampleRange<u64> for std::ops::RangeInclusive<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        let width = hi.wrapping_sub(lo).wrapping_add(1);
        if width == 0 {
            // Full u64 domain.
            return rng.next_u64();
        }
        lo + uniform_u64_below(rng, width)
    }
}

impl SampleRange<u64> for std::ops::Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + uniform_u64_below(rng, self.end - self.start)
    }
}

impl SampleRange<usize> for std::ops::Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + uniform_u64_below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let unit = f64::from_rng(rng);
        let v = self.start + unit * (self.end - self.start);
        // Guard the pathological rounding case v == end.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A value uniformly distributed over `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// A bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(3..=9);
            assert!((3..=9).contains(&v));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(7);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            lo_seen |= f < 0.1;
            hi_seen |= f > 0.9;
        }
        assert!(lo_seen && hi_seen, "samples should span [0,1)");
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut r = StdRng::seed_from_u64(11);
        // Must not overflow or hang.
        let _: u64 = r.gen_range(0..=u64::MAX);
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut r = StdRng::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
