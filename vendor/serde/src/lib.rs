//! Offline stand-in for `serde`.
//!
//! The workspace annotates its public data types with
//! `#[derive(Serialize, Deserialize)]` so that real serde can be swapped in
//! the moment the build environment has registry access, but no code path in
//! the tree performs serialization today. This stub keeps the annotations
//! compiling: the traits are empty markers and the derives
//! (from the sibling `serde_derive` stub) emit nothing.
//!
//! Swapping in real serde is a one-line change in the root `Cargo.toml`
//! (`serde = "1"` instead of the `vendor/serde` path) and requires no source
//! edits.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
