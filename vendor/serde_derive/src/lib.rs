//! Offline no-op stand-in for `serde_derive`.
//!
//! The build container has no access to crates.io, and nothing in this
//! workspace ever serializes (there is no `serde_json` in the tree) — the
//! derives exist so downstream consumers can plug real serde in later. These
//! no-op macros accept the same syntax, including `#[serde(...)]` helper
//! attributes, and emit no code: the types simply do not implement the
//! (equally stubbed) traits' methods, which nothing calls.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
