//! Property tests of [`GrantManager`] invariants under arbitrary
//! grant/release/timeout interleavings:
//!
//! 1. the budget is never oversubscribed,
//! 2. waiters are admitted in strict FIFO order,
//! 3. no waiter is leaked after a cancel (abandoned waits disappear from
//!    the queue and can never be admitted later).

use proptest::prelude::*;
use std::collections::VecDeque;
use throttledb_executor::{GrantManager, GrantOutcome, GrantRequestId};

const MB: u64 = 1 << 20;
const BUDGET: u64 = 64 * MB;

proptest! {
    #[test]
    fn budget_fifo_and_cancel_invariants(
        ops in proptest::collection::vec((0u8..4, 1u64..32, 0usize..8), 1..200),
    ) {
        let m = GrantManager::new(BUDGET, None);
        let mut outstanding: Vec<GrantRequestId> = Vec::new();
        let mut queued: VecDeque<GrantRequestId> = VecDeque::new();
        let mut cancelled: Vec<GrantRequestId> = Vec::new();

        for (op, mb, pick) in ops {
            match op {
                // Request: 1..32 MB against the 64 MB budget.
                0 | 1 => {
                    let (id, outcome) = m.request(mb * MB);
                    match outcome {
                        GrantOutcome::Granted { bytes } => {
                            prop_assert_eq!(bytes, mb * MB, "full grants give what was asked");
                            prop_assert!(queued.is_empty(),
                                "a grant can only bypass an empty queue");
                            outstanding.push(id);
                        }
                        GrantOutcome::Reduced { bytes } => {
                            prop_assert!(bytes < mb * MB);
                            prop_assert!(bytes >= 1);
                            prop_assert!(queued.is_empty());
                            outstanding.push(id);
                        }
                        GrantOutcome::Queued => queued.push_back(id),
                    }
                }
                // Release a random outstanding grant.
                2 => {
                    if !outstanding.is_empty() {
                        let id = outstanding.remove(pick % outstanding.len());
                        let admitted = m.release(id);
                        // FIFO: admitted ids must be exactly the queue's prefix.
                        for (aid, outcome) in admitted {
                            let front = queued.pop_front();
                            prop_assert_eq!(Some(aid), front,
                                "admissions must come from the queue head");
                            prop_assert!(!matches!(outcome, GrantOutcome::Queued));
                            prop_assert!(!cancelled.contains(&aid),
                                "a cancelled waiter must never be admitted");
                            outstanding.push(aid);
                        }
                    }
                }
                // Cancel a random queued waiter (a grant-wait timeout).
                _ => {
                    if !queued.is_empty() {
                        let idx = pick % queued.len();
                        let id = queued.remove(idx).expect("index in range");
                        prop_assert!(m.cancel(id), "queued waiter must be cancellable");
                        prop_assert!(!m.cancel(id), "double cancel is a no-op");
                        cancelled.push(id);
                    }
                }
            }
            // Invariant 1: never oversubscribed.
            prop_assert!(m.in_use_bytes() <= BUDGET,
                "in_use {} exceeds budget {}", m.in_use_bytes(), BUDGET);
            // The manager's queue mirrors the model queue exactly.
            prop_assert_eq!(m.queued(), queued.len());
        }

        // Drain: cancel every remaining waiter, release every grant.
        for id in queued.drain(..) {
            prop_assert!(m.cancel(id));
            cancelled.push(id);
        }
        prop_assert_eq!(m.queued(), 0, "no waiter leaked after cancel");
        for id in outstanding.drain(..) {
            let admitted = m.release(id);
            prop_assert!(admitted.is_empty(), "empty queue admits nothing");
        }
        prop_assert_eq!(m.in_use_bytes(), 0, "all grants returned");
    }
}
