//! Execution memory grants (the "resource semaphore").
//!
//! Since the resource-governor refactor this is a thin, thread-safe facade
//! over [`throttledb_governor::ResourcePool`]: the FIFO queue, budget
//! accounting and wait statistics live in the shared governor layer — the
//! same substrate that backs the gateway ladder's per-level queues — and
//! this module adds grant-request identity, broker clerk reporting and the
//! grant-flavoured [`GrantOutcome`] vocabulary.

use parking_lot::Mutex;
use throttledb_governor::{AdmissionDecision, PoolStats, ResourcePool};
use throttledb_membroker::Clerk;
use throttledb_sim::SimTime;

/// Identifies a grant request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GrantRequestId(pub u64);

/// Outcome of a grant request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantOutcome {
    /// The full requested grant was given.
    Granted {
        /// Bytes granted.
        bytes: u64,
    },
    /// A reduced grant was given (the query will spill and run slower).
    Reduced {
        /// Bytes granted (less than requested).
        bytes: u64,
    },
    /// No memory is available; the request is queued FIFO.
    Queued,
}

impl GrantOutcome {
    /// Translate a governor [`AdmissionDecision`] into grant vocabulary.
    ///
    /// Panics on [`AdmissionDecision::Reject`]: grant pools queue requests
    /// that do not fit, they never reject them, and mapping a reject to
    /// `Queued` would leave the caller waiting for an admission that can
    /// never come.
    pub fn from_admission(decision: AdmissionDecision) -> Self {
        match decision {
            AdmissionDecision::Admit { units } => GrantOutcome::Granted { bytes: units },
            AdmissionDecision::Degrade { units } => GrantOutcome::Reduced { bytes: units },
            AdmissionDecision::Wait { .. } => GrantOutcome::Queued,
            AdmissionDecision::Reject => {
                unreachable!("grant pools queue requests, they never reject")
            }
        }
    }
}

/// A query never receives less than this fraction of its request when the
/// manager falls back to a reduced grant.
const MIN_GRANT_FRACTION: f64 = 0.25;

/// FIFO memory-grant manager over a fixed budget.
#[derive(Debug)]
pub struct GrantManager {
    inner: Mutex<Inner>,
    clerk: Option<Clerk>,
}

#[derive(Debug)]
struct Inner {
    pool: ResourcePool<GrantRequestId>,
    next_id: u64,
    /// Reused buffer for pool admissions (see
    /// [`GrantManager::release_at_into`]).
    admitted_scratch: Vec<(GrantRequestId, AdmissionDecision)>,
}

impl GrantManager {
    /// A manager over `budget_bytes` of execution memory, optionally
    /// reporting usage to a broker clerk.
    pub fn new(budget_bytes: u64, clerk: Option<Clerk>) -> Self {
        GrantManager {
            inner: Mutex::new(Inner {
                pool: ResourcePool::new("exec-grants", budget_bytes, MIN_GRANT_FRACTION),
                next_id: 0,
                admitted_scratch: Vec::new(),
            }),
            clerk,
        }
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> u64 {
        self.inner.lock().pool.budget()
    }

    /// Change the budget (e.g. on a broker notification). Does not revoke
    /// outstanding grants; future requests see the new value.
    pub fn set_budget(&self, budget_bytes: u64) {
        self.inner.lock().pool.set_budget(budget_bytes);
    }

    /// Bytes currently granted out.
    pub fn in_use_bytes(&self) -> u64 {
        self.inner.lock().pool.in_use()
    }

    /// Number of requests waiting in the queue.
    pub fn queued(&self) -> usize {
        self.inner.lock().pool.queued_len()
    }

    /// Lifetime counters: (full grants, reduced grants, queued requests).
    pub fn counters(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock();
        let stats = inner.pool.stats();
        (stats.admitted, stats.degraded, stats.queued)
    }

    /// A snapshot of the underlying pool's statistics, including the
    /// wait-time histogram.
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.lock().pool.stats().clone()
    }

    /// Request `bytes` of execution memory. The request is granted in full
    /// when it fits, granted reduced when at least the minimum fraction fits
    /// and nothing else is queued, and queued otherwise.
    pub fn request(&self, bytes: u64) -> (GrantRequestId, GrantOutcome) {
        self.request_at(bytes, SimTime::ZERO, SimTime::MAX)
    }

    /// Like [`GrantManager::request`], stamping virtual time on a queued
    /// request so wait durations are recorded when it is later admitted.
    pub fn request_at(
        &self,
        bytes: u64,
        now: SimTime,
        deadline: SimTime,
    ) -> (GrantRequestId, GrantOutcome) {
        let mut inner = self.inner.lock();
        let id = GrantRequestId(inner.next_id);
        inner.next_id += 1;
        let decision = inner.pool.request(id, bytes, now, deadline);
        if let Some(granted) = decision.units() {
            if let Some(c) = &self.clerk {
                c.allocate(granted);
            }
        }
        (id, GrantOutcome::from_admission(decision))
    }

    /// Release the grant held by `id` (a query finished or was aborted).
    /// Returns the queued requests that were granted as a result, with their
    /// outcomes.
    pub fn release(&self, id: GrantRequestId) -> Vec<(GrantRequestId, GrantOutcome)> {
        self.release_at(id, SimTime::MAX)
    }

    /// Like [`GrantManager::release`], recording the admitted waiters' wait
    /// durations as of `now`.
    pub fn release_at(
        &self,
        id: GrantRequestId,
        now: SimTime,
    ) -> Vec<(GrantRequestId, GrantOutcome)> {
        let mut out = Vec::new();
        self.release_at_into(id, now, &mut out);
        out
    }

    /// Allocation-free variant of [`GrantManager::release_at`]: admitted
    /// waiters are appended to `out`, and the pool-level admission scratch
    /// buffer is recycled inside the manager, so the engine's release path
    /// performs no allocation per completed query.
    pub fn release_at_into(
        &self,
        id: GrantRequestId,
        now: SimTime,
        out: &mut Vec<(GrantRequestId, GrantOutcome)>,
    ) {
        let mut inner = self.inner.lock();
        let released = inner.pool.held(id);
        let mut admitted = std::mem::take(&mut inner.admitted_scratch);
        admitted.clear();
        inner.pool.release_into(id, now, &mut admitted);
        if let Some(c) = &self.clerk {
            if let Some(bytes) = released {
                c.free(bytes);
            }
            for (_, decision) in &admitted {
                if let Some(bytes) = decision.units() {
                    c.allocate(bytes);
                }
            }
        }
        out.extend(
            admitted
                .iter()
                .map(|&(id, decision)| (id, GrantOutcome::from_admission(decision))),
        );
        inner.admitted_scratch = admitted;
    }

    /// Abandon a queued request (the query timed out waiting for its grant —
    /// a "resource" error to the client). Returns true if it was queued.
    pub fn cancel(&self, id: GrantRequestId) -> bool {
        self.inner.lock().pool.cancel(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use throttledb_membroker::{BrokerConfig, MemoryBroker, SubcomponentKind};

    const MB: u64 = 1 << 20;

    #[test]
    fn grants_within_budget_are_immediate() {
        let m = GrantManager::new(100 * MB, None);
        let (a, out_a) = m.request(40 * MB);
        let (_b, out_b) = m.request(40 * MB);
        assert_eq!(out_a, GrantOutcome::Granted { bytes: 40 * MB });
        assert_eq!(out_b, GrantOutcome::Granted { bytes: 40 * MB });
        assert_eq!(m.in_use_bytes(), 80 * MB);
        m.release(a);
        assert_eq!(m.in_use_bytes(), 40 * MB);
    }

    #[test]
    fn oversized_request_gets_reduced_grant() {
        let m = GrantManager::new(100 * MB, None);
        let (_a, _) = m.request(70 * MB);
        let (_b, out) = m.request(80 * MB);
        match out {
            GrantOutcome::Reduced { bytes } => {
                assert_eq!(bytes, 30 * MB, "gets whatever is left");
            }
            other => panic!("expected a reduced grant, got {other:?}"),
        }
    }

    #[test]
    fn request_queues_when_below_minimum_fraction() {
        let m = GrantManager::new(100 * MB, None);
        let (_a, _) = m.request(95 * MB);
        // 5 MB available < 25% of 80 MB -> must queue.
        let (_b, out) = m.request(80 * MB);
        assert_eq!(out, GrantOutcome::Queued);
        assert_eq!(m.queued(), 1);
    }

    #[test]
    fn release_admits_waiters_in_fifo_order() {
        let m = GrantManager::new(100 * MB, None);
        let (a, _) = m.request(90 * MB);
        let (b, ob) = m.request(60 * MB);
        let (c, oc) = m.request(10 * MB);
        assert_eq!(ob, GrantOutcome::Queued);
        assert_eq!(oc, GrantOutcome::Queued);
        let admitted = m.release(a);
        // b is admitted first (FIFO); c fits in the remainder.
        assert_eq!(admitted.len(), 2);
        assert_eq!(admitted[0].0, b);
        assert!(matches!(admitted[0].1, GrantOutcome::Granted { .. }));
        assert_eq!(admitted[1].0, c);
    }

    #[test]
    fn fifo_prevents_starvation_of_large_requests() {
        let m = GrantManager::new(100 * MB, None);
        let (a, _) = m.request(90 * MB);
        let (_big, out_big) = m.request(80 * MB);
        assert_eq!(out_big, GrantOutcome::Queued);
        // A small latecomer must not jump the queue.
        let (_small, out_small) = m.request(5 * MB);
        assert_eq!(out_small, GrantOutcome::Queued);
        let admitted = m.release(a);
        assert!(matches!(admitted[0].1, GrantOutcome::Granted { bytes } if bytes == 80 * MB));
    }

    #[test]
    fn cancel_removes_from_queue() {
        let m = GrantManager::new(10 * MB, None);
        let (a, _) = m.request(10 * MB);
        let (b, out) = m.request(10 * MB);
        assert_eq!(out, GrantOutcome::Queued);
        assert!(m.cancel(b));
        assert!(!m.cancel(b));
        assert!(m.release(a).is_empty());
    }

    #[test]
    fn clerk_tracks_granted_bytes() {
        let broker = MemoryBroker::new(BrokerConfig::with_total_memory(1 << 30));
        let clerk = broker.register(SubcomponentKind::Execution);
        let m = GrantManager::new(100 * MB, Some(clerk.clone()));
        let (a, _) = m.request(30 * MB);
        assert_eq!(clerk.used_bytes(), 30 * MB);
        m.release(a);
        assert_eq!(clerk.used_bytes(), 0);
    }

    #[test]
    fn budget_can_shrink_at_runtime() {
        let m = GrantManager::new(100 * MB, None);
        let (_a, _) = m.request(50 * MB);
        m.set_budget(40 * MB);
        let (_b, out) = m.request(30 * MB);
        assert_eq!(
            out,
            GrantOutcome::Queued,
            "shrunken budget blocks new grants"
        );
        let (full, reduced, queued) = m.counters();
        assert_eq!((full, reduced, queued), (1, 0, 1));
    }
}
