//! Execution memory grants (the "resource semaphore").

use parking_lot::Mutex;
use std::collections::VecDeque;
use throttledb_membroker::Clerk;

/// Identifies a grant request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GrantRequestId(pub u64);

/// Outcome of a grant request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantOutcome {
    /// The full requested grant was given.
    Granted {
        /// Bytes granted.
        bytes: u64,
    },
    /// A reduced grant was given (the query will spill and run slower).
    Reduced {
        /// Bytes granted (less than requested).
        bytes: u64,
    },
    /// No memory is available; the request is queued FIFO.
    Queued,
}

#[derive(Debug)]
struct Waiter {
    id: GrantRequestId,
    requested: u64,
}

/// FIFO memory-grant manager over a fixed budget.
#[derive(Debug)]
pub struct GrantManager {
    budget_bytes: Mutex<u64>,
    inner: Mutex<Inner>,
    clerk: Option<Clerk>,
}

#[derive(Debug, Default)]
struct Inner {
    in_use: u64,
    outstanding: Vec<(GrantRequestId, u64)>,
    queue: VecDeque<Waiter>,
    next_id: u64,
    grants: u64,
    reduced_grants: u64,
    queued: u64,
}

/// A query never receives less than this fraction of its request when the
/// manager falls back to a reduced grant.
const MIN_GRANT_FRACTION: f64 = 0.25;

impl GrantManager {
    /// A manager over `budget_bytes` of execution memory, optionally
    /// reporting usage to a broker clerk.
    pub fn new(budget_bytes: u64, clerk: Option<Clerk>) -> Self {
        GrantManager {
            budget_bytes: Mutex::new(budget_bytes),
            inner: Mutex::new(Inner::default()),
            clerk,
        }
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> u64 {
        *self.budget_bytes.lock()
    }

    /// Change the budget (e.g. on a broker notification). Does not revoke
    /// outstanding grants; future requests see the new value.
    pub fn set_budget(&self, budget_bytes: u64) {
        *self.budget_bytes.lock() = budget_bytes;
    }

    /// Bytes currently granted out.
    pub fn in_use_bytes(&self) -> u64 {
        self.inner.lock().in_use
    }

    /// Number of requests waiting in the queue.
    pub fn queued(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Lifetime counters: (full grants, reduced grants, queued requests).
    pub fn counters(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock();
        (inner.grants, inner.reduced_grants, inner.queued)
    }

    /// Request `bytes` of execution memory. The request is granted in full
    /// when it fits, granted reduced when at least the minimum fraction fits
    /// and nothing else is queued, and queued otherwise.
    pub fn request(&self, bytes: u64) -> (GrantRequestId, GrantOutcome) {
        let budget = *self.budget_bytes.lock();
        let mut inner = self.inner.lock();
        let id = GrantRequestId(inner.next_id);
        inner.next_id += 1;

        let available = budget.saturating_sub(inner.in_use);
        let wanted = bytes.max(1);
        if inner.queue.is_empty() && wanted <= available {
            inner.in_use += wanted;
            inner.outstanding.push((id, wanted));
            inner.grants += 1;
            if let Some(c) = &self.clerk {
                c.allocate(wanted);
            }
            return (id, GrantOutcome::Granted { bytes: wanted });
        }
        let minimum = ((wanted as f64 * MIN_GRANT_FRACTION) as u64).max(1);
        if inner.queue.is_empty() && minimum <= available && available > 0 {
            inner.in_use += available;
            inner.outstanding.push((id, available));
            inner.reduced_grants += 1;
            if let Some(c) = &self.clerk {
                c.allocate(available);
            }
            return (id, GrantOutcome::Reduced { bytes: available });
        }
        inner.queue.push_back(Waiter {
            id,
            requested: wanted,
        });
        inner.queued += 1;
        (id, GrantOutcome::Queued)
    }

    /// Release the grant held by `id` (a query finished or was aborted).
    /// Returns the queued requests that were granted as a result, with their
    /// outcomes.
    pub fn release(&self, id: GrantRequestId) -> Vec<(GrantRequestId, GrantOutcome)> {
        let budget = *self.budget_bytes.lock();
        let mut inner = self.inner.lock();
        if let Some(pos) = inner.outstanding.iter().position(|(g, _)| *g == id) {
            let (_, bytes) = inner.outstanding.swap_remove(pos);
            inner.in_use = inner.in_use.saturating_sub(bytes);
            if let Some(c) = &self.clerk {
                c.free(bytes);
            }
        } else {
            // Not outstanding: maybe it was still queued (abandoned wait).
            inner.queue.retain(|w| w.id != id);
            return Vec::new();
        }

        // Admit waiters FIFO while they fit.
        let mut admitted = Vec::new();
        while let Some(front) = inner.queue.front() {
            let available = budget.saturating_sub(inner.in_use);
            let wanted = front.requested;
            let minimum = ((wanted as f64 * MIN_GRANT_FRACTION) as u64).max(1);
            if wanted <= available {
                let w = inner.queue.pop_front().expect("front exists");
                inner.in_use += wanted;
                inner.outstanding.push((w.id, wanted));
                inner.grants += 1;
                if let Some(c) = &self.clerk {
                    c.allocate(wanted);
                }
                admitted.push((w.id, GrantOutcome::Granted { bytes: wanted }));
            } else if minimum <= available && available > 0 {
                let w = inner.queue.pop_front().expect("front exists");
                inner.in_use += available;
                inner.outstanding.push((w.id, available));
                inner.reduced_grants += 1;
                if let Some(c) = &self.clerk {
                    c.allocate(available);
                }
                admitted.push((w.id, GrantOutcome::Reduced { bytes: available }));
            } else {
                break;
            }
        }
        admitted
    }

    /// Abandon a queued request (the query timed out waiting for its grant —
    /// a "resource" error to the client). Returns true if it was queued.
    pub fn cancel(&self, id: GrantRequestId) -> bool {
        let mut inner = self.inner.lock();
        let before = inner.queue.len();
        inner.queue.retain(|w| w.id != id);
        before != inner.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use throttledb_membroker::{BrokerConfig, MemoryBroker, SubcomponentKind};

    const MB: u64 = 1 << 20;

    #[test]
    fn grants_within_budget_are_immediate() {
        let m = GrantManager::new(100 * MB, None);
        let (a, out_a) = m.request(40 * MB);
        let (_b, out_b) = m.request(40 * MB);
        assert_eq!(out_a, GrantOutcome::Granted { bytes: 40 * MB });
        assert_eq!(out_b, GrantOutcome::Granted { bytes: 40 * MB });
        assert_eq!(m.in_use_bytes(), 80 * MB);
        m.release(a);
        assert_eq!(m.in_use_bytes(), 40 * MB);
    }

    #[test]
    fn oversized_request_gets_reduced_grant() {
        let m = GrantManager::new(100 * MB, None);
        let (_a, _) = m.request(70 * MB);
        let (_b, out) = m.request(80 * MB);
        match out {
            GrantOutcome::Reduced { bytes } => {
                assert_eq!(bytes, 30 * MB, "gets whatever is left");
            }
            other => panic!("expected a reduced grant, got {other:?}"),
        }
    }

    #[test]
    fn request_queues_when_below_minimum_fraction() {
        let m = GrantManager::new(100 * MB, None);
        let (_a, _) = m.request(95 * MB);
        // 5 MB available < 25% of 80 MB -> must queue.
        let (_b, out) = m.request(80 * MB);
        assert_eq!(out, GrantOutcome::Queued);
        assert_eq!(m.queued(), 1);
    }

    #[test]
    fn release_admits_waiters_in_fifo_order() {
        let m = GrantManager::new(100 * MB, None);
        let (a, _) = m.request(90 * MB);
        let (b, ob) = m.request(60 * MB);
        let (c, oc) = m.request(10 * MB);
        assert_eq!(ob, GrantOutcome::Queued);
        assert_eq!(oc, GrantOutcome::Queued);
        let admitted = m.release(a);
        // b is admitted first (FIFO); c fits in the remainder.
        assert_eq!(admitted.len(), 2);
        assert_eq!(admitted[0].0, b);
        assert!(matches!(admitted[0].1, GrantOutcome::Granted { .. }));
        assert_eq!(admitted[1].0, c);
    }

    #[test]
    fn fifo_prevents_starvation_of_large_requests() {
        let m = GrantManager::new(100 * MB, None);
        let (a, _) = m.request(90 * MB);
        let (_big, out_big) = m.request(80 * MB);
        assert_eq!(out_big, GrantOutcome::Queued);
        // A small latecomer must not jump the queue.
        let (_small, out_small) = m.request(5 * MB);
        assert_eq!(out_small, GrantOutcome::Queued);
        let admitted = m.release(a);
        assert!(matches!(admitted[0].1, GrantOutcome::Granted { bytes } if bytes == 80 * MB));
    }

    #[test]
    fn cancel_removes_from_queue() {
        let m = GrantManager::new(10 * MB, None);
        let (a, _) = m.request(10 * MB);
        let (b, out) = m.request(10 * MB);
        assert_eq!(out, GrantOutcome::Queued);
        assert!(m.cancel(b));
        assert!(!m.cancel(b));
        assert!(m.release(a).is_empty());
    }

    #[test]
    fn clerk_tracks_granted_bytes() {
        let broker = MemoryBroker::new(BrokerConfig::with_total_memory(1 << 30));
        let clerk = broker.register(SubcomponentKind::Execution);
        let m = GrantManager::new(100 * MB, Some(clerk.clone()));
        let (a, _) = m.request(30 * MB);
        assert_eq!(clerk.used_bytes(), 30 * MB);
        m.release(a);
        assert_eq!(clerk.used_bytes(), 0);
    }

    #[test]
    fn budget_can_shrink_at_runtime() {
        let m = GrantManager::new(100 * MB, None);
        let (_a, _) = m.request(50 * MB);
        m.set_budget(40 * MB);
        let (_b, out) = m.request(30 * MB);
        assert_eq!(
            out,
            GrantOutcome::Queued,
            "shrunken budget blocks new grants"
        );
        let (full, reduced, queued) = m.counters();
        assert_eq!((full, reduced, queued), (1, 0, 1));
    }
}
