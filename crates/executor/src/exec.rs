//! The execution model: from a physical plan to the profile the engine runs.

use serde::{Deserialize, Serialize};
use throttledb_catalog::Catalog;
use throttledb_optimizer::{PhysicalOp, PhysicalPlan};

/// What the simulated execution of one query looks like.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionProfile {
    /// CPU seconds on one core of the reference machine.
    pub cpu_seconds: f64,
    /// Bytes of base-table data the plan touches (buffer-pool footprint).
    pub footprint_bytes: u64,
    /// Execution memory grant the plan asks for (hash tables, sorts).
    pub requested_grant_bytes: u64,
    /// Number of base-table accesses in the plan.
    pub scan_count: usize,
}

impl ExecutionProfile {
    /// Extra CPU factor applied when the query receives only
    /// `granted / requested` of its memory grant and must spill.
    /// A full grant costs nothing extra; a quarter grant roughly doubles the
    /// hash/sort work (re-partitioning passes).
    pub fn spill_slowdown(&self, granted_bytes: u64) -> f64 {
        if self.requested_grant_bytes == 0 {
            return 1.0;
        }
        let fraction = (granted_bytes as f64 / self.requested_grant_bytes as f64).clamp(0.05, 1.0);
        // 1.0 at full grant, ~2.4 at a 25% grant, ~4.8 at a 5% grant.
        1.0 + (1.0 / fraction - 1.0) * 0.45
    }
}

/// Builds execution profiles from optimizer plans and catalog statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionModel {
    /// CPU seconds per row flowing through one operator (reference machine:
    /// 700 MHz Xeon — a few hundred nanoseconds per row-operator).
    pub cpu_seconds_per_row: f64,
    /// Extra CPU per row for hash build/probe.
    pub cpu_seconds_per_hash_row: f64,
    /// Cap on a single query's memory grant request (fraction of grants that
    /// one query may claim; SQL Server caps a single grant similarly).
    pub max_single_grant_bytes: u64,
}

impl Default for ExecutionModel {
    fn default() -> Self {
        ExecutionModel {
            cpu_seconds_per_row: 4.0e-7,
            cpu_seconds_per_hash_row: 7.0e-7,
            max_single_grant_bytes: 900 << 20,
        }
    }
}

impl ExecutionModel {
    /// Build the execution profile of `plan` against `catalog`.
    pub fn profile(&self, plan: &PhysicalPlan, catalog: &Catalog) -> ExecutionProfile {
        let mut cpu = 0.0;
        let mut footprint = 0u64;
        plan.walk(&mut |node| {
            let rows = node.est_rows.max(1.0);
            match &node.op {
                PhysicalOp::TableScan { table, .. } => {
                    cpu += rows * self.cpu_seconds_per_row;
                    footprint += catalog.table(table).map(|t| t.total_bytes()).unwrap_or(0);
                }
                PhysicalOp::IndexSeek { table, .. } => {
                    cpu += rows * self.cpu_seconds_per_row * 2.0;
                    // A seek touches only the qualifying fraction of the table.
                    let table_bytes = catalog.table(table).map(|t| t.total_bytes()).unwrap_or(0);
                    let table_rows = catalog
                        .table(table)
                        .map(|t| t.row_count().max(1) as f64)
                        .unwrap_or(1.0);
                    let fraction = (rows / table_rows).clamp(0.0, 1.0);
                    footprint += (table_bytes as f64 * fraction) as u64;
                }
                PhysicalOp::HashJoin { .. } => {
                    let build = node.children.get(1).map(|c| c.est_rows).unwrap_or(0.0);
                    let probe = node.children.first().map(|c| c.est_rows).unwrap_or(0.0);
                    cpu += (build + probe) * self.cpu_seconds_per_hash_row
                        + rows * self.cpu_seconds_per_row;
                }
                PhysicalOp::NestedLoopJoin { .. } => {
                    let outer = node.children.first().map(|c| c.est_rows).unwrap_or(0.0);
                    let inner = node.children.get(1).map(|c| c.est_rows).unwrap_or(0.0);
                    cpu += (outer * inner.max(1.0).log2().max(1.0)) * self.cpu_seconds_per_row
                        + rows * self.cpu_seconds_per_row;
                }
                PhysicalOp::HashAggregate { .. } => {
                    let input = node.children.first().map(|c| c.est_rows).unwrap_or(0.0);
                    cpu += input * self.cpu_seconds_per_hash_row + rows * self.cpu_seconds_per_row;
                }
                PhysicalOp::Sort { .. } => {
                    let input = node
                        .children
                        .first()
                        .map(|c| c.est_rows)
                        .unwrap_or(0.0)
                        .max(2.0);
                    cpu += input * input.log2() * self.cpu_seconds_per_row * 0.3;
                }
                PhysicalOp::Filter { .. }
                | PhysicalOp::Project { .. }
                | PhysicalOp::Limit { .. } => {
                    let input = node.children.first().map(|c| c.est_rows).unwrap_or(0.0);
                    cpu += input * self.cpu_seconds_per_row * 0.3;
                }
            }
        });
        ExecutionProfile {
            cpu_seconds: cpu,
            footprint_bytes: footprint,
            requested_grant_bytes: plan
                .total_memory_requirement()
                .min(self.max_single_grant_bytes),
            scan_count: plan.scan_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use throttledb_catalog::tpch_schema;
    use throttledb_optimizer::Optimizer;
    use throttledb_sqlparse::parse;

    fn profile_of(sql: &str) -> ExecutionProfile {
        let cat = tpch_schema(1.0);
        let opt = Optimizer::new(&cat);
        let out = opt.optimize(&parse(sql).unwrap()).unwrap();
        ExecutionModel::default().profile(&out.plan, &cat)
    }

    #[test]
    fn point_query_is_cheap_in_every_dimension() {
        let p = profile_of("SELECT o_totalprice FROM orders WHERE o_orderkey = 7");
        assert!(p.cpu_seconds < 0.1, "cpu {}", p.cpu_seconds);
        assert!(
            p.footprint_bytes < 100 << 20,
            "footprint {}",
            p.footprint_bytes
        );
        assert_eq!(p.scan_count, 1);
    }

    #[test]
    fn join_aggregate_query_needs_a_real_grant_and_footprint() {
        let p = profile_of(
            "SELECT c.c_mktsegment, SUM(l.l_extendedprice) FROM lineitem l \
             JOIN orders o ON l.l_orderkey = o.o_orderkey \
             JOIN customer c ON o.o_custkey = c.c_custkey \
             GROUP BY c.c_mktsegment",
        );
        assert!(
            p.requested_grant_bytes > 10 << 20,
            "grant {}",
            p.requested_grant_bytes
        );
        assert!(
            p.footprint_bytes > 100 << 20,
            "footprint {}",
            p.footprint_bytes
        );
        assert!(p.cpu_seconds > 1.0, "cpu {}", p.cpu_seconds);
        assert!(p.scan_count >= 3);
    }

    #[test]
    fn grant_request_is_capped() {
        let model = ExecutionModel::default();
        let p = profile_of(
            "SELECT COUNT(*) FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey",
        );
        assert!(p.requested_grant_bytes <= model.max_single_grant_bytes);
    }

    #[test]
    fn spill_slowdown_grows_as_grant_shrinks() {
        let p = ExecutionProfile {
            cpu_seconds: 10.0,
            footprint_bytes: 0,
            requested_grant_bytes: 100 << 20,
            scan_count: 1,
        };
        assert!((p.spill_slowdown(100 << 20) - 1.0).abs() < 1e-9);
        let half = p.spill_slowdown(50 << 20);
        let quarter = p.spill_slowdown(25 << 20);
        assert!(half > 1.0 && quarter > half);
        // Zero-request queries are immune.
        let none = ExecutionProfile {
            requested_grant_bytes: 0,
            ..p
        };
        assert_eq!(none.spill_slowdown(0), 1.0);
    }
}
