//! # throttledb-executor
//!
//! The query-execution substrate. The paper's interest in execution is its
//! memory behaviour — "the memory consumed during query execution is usually
//! predictable as many of the largest allocations can be made using early,
//! high-level decisions at the start of the execution of a query" — and the
//! way hash-heavy DSS plans compete with compilation and the buffer pool.
//!
//! * [`grant::GrantManager`] — the execution memory-grant queue (SQL
//!   Server's "resource semaphore"): a query asks for its grant up front,
//!   waits in FIFO order when memory is unavailable, may accept a reduced
//!   grant (spilling), and times out with a resource error if it waits too
//!   long.
//! * [`exec::ExecutionModel`] — converts an optimizer
//!   [`PhysicalPlan`](throttledb_optimizer::PhysicalPlan) into the execution
//!   profile the engine simulates: CPU seconds, buffer-pool footprint, and
//!   the memory grant, including the slow-down applied when the grant is
//!   reduced (hash spills).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exec;
pub mod grant;

pub use exec::{ExecutionModel, ExecutionProfile};
pub use grant::{GrantManager, GrantOutcome, GrantRequestId};
