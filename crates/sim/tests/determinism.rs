//! Satellite determinism tests: an identical RNG seed must produce a
//! bit-identical event series and bit-identical statistics, so every figure
//! in the paper reproduction can be regenerated exactly from its seed.

use throttledb_sim::{
    EventQueue, GaugeTimeline, Histogram, SimDuration, SimRng, SimTime, TimeSeries,
};

/// Everything a figure-scale experiment would persist from one run.
#[derive(Debug, PartialEq)]
struct RunArtifacts {
    event_log: Vec<(u64, u64)>,
    gauge: Vec<(SimTime, u64)>,
    bucket_counts: Vec<u64>,
    latency_sum: u64,
}

/// Drive a miniature simulation: exponential arrivals, jittered service
/// times, a counter series, a memory gauge and a latency histogram.
fn run_simulation(seed: u64) -> RunArtifacts {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut queue: EventQueue<u64> = EventQueue::new();
    let mut completions = TimeSeries::new("completions", SimDuration::from_secs(60));
    let mut memory = GaugeTimeline::new("memory");
    let mut latency = Histogram::new("latency_us");

    // Schedule 200 arrivals with exponential inter-arrival times.
    let mut t = SimTime::ZERO;
    for i in 0..200u64 {
        t += SimDuration::from_secs_f64(rng.exponential(30.0));
        queue.schedule(t, i);
    }
    // Pop in time order; each event records a jittered latency and a gauge
    // step, and some events fork per-client RNG streams.
    let mut event_log = Vec::new();
    let mut used: u64 = 0;
    while let Some(ev) = queue.pop() {
        let svc = rng.jitter(0.3) * 1000.0;
        latency.record(svc as u64);
        used = used.wrapping_add(rng.uniform_u64(1 << 20, 8 << 20));
        if ev.payload % 7 == 0 {
            let mut child = rng.fork(ev.payload);
            used = used.wrapping_add(child.next_u64() % (1 << 20));
        }
        memory.record(ev.at, used);
        completions.record(ev.at);
        event_log.push((ev.at.as_micros(), ev.payload));
    }
    let series: Vec<(SimTime, u64)> = completions.iter().collect();
    RunArtifacts {
        event_log,
        gauge: memory.samples().to_vec(),
        bucket_counts: series.iter().map(|(_, v)| *v).collect(),
        latency_sum: latency.sum() as u64,
    }
}

#[test]
fn identical_seeds_produce_bit_identical_event_series_and_stats() {
    let a = run_simulation(2007);
    let b = run_simulation(2007);
    assert_eq!(
        a.event_log, b.event_log,
        "event (time, payload) series must match exactly"
    );
    assert_eq!(a.gauge, b.gauge, "memory gauge samples must match exactly");
    assert_eq!(
        a.bucket_counts, b.bucket_counts,
        "per-bucket completion counts must match exactly"
    );
    assert_eq!(
        a.latency_sum, b.latency_sum,
        "histogram totals must match exactly"
    );
}

#[test]
fn different_seeds_produce_different_series() {
    let a = run_simulation(1);
    let b = run_simulation(2);
    assert_ne!(
        a.event_log, b.event_log,
        "distinct seeds should not collide on the whole series"
    );
}

#[test]
fn forked_streams_are_reproducible_and_independent() {
    // Forking gives each simulated client its own stream: the fork is
    // deterministic, and draining a forked child must not perturb the parent.
    let mut parent_a = SimRng::seed_from_u64(99);
    let mut parent_b = SimRng::seed_from_u64(99);

    let child_a: Vec<u64> = {
        let mut c = parent_a.fork(5);
        (0..32).map(|_| c.next_u64()).collect()
    };
    let mut child_b = parent_b.fork(5);
    let child_b_vals: Vec<u64> = (0..32).map(|_| child_b.next_u64()).collect();
    assert_eq!(child_a, child_b_vals, "forks with the same salt must match");

    // Drawing extra values from child_b must leave the parents in lockstep.
    for _ in 0..1000 {
        let _ = child_b.next_u64();
    }
    for _ in 0..32 {
        assert_eq!(parent_a.next_u64(), parent_b.next_u64());
    }
}

#[test]
fn event_queue_breaks_time_ties_deterministically() {
    // Many events at the same instant: pop order must be stable (insertion
    // order) so simultaneous completions replay identically across runs.
    let order: Vec<Vec<u32>> = (0..2)
        .map(|_| {
            let mut q = EventQueue::new();
            for i in 0..50u32 {
                q.schedule(SimTime::from_secs(7), i);
            }
            let mut popped = Vec::new();
            while let Some(ev) = q.pop() {
                popped.push(ev.payload);
            }
            popped
        })
        .collect();
    assert_eq!(order[0], order[1], "tie-break order must be reproducible");
    assert_eq!(
        order[0],
        (0..50).collect::<Vec<_>>(),
        "ties pop in schedule order"
    );
}

#[test]
fn histogram_percentiles_are_seed_stable() {
    let stats = |seed: u64| {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut h = Histogram::new("h");
        for _ in 0..5000 {
            h.record(rng.uniform_u64(0, 1_000_000));
        }
        (
            h.percentile(50.0),
            h.percentile(95.0),
            h.percentile(99.0),
            h.mean(),
        )
    };
    assert_eq!(
        stats(42),
        stats(42),
        "all derived statistics must be bit-identical"
    );
}
