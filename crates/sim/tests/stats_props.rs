//! Property tests for `throttledb_sim::stats` against brute-force oracles.
//!
//! The histogram is checked against a sorted-`Vec` oracle: exact statistics
//! (count/sum/min/max, the p = 0 and p = 100 extremes) must match the oracle
//! exactly, and interior percentiles must bracket the oracle's exact
//! quantile within one power-of-two bucket. The mergeable Welford
//! accumulator is checked differentially: merging partitions of a stream
//! must reproduce the single-stream accumulation bit-for-bit on the mean
//! (for exactly representable sums) and within 1e-9 relative on variance.

use proptest::prelude::*;
use throttledb_sim::{Histogram, Summary};

/// The exact quantile the histogram approximates: the `target`-th smallest
/// sample where `target = ceil(p/100 · n).max(1)` (the same rank rule the
/// bucket walk uses).
fn oracle_percentile(sorted: &[u64], p: f64) -> u64 {
    let target = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[target.min(sorted.len()) - 1]
}

fn build(values: &[u64]) -> Histogram {
    let mut h = Histogram::new("prop");
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn exact_stats_match_oracle(values in proptest::collection::vec(0u64..1_000_000_000, 1..200)) {
        let h = build(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().map(|&v| v as u128).sum::<u128>());
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
    }

    #[test]
    fn percentile_extremes_match_oracle(values in proptest::collection::vec(0u64..1_000_000_000, 1..200)) {
        let h = build(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.percentile(0.0), sorted[0]);
        prop_assert_eq!(h.percentile(100.0), *sorted.last().unwrap());
    }

    #[test]
    fn interior_percentile_brackets_oracle(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        p in 1.0f64..99.0,
    ) {
        let h = build(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = oracle_percentile(&sorted, p);
        let approx = h.percentile(p);
        // The bucket walk returns the power-of-two upper bound of the bucket
        // holding the target rank, so it can never undershoot the exact
        // quantile and overshoots by at most one bucket (a factor of two;
        // values ≤ 1 share the bucket with upper bound 2).
        prop_assert!(approx >= exact, "p{p}: approx {approx} < exact {exact}");
        let ceiling = (exact as u128 * 2).max(2);
        prop_assert!(
            approx as u128 <= ceiling,
            "p{p}: approx {approx} above one-bucket ceiling {ceiling} (exact {exact})"
        );
    }

    #[test]
    fn merge_equals_single_stream_recording(
        values in proptest::collection::vec(0u64..1_000_000_000, 2..200),
        split_seed in 0u64..1_000_000,
    ) {
        let split = 1 + (split_seed as usize) % (values.len() - 1);
        let (left, right) = values.split_at(split);
        let mut merged = build(left);
        merged.merge(&build(right));
        let whole = build(&values);
        // `Histogram` derives `PartialEq`, so this compares buckets, count,
        // sum, min and max all at once.
        prop_assert_eq!(merged, whole);
    }

    #[test]
    fn summary_is_consistent_with_accessors(values in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let h = build(&values);
        let s: Summary = h.summary();
        prop_assert_eq!(s.count, h.count());
        prop_assert_eq!(s.min, h.min());
        prop_assert_eq!(s.max, h.max());
        prop_assert_eq!(s.p50, h.percentile(50.0));
        prop_assert_eq!(s.p99, h.percentile(99.0));
        prop_assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "percentiles must be monotone");
    }

    #[test]
    fn running_merge_is_differential_with_single_stream(
        ints in proptest::collection::vec(0u32..100_000, 2..120),
        split_seed in 0u64..1_000_000,
    ) {
        // Integer-valued f64 samples keep the running sums exactly
        // representable, so the merged mean must match bit-for-bit.
        let samples: Vec<f64> = ints.iter().map(|&v| v as f64).collect();
        let mut single = throttledb_sim::stats::Running::new();
        for &x in &samples {
            single.push(x);
        }
        let split = 1 + (split_seed as usize) % (samples.len() - 1);
        let (left, right) = samples.split_at(split);
        let mut a = throttledb_sim::stats::Running::new();
        let mut b = throttledb_sim::stats::Running::new();
        left.iter().for_each(|&x| a.push(x));
        right.iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), single.count());
        prop_assert_eq!(a.mean().to_bits(), single.mean().to_bits());
        let (va, vs) = (a.variance(), single.variance());
        if vs == 0.0 {
            prop_assert!(va.abs() < 1e-9, "variance {va} should be ~0");
        } else {
            let rel = (va - vs).abs() / vs;
            prop_assert!(rel < 1e-9, "relative variance error {rel}");
        }
    }
}
