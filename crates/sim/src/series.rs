//! Time-series recorders used to regenerate the paper's figures.
//!
//! Figures 3–5 of the paper plot "completed queries per time slice" against
//! wall-clock seconds; [`TimeSeries`] implements exactly that bucketed
//! counter. Figure 2 plots per-query compilation memory over time;
//! [`GaugeTimeline`] records (time, value) samples of an arbitrary gauge.

use crate::clock::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Counts events into fixed-width time buckets ("slices" in the paper).
///
/// The bucket vector is bounded: events at or beyond bucket
/// `max_buckets` fold into a single saturating overflow bucket instead of
/// growing the vector (an event near [`SimTime::MAX`] — e.g. a timeout
/// scheduled with a saturating deadline — would otherwise demand an
/// astronomical allocation and abort the process).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    bucket_width: SimDuration,
    buckets: Vec<u64>,
    name: String,
    /// Largest number of in-range buckets the vector may grow to.
    max_buckets: usize,
    /// Events recorded at or beyond `max_buckets · bucket_width`
    /// (saturating).
    overflow: u64,
}

/// Default cap on the bucket vector: at one-hour slices this covers about
/// 120 years of virtual time; at one-second slices, about 12 days.
const DEFAULT_MAX_BUCKETS: usize = 1 << 20;

impl TimeSeries {
    /// Create a series with buckets of `bucket_width` and the default
    /// bucket cap.
    pub fn new(name: impl Into<String>, bucket_width: SimDuration) -> Self {
        Self::with_max_buckets(name, bucket_width, DEFAULT_MAX_BUCKETS)
    }

    /// Create a series capped at `max_buckets` in-range buckets; later
    /// events fold into the saturating [`TimeSeries::overflow`] bucket.
    pub fn with_max_buckets(
        name: impl Into<String>,
        bucket_width: SimDuration,
        max_buckets: usize,
    ) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be positive");
        assert!(max_buckets > 0, "need at least one bucket");
        TimeSeries {
            bucket_width,
            buckets: Vec::new(),
            name: name.into(),
            max_buckets,
            overflow: 0,
        }
    }

    /// The series name (used when printing figure data).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Width of one bucket.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket_width
    }

    /// Record one event at time `t`.
    pub fn record(&mut self, t: SimTime) {
        self.record_n(t, 1);
    }

    /// Record `n` events at time `t`. Events past the bucket cap land in
    /// the saturating overflow bucket.
    pub fn record_n(&mut self, t: SimTime, n: u64) {
        let idx = (t.as_micros() / self.bucket_width.as_micros()) as usize;
        if idx >= self.max_buckets {
            self.overflow = self.overflow.saturating_add(n);
            return;
        }
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
    }

    /// Number of in-range buckets with data (including interior zero
    /// buckets; the overflow bucket is not counted).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when nothing has been recorded (overflow included).
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty() && self.overflow == 0
    }

    /// The configured cap on in-range buckets.
    pub fn max_buckets(&self) -> usize {
        self.max_buckets
    }

    /// Events recorded at or beyond the bucket cap (saturating). These are
    /// excluded from [`TimeSeries::iter`] and the per-bucket means but are
    /// part of [`TimeSeries::total`].
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The count in bucket `idx` (0 if past the end).
    pub fn bucket(&self, idx: usize) -> u64 {
        self.buckets.get(idx).copied().unwrap_or(0)
    }

    /// Iterate `(bucket_start_time, count)` pairs over the in-range
    /// buckets (the overflow bucket has no single start time and is
    /// excluded; read it via [`TimeSeries::overflow`]).
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, u64)> + '_ {
        let w = self.bucket_width;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, c)| (SimTime::from_micros(i as u64 * w.as_micros()), *c))
    }

    /// Total events across all buckets, overflow included (saturating).
    pub fn total(&self) -> u64 {
        self.buckets
            .iter()
            .sum::<u64>()
            .saturating_add(self.overflow)
    }

    /// Total events recorded at or after `from` (used to drop the warm-up
    /// period, as the paper does). Overflow events all lie at or beyond the
    /// bucket cap, so they count whenever `from` is at or below it.
    pub fn total_from(&self, from: SimTime) -> u64 {
        let in_range: u64 = self
            .iter()
            .filter(|(t, _)| *t >= from)
            .map(|(_, c)| c)
            .sum();
        let cap_start = (self.max_buckets as u64).saturating_mul(self.bucket_width.as_micros());
        if from.as_micros() <= cap_start {
            in_range + self.overflow
        } else {
            in_range
        }
    }

    /// Mean events per bucket over in-range buckets starting at or after
    /// `from` (the overflow bucket is excluded: it has no defined width).
    /// Accumulates in one streaming pass (no intermediate vector).
    pub fn mean_per_bucket_from(&self, from: SimTime) -> f64 {
        let (mut sum, mut buckets) = (0u64, 0u64);
        for (t, c) in self.iter() {
            if t >= from {
                sum += c;
                buckets += 1;
            }
        }
        if buckets == 0 {
            0.0
        } else {
            sum as f64 / buckets as f64
        }
    }
}

/// Records `(time, value)` samples of a gauge such as a task's allocated
/// bytes or the buffer pool size.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GaugeTimeline {
    name: String,
    samples: Vec<(SimTime, u64)>,
}

impl GaugeTimeline {
    /// Create an empty timeline.
    pub fn new(name: impl Into<String>) -> Self {
        GaugeTimeline {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The timeline name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record a sample. Samples may repeat a timestamp (e.g. a block and an
    /// unblock at the same instant); they are kept in insertion order.
    pub fn record(&mut self, t: SimTime, value: u64) {
        debug_assert!(
            self.samples.last().map_or(true, |(last, _)| *last <= t),
            "gauge samples must be recorded in time order"
        );
        self.samples.push((t, value));
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[(SimTime, u64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The maximum value observed, or 0 if empty.
    pub fn max_value(&self) -> u64 {
        self.samples.iter().map(|(_, v)| *v).max().unwrap_or(0)
    }

    /// The maximum value sampled in the half-open window `[start, end)`,
    /// or 0 if no sample falls inside. Scenario phase reports use this to
    /// attribute gauge peaks to the phase in which they occurred.
    pub fn max_in_range(&self, start: SimTime, end: SimTime) -> u64 {
        self.samples
            .iter()
            .filter(|(t, _)| *t >= start && *t < end)
            .map(|(_, v)| *v)
            .max()
            .unwrap_or(0)
    }

    /// The value in effect at time `t` (last sample at or before `t`).
    pub fn value_at(&self, t: SimTime) -> Option<u64> {
        self.samples
            .iter()
            .take_while(|(st, _)| *st <= t)
            .last()
            .map(|(_, v)| *v)
    }

    /// The longest span during which the value did not change ("flat
    /// portions" in the paper's Figure 2 correspond to blocked compilations).
    pub fn longest_plateau(&self) -> SimDuration {
        let mut best = SimDuration::ZERO;
        let mut i = 0;
        while i < self.samples.len() {
            let (start, v) = self.samples[i];
            let mut j = i + 1;
            let mut end = start;
            while j < self.samples.len() && self.samples[j].1 == v {
                end = self.samples[j].0;
                j += 1;
            }
            best = best.max(end.saturating_since(start));
            i = j.max(i + 1);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice() -> SimDuration {
        SimDuration::from_secs(3600)
    }

    #[test]
    fn records_into_correct_buckets() {
        let mut s = TimeSeries::new("completed", slice());
        s.record(SimTime::from_secs(10));
        s.record(SimTime::from_secs(3599));
        s.record(SimTime::from_secs(3600));
        s.record_n(SimTime::from_secs(7200), 5);
        assert_eq!(s.bucket(0), 2);
        assert_eq!(s.bucket(1), 1);
        assert_eq!(s.bucket(2), 5);
        assert_eq!(s.total(), 8);
    }

    #[test]
    fn total_from_skips_warmup() {
        let mut s = TimeSeries::new("completed", slice());
        s.record_n(SimTime::from_secs(100), 10); // warm-up
        s.record_n(SimTime::from_secs(10_800), 7);
        s.record_n(SimTime::from_secs(14_400), 9);
        assert_eq!(s.total_from(SimTime::from_secs(10_800)), 16);
        assert_eq!(s.total(), 26);
    }

    #[test]
    fn mean_per_bucket_from_averages() {
        let mut s = TimeSeries::new("completed", slice());
        s.record_n(SimTime::from_secs(0), 100);
        s.record_n(SimTime::from_secs(3600), 30);
        s.record_n(SimTime::from_secs(7200), 50);
        let mean = s.mean_per_bucket_from(SimTime::from_secs(3600));
        assert!((mean - 40.0).abs() < 1e-9);
    }

    #[test]
    fn iter_reports_bucket_start_times() {
        let mut s = TimeSeries::new("x", SimDuration::from_secs(10));
        s.record(SimTime::from_secs(25));
        let pts: Vec<_> = s.iter().collect();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2], (SimTime::from_secs(20), 1));
        assert_eq!(pts[0], (SimTime::from_secs(0), 0));
    }

    #[test]
    fn empty_series_is_sane() {
        let s = TimeSeries::new("x", slice());
        assert!(s.is_empty());
        assert_eq!(s.total(), 0);
        assert_eq!(s.bucket(3), 0);
        assert_eq!(s.overflow(), 0);
        assert_eq!(s.mean_per_bucket_from(SimTime::ZERO), 0.0);
    }

    #[test]
    fn far_future_event_folds_into_overflow() {
        // Regression: recording at SimTime::MAX used to resize the bucket
        // vector to ~5·10¹² entries and abort the process.
        let mut s = TimeSeries::new("completed", slice());
        s.record(SimTime::from_secs(10));
        s.record(SimTime::MAX);
        assert_eq!(s.overflow(), 1);
        assert_eq!(s.total(), 2);
        assert_eq!(s.len(), 1, "only the in-range bucket materializes");
        assert_eq!(s.total_from(SimTime::ZERO), 2);
        // The overflow bucket has no width, so per-bucket means skip it.
        assert_eq!(s.mean_per_bucket_from(SimTime::ZERO), 1.0);
        assert!(!s.is_empty());
    }

    #[test]
    fn overflow_saturates_and_respects_custom_cap() {
        let mut s = TimeSeries::with_max_buckets("x", SimDuration::from_secs(10), 2);
        assert_eq!(s.max_buckets(), 2);
        s.record(SimTime::from_secs(5)); // bucket 0
        s.record(SimTime::from_secs(15)); // bucket 1
        s.record(SimTime::from_secs(25)); // bucket 2 -> overflow
        s.record_n(SimTime::from_secs(99), u64::MAX); // saturates
        assert_eq!(s.len(), 2);
        assert_eq!(s.overflow(), u64::MAX);
        assert_eq!(s.bucket(0), 1);
        assert_eq!(s.bucket(1), 1);
        // total saturates rather than wrapping past u64::MAX.
        assert_eq!(s.total(), u64::MAX);
        // `from` at the cap start (2 buckets · 10 s = 20 s) drops the two
        // in-range buckets but keeps the overflow, which lies at or beyond
        // the cap.
        assert_eq!(s.total_from(SimTime::from_secs(20)), u64::MAX);
    }

    #[test]
    fn gauge_value_at_finds_latest_sample() {
        let mut g = GaugeTimeline::new("q1-memory");
        g.record(SimTime::from_secs(1), 100);
        g.record(SimTime::from_secs(5), 300);
        g.record(SimTime::from_secs(9), 50);
        assert_eq!(g.value_at(SimTime::from_secs(0)), None);
        assert_eq!(g.value_at(SimTime::from_secs(1)), Some(100));
        assert_eq!(g.value_at(SimTime::from_secs(6)), Some(300));
        assert_eq!(g.value_at(SimTime::from_secs(100)), Some(50));
        assert_eq!(g.max_value(), 300);
    }

    #[test]
    fn gauge_plateau_detects_blocked_span() {
        let mut g = GaugeTimeline::new("q1-memory");
        g.record(SimTime::from_secs(0), 10);
        g.record(SimTime::from_secs(1), 20);
        // blocked at 20 for 30 seconds
        g.record(SimTime::from_secs(5), 20);
        g.record(SimTime::from_secs(31), 20);
        g.record(SimTime::from_secs(32), 40);
        assert_eq!(g.longest_plateau(), SimDuration::from_secs(30));
    }

    #[test]
    fn gauge_max_in_range_is_half_open() {
        let mut g = GaugeTimeline::new("mem");
        g.record(SimTime::from_secs(0), 10);
        g.record(SimTime::from_secs(5), 50);
        g.record(SimTime::from_secs(10), 90);
        g.record(SimTime::from_secs(15), 20);
        // [0, 10) excludes the sample at t=10.
        assert_eq!(
            g.max_in_range(SimTime::from_secs(0), SimTime::from_secs(10)),
            50
        );
        // [10, 20) includes it.
        assert_eq!(
            g.max_in_range(SimTime::from_secs(10), SimTime::from_secs(20)),
            90
        );
        // An empty window reports 0.
        assert_eq!(
            g.max_in_range(SimTime::from_secs(20), SimTime::from_secs(30)),
            0
        );
    }

    #[test]
    fn gauge_empty_defaults() {
        let g = GaugeTimeline::new("empty");
        assert!(g.is_empty());
        assert_eq!(g.max_value(), 0);
        assert_eq!(g.longest_plateau(), SimDuration::ZERO);
    }
}
