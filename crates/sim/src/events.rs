//! The discrete-event queue.
//!
//! Events are ordered by their scheduled [`SimTime`]; events scheduled for the
//! same instant are dispatched in FIFO order of insertion. This stability is
//! load-bearing for determinism: the engine schedules "compilation step
//! finished" and "gateway released" events at identical timestamps and the
//! experiment figures must not depend on heap tie-breaking.
//!
//! # Implementation
//!
//! [`EventQueue`] is a **timing wheel**: near-future events hash into an
//! array of fixed-width time buckets and far-future events wait in a small
//! overflow heap, so the scheduler never pays `O(log n)` sift costs over the
//! whole pending set the way the original [`HeapEventQueue`] did. Payloads
//! live in a slab [`Arena`] with a free list; only
//! 24-byte `(time, seq, slot)` index records move through the wheel, and a
//! steady-state simulation performs no allocation per event once the arena
//! and buckets reach their high-water marks. The pop order is *exactly* the
//! `(time, seq)` order of the old heap — `sim`'s differential proptests and
//! the scenario crate's recorded golden traces both verify this byte for
//! byte.
//!
//! Below ~1k pending events the wheel's bucket bookkeeping costs more per
//! operation than a tiny binary heap, so the queue is *adaptive*: it starts
//! in a **small mode** that holds the pending set in two bands of
//! inline-payload records (no arena indirection, no buckets touched, no
//! near array allocated). Events due before a sliding horizon sit in a
//! small 4-ary min-heap; everything later is an O(1) append to an unsorted
//! parked list. When the heap drains, one scan admits the next band of
//! parked events, and the band width self-tunes so a band is a useful
//! fraction of the parked set. The heap thus stays well below the
//! pending-set size and each event pays only a constant number of scan
//! touches — both bulk fills and closed-loop churn beat the reference
//! heap, whose every push and pop sifts across the full population. The queue migrates one way onto the wheel the first time the
//! pending set exceeds `SMALL_LIMIT` events. Pop order is identical in
//! both modes and across the migration, so determinism is unaffected.
//! `BENCH_event_queue.json` records the result: ≥1× at heap-friendly
//! depths, 2–4× and growing at the 100k–1M pending events the ROADMAP's
//! millions-of-clients north star implies, where the heap's `O(log n)`
//! cache-missing sifts dominate.

use crate::arena::Arena;
use crate::clock::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// An event that has been scheduled onto the queue.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic sequence number used to break ties FIFO.
    pub seq: u64,
    /// The caller's payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A handle to a scheduled event, returned by [`EventQueue::schedule`] and
/// accepted by [`EventQueue::cancel`].
///
/// The handle pairs the event's arena slot with its unique sequence number,
/// so cancelling an event that has already fired (its slot since reused) is
/// detected and reported as a no-op instead of killing an innocent event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    seq: u64,
}

impl EventId {
    /// The event's FIFO sequence number (unique per queue).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// One bucket/heap index record: the payload stays in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    /// Fire time in microseconds.
    at: u64,
    /// FIFO tie-break.
    seq: u64,
    /// Arena slot holding the payload.
    slot: u32,
}

/// Small-mode record: the payload rides inline, so the hot path touches one
/// contiguous `Vec` and nothing else. Ordered by `(at, seq)` only.
#[derive(Debug)]
struct SmallEntry<E> {
    /// Fire time in microseconds.
    at: u64,
    /// FIFO tie-break.
    seq: u64,
    payload: E,
}

impl<E> SmallEntry<E> {
    /// The heap key: `(time, seq)`, matching [`Entry`]'s derived order.
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

/// Sentinel arena slot marking an [`EventId`] issued while the queue was in
/// small mode (inline payloads have no arena slot). The arena's own NIL is
/// `u32::MAX`, so no real slot can collide with it.
const SMALL_SLOT: u32 = u32::MAX;

/// Parked sets at or below this size are banded wholesale — a scan
/// admitting only a few events would not amortize.
const SMALL_BAND_MIN: usize = 64;

/// Initial small-mode band width (µs): ≈1.05 s.
const SMALL_BAND_INIT_US: u64 = 1 << 20;
/// Band-width feedback bounds (µs): ≈65 ms to ≈67 s (the wheel's own near
/// window), so the controller can track microsecond-dense bursts and
/// minute-scale think times alike.
const SMALL_BAND_MIN_US: u64 = 1 << 16;
const SMALL_BAND_MAX_US: u64 = 1 << 26;

/// A payload slot: `None` marks an event tombstoned by
/// [`EventQueue::cancel`] whose index record has not surfaced yet.
#[derive(Debug)]
struct Stored<E> {
    seq: u64,
    payload: Option<E>,
}

/// Width of one near-future bucket: `2^TICK_BITS` microseconds (≈33 ms).
const TICK_BITS: u32 = 15;
/// Number of near-future buckets; the near window spans
/// `NEAR_SLOTS << TICK_BITS` µs ≈ 67 s of virtual time (beyond the mean
/// think time, so a closed-loop population mostly avoids the far heap).
const NEAR_SLOTS: usize = 1 << 11;
/// Words in the bucket-occupancy bitmap.
const OCC_WORDS: usize = NEAR_SLOTS / 64;
/// Staged-run length beyond which an earlier-than-cursor schedule retreats
/// the cursor (re-bucketing the run) instead of insertion-sorting into it.
const RETREAT_LIMIT: usize = 64;
/// Pending-set size beyond which the queue migrates from the small-N
/// banded mode onto the timing wheel. The switch is one-way: once the
/// population has been large, the wheel's steady-state wins dominate even
/// if the set later shrinks.
const SMALL_LIMIT: usize = 1024;

/// A priority queue of events keyed by virtual time with FIFO tie-breaking,
/// implemented as a timing wheel with an adaptive small-N heap mode (see
/// the [module docs](self)).
///
/// While `small` is set, every pending event lives in one of three sets of
/// inline-payload `SmallEntry` records: `band`, a run sorted descending
/// on `(time, seq)` holding events due before `horizon_end` (the head pops
/// O(1) off the end); `late`, a small 4-ary min-heap catching events that
/// land inside the horizon *after* the band was sorted; and `parked`, an
/// unsorted list of everything at or past the horizon. Parked events are
/// by invariant never earlier than the horizon, so the smaller of the band
/// tail and the late root is the exact queue head; when both drain, one
/// O(parked) scan plus one band-sized sort slides the horizon forward. The
/// wheel structures stay untouched (and unallocated), and small mode never
/// carries a tombstone: cancellation removes the record in place (a rare,
/// O(n)-scan path). The invariants below apply once the queue has migrated
/// onto the wheel. In both modes the head record is kept live, so
/// [`EventQueue::peek_time`] is O(1) and exact.
///
/// Structural invariants in wheel mode (checked by the differential
/// proptests):
///
/// 1. `staged` holds every pending event whose bucket index ("tick") is at
///    most `cursor`, as a run sorted *descending* on `(time, seq)` — the
///    earliest event pops O(1) off the end, and each bucket is sorted once
///    when staged instead of heap-sifted per event;
/// 2. `near[t % NEAR_SLOTS]` holds events with tick `t` for
///    `cursor < t < cursor + NEAR_SLOTS`, unsorted;
/// 3. `far` holds events with tick `≥ cursor + NEAR_SLOTS`;
/// 4. whenever the queue is non-empty, `staged` is non-empty and its head is
///    live (not cancelled) — which makes [`EventQueue::peek_time`] O(1) and
///    keeps `len`/`is_empty` exact in the face of cancellations.
pub struct EventQueue<E> {
    arena: Arena<Stored<E>>,
    staged: Vec<Entry>,
    near: Vec<Vec<Entry>>,
    occupied: [u64; OCC_WORDS],
    far: BinaryHeap<std::cmp::Reverse<Entry>>,
    /// Outstanding cancelled-but-unswept events; when zero (the common
    /// case — the engine cancels nothing), every liveness check is skipped.
    tombstones: usize,
    /// Small-N mode: `band` + `late` + `parked` hold everything, the wheel
    /// is idle.
    small: bool,
    /// Small mode only: the current band of events due before
    /// `horizon_end`, sorted descending on `(at, seq)` — the head pops O(1)
    /// off the end.
    band: Vec<SmallEntry<E>>,
    /// Small mode only: events scheduled *after* their band was built (due
    /// before `horizon_end` but not in `band`), as a small 4-ary min-heap
    /// on `(at, seq)`.
    late: Vec<SmallEntry<E>>,
    /// Small mode only: events due at or after `horizon_end`, unsorted.
    parked: Vec<SmallEntry<E>>,
    /// Small mode only: exclusive end (µs) of the active band. Monotone.
    horizon_end: u64,
    /// Small mode only: current band width (µs), adapted by feedback so
    /// each band admits a useful fraction of the parked set.
    band_width: u64,
    /// Absolute tick of the bucket currently staged.
    cursor: u64,
    next_seq: u64,
    last_popped: SimTime,
    /// Live (scheduled, not yet popped or cancelled) events.
    live: usize,
    /// Events pending *outside* the queue's own structures: sequence
    /// numbers reserved through [`EventQueue::reserve_seq`] whose firing
    /// is driven by an external plane (the engine's sharded arrival
    /// plane). They count toward depth accounting but deliberately not
    /// toward `live`, whose value gates the small-mode migration and the
    /// wheel's "live events exist somewhere" invariants.
    external: usize,
    /// High-water mark of `live + external` over the queue's lifetime.
    peak_live: usize,
    /// Events popped over the queue's lifetime.
    dispatched: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.live)
            .field("external", &self.external)
            .field("peak_len", &self.peak_live)
            .field("dispatched", &self.dispatched)
            .field("cursor_tick", &self.cursor)
            .field("staged", &self.staged.len())
            .field("far", &self.far.len())
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            arena: Arena::new(),
            staged: Vec::new(),
            // The near buckets are not allocated until the queue leaves
            // small mode: a queue that never grows past SMALL_LIMIT never
            // pays for the wheel.
            near: Vec::new(),
            occupied: [0; OCC_WORDS],
            far: BinaryHeap::new(),
            tombstones: 0,
            small: true,
            band: Vec::new(),
            late: Vec::new(),
            parked: Vec::new(),
            horizon_end: 0,
            band_width: SMALL_BAND_INIT_US,
            cursor: 0,
            next_seq: 0,
            last_popped: SimTime::ZERO,
            live: 0,
            external: 0,
            peak_live: 0,
            dispatched: 0,
        }
    }

    /// Number of pending events (cancelled events are excluded).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The most events that were ever pending at once — the experiment
    /// harness reports this as the run's peak queue depth.
    pub fn peak_len(&self) -> usize {
        self.peak_live
    }

    /// Total events popped over the queue's lifetime — the experiment
    /// harness divides this by wall time for an events/sec figure.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Reserve the next sequence number for an event whose firing is
    /// driven by an external plane (it never enters the queue's own
    /// structures). The reservation counts as one pending event for
    /// depth accounting, exactly as [`EventQueue::schedule`] would, and
    /// keeps the `(time, seq)` total order shared between internal and
    /// external events: whoever reserves/schedules first fires first at
    /// equal times. Pair every reservation with one
    /// [`EventQueue::external_pop`].
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.external += 1;
        self.peak_live = self.peak_live.max(self.live + self.external);
        seq
    }

    /// Record that an externally-pending event (see
    /// [`EventQueue::reserve_seq`]) fired at `at`: the dispatch counter
    /// and pop frontier advance exactly as if the event had popped off
    /// the queue itself.
    pub fn external_pop(&mut self, at: SimTime) {
        debug_assert!(self.external > 0, "external_pop without a reservation");
        debug_assert!(at >= self.last_popped, "external event fired in the past");
        self.external -= 1;
        self.dispatched += 1;
        self.last_popped = self.last_popped.max(at);
    }

    /// The sequence number the next [`EventQueue::schedule`] or
    /// [`EventQueue::reserve_seq`] will hand out. An external merge plane
    /// uses it to enumerate a run of consecutive reservations up front
    /// (see [`EventQueue::external_batch`]) instead of reserving one at a
    /// time.
    pub fn peek_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bulk form of a pure pop/reserve run: `popped` externally-pending
    /// events fired (the last at `at`) and `reserved` fresh reservations
    /// were taken, interleaved pop-then-reserve per event exactly as the
    /// one-at-a-time [`EventQueue::external_pop`] /
    /// [`EventQueue::reserve_seq`] pair would. Because each pop precedes
    /// its reservation, outstanding external reservations never exceed
    /// their starting count mid-run, so `peak_live` cannot advance and is
    /// deliberately left untouched. `reserved` is `popped` or
    /// `popped - 1` (the final event may end its stream).
    pub fn external_batch(&mut self, popped: u64, reserved: u64, at: SimTime) {
        debug_assert!(popped >= reserved && popped - reserved <= 1);
        debug_assert!(self.external > 0, "external_batch without a reservation");
        debug_assert!(at >= self.last_popped, "external run fired in the past");
        self.external -= (popped - reserved) as usize;
        self.dispatched += popped;
        self.last_popped = self.last_popped.max(at);
        self.next_seq += reserved;
    }

    /// `(time, seq)` of the next *internal* event, if any — the key an
    /// external plane compares its own candidates against when merging
    /// two event streams into one `(time, seq)` order. Externally
    /// reserved events are invisible here; their keys live with the
    /// caller.
    pub fn peek_stamp(&self) -> Option<(SimTime, u64)> {
        if self.small {
            let in_horizon = match (self.band.last(), self.late.first()) {
                (Some(b), Some(l)) => Some(b.key().min(l.key())),
                (Some(b), None) => Some(b.key()),
                (None, Some(l)) => Some(l.key()),
                (None, None) => self.parked.iter().map(|e| e.key()).min(),
            };
            return in_horizon.map(|(at, seq)| (SimTime::from_micros(at), seq));
        }
        // Invariant 4: the earliest live event is always at the staged head.
        self.staged
            .last()
            .map(|e| (SimTime::from_micros(e.at), e.seq))
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Scheduling into the past (before the last popped event) is a logic
    /// error in the simulation and panics in debug builds; in release builds
    /// the event is clamped to the current frontier so the run can proceed.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.last_popped,
            "scheduled an event in the past: {} < {}",
            at,
            self.last_popped
        );
        let at = at.max(self.last_popped);
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.small {
            if self.live < SMALL_LIMIT {
                let entry = SmallEntry {
                    at: at.as_micros(),
                    seq,
                    payload,
                };
                if entry.at < self.horizon_end {
                    // Due inside the current band: the sorted run is already
                    // built, so the latecomer goes to the small overflow heap.
                    self.late.push(entry);
                    self.sift_up(self.late.len() - 1);
                } else {
                    // The common case for think-time delays: an O(1) append,
                    // banded into a sorted run only when its horizon arrives.
                    self.parked.push(entry);
                }
                self.live += 1;
                self.peak_live = self.peak_live.max(self.live + self.external);
                return EventId {
                    slot: SMALL_SLOT,
                    seq,
                };
            }
            // Crossing the limit: move everything onto the wheel, then
            // place this event through the normal wheel path below.
            self.migrate_to_wheel();
        }
        let slot = self.arena.insert(Stored {
            seq,
            payload: Some(payload),
        });
        let entry = Entry {
            at: at.as_micros(),
            seq,
            slot,
        };
        let was_empty = self.staged.is_empty();
        let tick = entry.at >> TICK_BITS;
        if tick <= self.cursor {
            // An event at or before the staged bucket joins the staged run
            // at its sorted position. If the run has grown large and the
            // event lands strictly earlier, retreat the cursor instead:
            // bulk loads (a sweep scheduling a million first submissions
            // against a parked cursor) would otherwise degrade the run
            // into an O(n²) insertion sort.
            if tick < self.cursor && self.staged.len() >= RETREAT_LIMIT {
                self.retreat(tick);
            }
            let pos = self.staged.partition_point(|x| *x > entry);
            self.staged.insert(pos, entry);
        } else if tick < self.cursor + NEAR_SLOTS as u64 {
            self.push_near(entry, tick);
        } else {
            self.far.push(std::cmp::Reverse(entry));
        }
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live + self.external);
        if was_empty {
            // Invariant 4: the earliest pending event must be staged.
            self.settle();
        }
        EventId { slot, seq }
    }

    /// Cancel a scheduled event. Returns `true` if the event was still
    /// pending (and is now gone); `false` if it already fired, was already
    /// cancelled, or the queue was cleared since.
    ///
    /// In wheel mode the index record is tombstoned in place and swept out
    /// lazily when its bucket is staged, but `len`, `is_empty` and
    /// [`EventQueue::peek_time`] account for the cancellation immediately.
    /// Handles issued in small mode carry no arena slot and are resolved by
    /// sequence number instead — an O(n) scan, fine for a rare operation
    /// over a by-construction-small pending set.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.slot == SMALL_SLOT {
            return self.cancel_by_seq(id.seq);
        }
        match self.arena.get_mut(id.slot) {
            Some(stored) if stored.seq == id.seq && stored.payload.is_some() => {
                stored.payload = None;
                self.live -= 1;
                self.tombstones += 1;
                // A tombstone must not linger at the staged head.
                self.settle();
                true
            }
            _ => false,
        }
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.small {
            // Band tail and late root are both before the horizon and every
            // parked event is at or past it, so the earlier of the two is
            // the global head; scan the parked list only in the rare moment
            // both in-horizon structures are empty.
            let head = match (self.band.last(), self.late.first()) {
                (Some(b), Some(l)) => Some(b.key().min(l.key()).0),
                (Some(b), None) => Some(b.at),
                (None, Some(l)) => Some(l.at),
                (None, None) => self.parked.iter().map(|e| e.at).min(),
            };
            return head.map(SimTime::from_micros);
        }
        // Invariant 4: the earliest live event is always at the staged head.
        self.staged.last().map(|e| SimTime::from_micros(e.at))
    }

    /// Pop the next event only if it fires strictly before `until`, leaving
    /// later events queued. This is the phase-boundary primitive: a driver
    /// can advance the simulation to a boundary, mutate the model (client
    /// count, workload mix, budgets), and continue, without disturbing
    /// events already scheduled beyond the boundary.
    pub fn pop_before(&mut self, until: SimTime) -> Option<ScheduledEvent<E>> {
        if self.peek_time()? < until {
            self.pop()
        } else {
            None
        }
    }

    /// Pop the next event in (time, insertion) order.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.small {
            if self.band.is_empty() && self.late.is_empty() {
                if self.parked.is_empty() {
                    return None;
                }
                self.advance_horizon();
            }
            let from_late = match (self.band.last(), self.late.first()) {
                (Some(b), Some(l)) => l.key() < b.key(),
                (None, Some(_)) => true,
                _ => false,
            };
            let entry = if from_late {
                let n = self.late.len();
                self.late.swap(0, n - 1);
                let entry = self.late.pop().expect("late is non-empty");
                if !self.late.is_empty() {
                    self.sift_down(0);
                }
                entry
            } else {
                self.band.pop().expect("an in-horizon event exists")
            };
            self.last_popped = SimTime::from_micros(entry.at);
            self.live -= 1;
            self.dispatched += 1;
            return Some(ScheduledEvent {
                at: self.last_popped,
                seq: entry.seq,
                payload: entry.payload,
            });
        }
        let entry = self.staged.pop()?;
        let stored = self.arena.remove(entry.slot);
        let payload = stored.payload.expect("staged head is live (invariant 4)");
        self.last_popped = SimTime::from_micros(entry.at);
        self.live -= 1;
        self.dispatched += 1;
        // Fast path: more staged events and nothing cancelled anywhere.
        if self.staged.is_empty() || self.tombstones > 0 {
            self.settle();
        }
        Some(ScheduledEvent {
            at: self.last_popped,
            seq: entry.seq,
            payload,
        })
    }

    /// Drain every event scheduled at exactly the same time as the head.
    /// Useful for batch-dispatching simultaneous events.
    pub fn pop_simultaneous(&mut self) -> Vec<ScheduledEvent<E>> {
        let mut out = Vec::new();
        let Some(t) = self.peek_time() else {
            return out;
        };
        while self.peek_time() == Some(t) {
            out.push(self.pop().expect("peeked event must pop"));
        }
        out
    }

    /// Remove all pending events, returning how many were dropped.
    pub fn clear(&mut self) -> usize {
        let n = self.live;
        self.arena.clear();
        self.staged.clear();
        self.band.clear();
        self.late.clear();
        self.parked.clear();
        self.far.clear();
        for bucket in &mut self.near {
            bucket.clear();
        }
        self.occupied = [0; OCC_WORDS];
        self.live = 0;
        self.tombstones = 0;
        self.cursor = self.last_popped.as_micros() >> TICK_BITS;
        n
    }

    // --- small-mode internals ----------------------------------------------

    /// Restore the late heap's 4-ary order upward from `i`.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.late[i].key() < self.late[parent].key() {
                self.late.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    /// Restore the late heap's 4-ary order downward from `i`.
    fn sift_down(&mut self, mut i: usize) {
        let len = self.late.len();
        loop {
            let first = 4 * i + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            for child in (first + 1)..(first + 4).min(len) {
                if self.late[child].key() < self.late[min].key() {
                    min = child;
                }
            }
            if self.late[min].key() < self.late[i].key() {
                self.late.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
    }

    /// Band and late heap both drained with parked events remaining: slide
    /// the horizon one band width past the earliest parked event, move
    /// everything the band covers out of `parked`, and sort it once into a
    /// descending run so each pop is O(1). The band width adapts by
    /// feedback — doubled when a band admits too little (the scan would not
    /// amortize), halved when it swallows too much (the sort would grow
    /// toward the full pending set) — so each admitted event pays O(1)
    /// scan touches at any event-time density.
    fn advance_horizon(&mut self) {
        debug_assert!(self.band.is_empty() && self.late.is_empty() && !self.parked.is_empty());
        let min_at = self
            .parked
            .iter()
            .map(|e| e.at)
            .min()
            .expect("parked is non-empty");
        // Parked events are all at or past the old horizon, so the new
        // horizon only ever moves forward.
        self.horizon_end = min_at.saturating_add(self.band_width);
        let mut i = 0;
        while i < self.parked.len() {
            if self.parked[i].at < self.horizon_end {
                let entry = self.parked.swap_remove(i);
                self.band.push(entry);
            } else {
                i += 1;
            }
        }
        self.band
            .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
        let admitted = self.band.len();
        let target = ((self.parked.len() + admitted) / 8).max(SMALL_BAND_MIN);
        if admitted < target / 2 {
            self.band_width = (self.band_width * 2).min(SMALL_BAND_MAX_US);
        } else if admitted > target * 2 {
            self.band_width = (self.band_width / 2).max(SMALL_BAND_MIN_US);
        }
        debug_assert!(!self.band.is_empty());
    }

    /// Cancel an event through a small-mode handle (no arena slot): scan for
    /// its sequence number. In small mode the record is removed in place; if
    /// the queue has since migrated, the matching wheel record is tombstoned
    /// through its arena slot like any other cancellation.
    fn cancel_by_seq(&mut self, seq: u64) -> bool {
        if self.small {
            if let Some(i) = self.parked.iter().position(|e| e.seq == seq) {
                self.parked.swap_remove(i);
                self.live -= 1;
                return true;
            }
            if let Some(i) = self.band.iter().position(|e| e.seq == seq) {
                // Keep the band's descending sort: shift, don't swap.
                self.band.remove(i);
                self.live -= 1;
                return true;
            }
            let Some(i) = self.late.iter().position(|e| e.seq == seq) else {
                return false;
            };
            let n = self.late.len();
            self.late.swap(i, n - 1);
            self.late.pop();
            if i < self.late.len() {
                // The element moved into the hole may belong either way.
                if i > 0 && self.late[i].key() < self.late[(i - 1) / 4].key() {
                    self.sift_up(i);
                } else {
                    self.sift_down(i);
                }
            }
            self.live -= 1;
            return true;
        }
        // The handle predates the migration: find the index record the
        // migration created for this seq (absent = already fired/cancelled).
        let slot = self
            .staged
            .iter()
            .chain(self.near.iter().flatten())
            .find(|e| e.seq == seq)
            .map(|e| e.slot)
            .or_else(|| self.far.iter().find(|r| r.0.seq == seq).map(|r| r.0.slot));
        match slot {
            Some(slot) => self.cancel(EventId { slot, seq }),
            None => false,
        }
    }

    // --- wheel internals ---------------------------------------------------

    /// One-way switch out of small mode: allocate the near buckets, move
    /// every inline payload into the arena, deal the index records into
    /// their wheel homes, and restore invariant 4. Small mode never carries
    /// tombstones, so no filtering is needed.
    fn migrate_to_wheel(&mut self) {
        self.small = false;
        if self.near.is_empty() {
            self.near.resize_with(NEAR_SLOTS, Vec::new);
        }
        self.cursor = self.last_popped.as_micros() >> TICK_BITS;
        let window_end = self.cursor + NEAR_SLOTS as u64;
        let drained = std::mem::take(&mut self.band)
            .into_iter()
            .chain(std::mem::take(&mut self.late))
            .chain(std::mem::take(&mut self.parked));
        for small in drained {
            let SmallEntry { at, seq, payload } = small;
            let slot = self.arena.insert(Stored {
                seq,
                payload: Some(payload),
            });
            let entry = Entry { at, seq, slot };
            let tick = at >> TICK_BITS;
            if tick <= self.cursor {
                self.staged.push(entry);
            } else if tick < window_end {
                self.push_near(entry, tick);
            } else {
                self.far.push(std::cmp::Reverse(entry));
            }
        }
        self.staged.sort_unstable_by(|a, b| b.cmp(a));
        self.settle();
    }

    /// Force the wheel representation regardless of size — test hook so the
    /// differential suites exercise wheel placement at small populations.
    #[cfg(test)]
    fn force_wheel(&mut self) {
        if self.small {
            self.migrate_to_wheel();
        }
    }

    fn push_near(&mut self, entry: Entry, tick: u64) {
        let bucket = (tick as usize) % NEAR_SLOTS;
        self.occupied[bucket / 64] |= 1u64 << (bucket % 64);
        self.near[bucket].push(entry);
    }

    /// Restore invariant 4: drop tombstones surfacing at the staged head and
    /// stage the next bucket whenever live events remain but none is staged.
    fn settle(&mut self) {
        loop {
            while let Some(head) = self.staged.last() {
                if self.tombstones == 0 {
                    return;
                }
                let live = self
                    .arena
                    .get(head.slot)
                    .is_some_and(|s| s.payload.is_some());
                if live {
                    return;
                }
                let entry = self.staged.pop().expect("peeked entry pops");
                self.arena.remove(entry.slot);
                self.tombstones -= 1;
            }
            if self.live == 0 {
                return;
            }
            self.advance();
        }
    }

    /// Move the cursor to the next occupied bucket (or the far heap's
    /// earliest tick), migrate far events that now fall inside the near
    /// window, and stage the cursor bucket.
    fn advance(&mut self) {
        debug_assert!(self.staged.is_empty());
        let target = match self.scan_near() {
            // Invariant 3 puts every far event at or beyond cursor + NEAR_SLOTS,
            // so an occupied near bucket always precedes the far heap.
            Some(tick) => tick,
            None => {
                let std::cmp::Reverse(f) = self.far.peek().expect("live events exist somewhere");
                f.at >> TICK_BITS
            }
        };
        self.cursor = target;
        // Pull far events into the freshly uncovered window.
        let window_end = self.cursor + NEAR_SLOTS as u64;
        while let Some(std::cmp::Reverse(f)) = self.far.peek() {
            let tick = f.at >> TICK_BITS;
            if tick >= window_end {
                break;
            }
            let std::cmp::Reverse(entry) = self.far.pop().expect("peeked entry pops");
            if self.tombstoned(entry) {
                continue;
            }
            if tick == self.cursor {
                self.staged.push(entry);
            } else {
                self.push_near(entry, tick);
            }
        }
        // Stage the cursor bucket, sweeping its tombstones.
        let bucket = (self.cursor as usize) % NEAR_SLOTS;
        self.occupied[bucket / 64] &= !(1u64 << (bucket % 64));
        let mut entries = std::mem::take(&mut self.near[bucket]);
        if self.tombstones == 0 {
            self.staged.append(&mut entries);
        } else {
            for entry in entries.drain(..) {
                if !self.tombstoned(entry) {
                    self.staged.push(entry);
                }
            }
        }
        // Hand the bucket's capacity back so refills stay allocation-free.
        self.near[bucket] = entries;
        // One descending sort per staged bucket, instead of a heap
        // operation per event.
        self.staged.sort_unstable_by(|a, b| b.cmp(a));
    }

    /// If `entry` was cancelled, free its tombstone and report `true`.
    fn tombstoned(&mut self, entry: Entry) -> bool {
        if self.tombstones == 0 {
            return false;
        }
        let live = self
            .arena
            .get(entry.slot)
            .is_some_and(|s| s.payload.is_some());
        if !live {
            self.arena.remove(entry.slot);
            self.tombstones -= 1;
        }
        !live
    }

    /// Pull the cursor back to `new_cursor`, returning staged events that
    /// now fall after it to their wheel buckets (or the far heap), and
    /// evicting near buckets that the shrunken window no longer covers
    /// (their slots would otherwise alias fresh in-window ticks).
    fn retreat(&mut self, new_cursor: u64) {
        debug_assert!(new_cursor < self.cursor);
        let window_end = new_cursor + NEAR_SLOTS as u64;
        // Evict out-of-window near buckets first, while the old cursor
        // still defines the slot → tick mapping.
        let cursor_bucket = (self.cursor as usize) % NEAR_SLOTS;
        for w in 0..OCC_WORDS {
            let mut word = self.occupied[w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let slot = w * 64 + bit;
                let d = (slot + NEAR_SLOTS - cursor_bucket) % NEAR_SLOTS;
                let tick = self.cursor + d as u64;
                if tick >= window_end {
                    self.occupied[w] &= !(1u64 << bit);
                    let mut entries = std::mem::take(&mut self.near[slot]);
                    for e in entries.drain(..) {
                        self.far.push(std::cmp::Reverse(e));
                    }
                    self.near[slot] = entries;
                }
            }
        }
        // The staged run is sorted descending, so the events to move —
        // everything with tick > new_cursor — are exactly its prefix.
        let bound = (new_cursor + 1) << TICK_BITS;
        let split = self.staged.partition_point(|e| e.at >= bound);
        self.cursor = new_cursor;
        for i in 0..split {
            let entry = self.staged[i];
            let tick = entry.at >> TICK_BITS;
            if tick < window_end {
                self.push_near(entry, tick);
            } else {
                self.far.push(std::cmp::Reverse(entry));
            }
        }
        self.staged.drain(..split);
    }

    /// The absolute tick of the first occupied near bucket after the cursor,
    /// scanning the occupancy bitmap in circular order (64 buckets per
    /// word, so an empty wheel costs `NEAR_SLOTS / 64` word loads at most).
    fn scan_near(&self) -> Option<u64> {
        let cursor_bucket = (self.cursor as usize) % NEAR_SLOTS;
        let mut idx = (cursor_bucket + 1) % NEAR_SLOTS;
        let mut scanned = 0;
        while scanned < NEAR_SLOTS {
            // Mask off bits below the scan position within this word.
            let word = self.occupied[idx / 64] & (!0u64 << (idx % 64));
            if word != 0 {
                let found = (idx / 64) * 64 + word.trailing_zeros() as usize;
                // Circular distance from the cursor bucket; invariant 2 maps
                // it back to the absolute tick.
                let d = (found + NEAR_SLOTS - cursor_bucket) % NEAR_SLOTS;
                debug_assert!(d > 0, "cursor bucket must be drained");
                return Some(self.cursor + d as u64);
            }
            let step = 64 - (idx % 64);
            scanned += step;
            idx = (idx + step) % NEAR_SLOTS;
        }
        None
    }
}

/// The original binary-heap event queue, kept as the reference
/// implementation: the differential proptests check the wheel against it,
/// and `benches/event_queue.rs` measures the wheel's speedup over it.
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` to fire at absolute time `at` (clamped to the pop
    /// frontier, as in [`EventQueue::schedule`]).
    pub fn schedule(&mut self, at: SimTime, payload: E) -> u64 {
        let at = at.max(self.last_popped);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
        seq
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event only if it fires strictly before `until`.
    pub fn pop_before(&mut self, until: SimTime) -> Option<ScheduledEvent<E>> {
        if self.peek_time()? < until {
            self.pop()
        } else {
            None
        }
    }

    /// Pop the next event in (time, insertion) order.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop();
        if let Some(ref e) = ev {
            self.last_popped = e.at;
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_simultaneous_groups_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(1), 2);
        q.schedule(SimTime::from_secs(2), 3);
        let first = q.pop_simultaneous();
        assert_eq!(
            first.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![1, 2]
        );
        let second = q.pop_simultaneous();
        assert_eq!(
            second.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![3]
        );
        assert!(q.pop_simultaneous().is_empty());
    }

    #[test]
    fn pop_before_respects_the_boundary() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(5), "b");
        q.schedule(SimTime::from_secs(5), "c");
        q.schedule(SimTime::from_secs(9), "d");
        // Events strictly before the boundary pop; the boundary itself and
        // everything after stay queued.
        let boundary = SimTime::from_secs(5);
        let mut drained = Vec::new();
        while let Some(e) = q.pop_before(boundary) {
            drained.push(e.payload);
        }
        assert_eq!(drained, vec!["a"]);
        assert_eq!(q.len(), 3);
        // The next window picks up exactly where the last one stopped.
        let mut rest = Vec::new();
        while let Some(e) = q.pop_before(SimTime::from_secs(10)) {
            rest.push(e.payload);
        }
        assert_eq!(rest, vec!["b", "c", "d"]);
        assert!(q.pop_before(SimTime::MAX).is_none());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.clear(), 2);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        // The queue keeps working after a clear.
        q.schedule(SimTime::from_secs(3), ());
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), "x");
        q.schedule(SimTime::from_secs(4), "y");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime::from_secs(4));
    }

    #[test]
    fn events_beyond_the_near_window_pop_in_order() {
        // Mix of events inside the near window, far beyond it, and in
        // between, exercising the far-heap migration path.
        let mut q = EventQueue::new();
        q.force_wheel();
        q.schedule(SimTime::from_secs(7_200), "far");
        q.schedule(SimTime::from_micros(1), "now");
        q.schedule(SimTime::from_secs(90), "mid");
        q.schedule(SimTime::from_secs(7_200), "far2");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!["now", "mid", "far", "far2"]);
    }

    #[test]
    fn cancel_removes_a_pending_event_exactly_once() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        let b = q.schedule(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        let e = q.pop().unwrap();
        assert_eq!(e.payload, "b");
        assert!(!q.cancel(b), "cancelling a fired event is a no-op");
        assert!(q.is_empty());
    }

    #[test]
    fn cancelled_head_never_shows_in_peek() {
        let mut q = EventQueue::new();
        let head = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(3600), 2);
        q.cancel(head);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3600)));
    }

    #[test]
    fn cancel_then_slot_reuse_does_not_confuse_handles() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.cancel(a);
        // The arena slot of `a` is recycled for `b`; the stale handle must
        // not cancel it.
        let b = q.schedule(SimTime::from_secs(2), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
        let _ = b;
    }

    #[test]
    fn small_mode_defers_wheel_allocation_until_the_limit() {
        let mut q = EventQueue::new();
        for i in 0..SMALL_LIMIT as u64 {
            q.schedule(SimTime::from_micros(i), i);
        }
        assert!(q.small, "at the limit the queue is still a heap");
        assert!(q.near.is_empty(), "near buckets must stay unallocated");
        q.schedule(SimTime::from_micros(SMALL_LIMIT as u64), SMALL_LIMIT as u64);
        assert!(!q.small, "crossing the limit migrates onto the wheel");
        assert_eq!(q.near.len(), NEAR_SLOTS);
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(popped, (0..=SMALL_LIMIT as u64).collect::<Vec<_>>());
    }

    #[test]
    fn migration_preserves_order_and_cancellations() {
        // Differential run that starts in small mode, cancels a few events
        // (leaving tombstones in the heap), pops a little, then bulk-loads
        // past SMALL_LIMIT so the migration has to deal staged, near and far
        // placements while sweeping the tombstones out.
        let mut q = EventQueue::new();
        let mut model = HeapEventQueue::new();
        let mut rng = crate::rng::SimRng::seed_from_u64(42);
        let mut cancelled = Vec::new();
        for i in 0..200u64 {
            let t = SimTime::from_millis(rng.uniform_u64(0, 300_000));
            let id = q.schedule(t, i);
            if i % 7 == 0 {
                cancelled.push(id);
            } else {
                model.schedule(t, i);
            }
        }
        for id in cancelled {
            assert!(q.cancel(id));
        }
        for _ in 0..50 {
            let (w, h) = (q.pop().unwrap(), model.pop().unwrap());
            assert_eq!((w.at, w.payload), (h.at, h.payload));
        }
        assert!(q.small);
        for i in 1_000..(1_000 + SMALL_LIMIT as u64 + 100) {
            let t = q.peek_time().unwrap() + SimDuration::from_millis(rng.uniform_u64(0, 900_000));
            q.schedule(t, i);
            model.schedule(t, i);
        }
        assert!(!q.small, "bulk load must cross the migration threshold");
        loop {
            assert_eq!(q.peek_time(), model.peek_time());
            match (q.pop(), model.pop()) {
                (Some(w), Some(h)) => assert_eq!((w.at, w.payload), (h.at, h.payload)),
                (None, None) => break,
                (w, h) => panic!("length mismatch: {w:?} vs {h:?}"),
            }
        }
    }

    #[test]
    fn pre_migration_handles_cancel_after_the_migration() {
        // Handles issued in small mode carry no arena slot; once the queue
        // migrates they must still cancel exactly once, by seq lookup.
        let mut q = EventQueue::new();
        let keep = q.schedule(SimTime::from_secs(500), u64::MAX - 1);
        let kill = q.schedule(SimTime::from_secs(600), u64::MAX);
        for i in 0..(SMALL_LIMIT as u64 + 8) {
            q.schedule(SimTime::from_micros(i), i);
        }
        assert!(!q.small, "load must cross the migration threshold");
        assert!(q.cancel(kill));
        assert!(!q.cancel(kill), "double cancel is a no-op");
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert!(popped.contains(&(u64::MAX - 1)));
        assert!(!popped.contains(&u64::MAX), "cancelled event still fired");
        assert!(!q.cancel(keep), "cancelling a fired event is a no-op");
    }

    #[test]
    fn external_reservations_share_the_seq_space_and_depth_accounting() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        let r = q.reserve_seq();
        let b = q.schedule(SimTime::from_secs(2), "b");
        // One shared monotone sequence space across both planes.
        assert_eq!(r, a.seq() + 1);
        assert_eq!(b.seq(), r + 1);
        // The reservation counts toward depth but not toward len().
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak_len(), 3);
        // peek_stamp sees only internal events.
        assert_eq!(q.peek_stamp(), Some((SimTime::from_secs(1), a.seq())));
        assert_eq!(q.pop().unwrap().payload, "a");
        // The external event fires between the two internal ones.
        q.external_pop(SimTime::from_millis(1_500));
        assert_eq!(q.dispatched(), 2);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.dispatched(), 3);
        // The frontier advanced through the external pop: scheduling at
        // the external fire time is not "the past".
        assert_eq!(q.peek_stamp(), None);
    }

    #[test]
    fn peek_stamp_matches_peek_time_in_both_modes() {
        for force in [false, true] {
            let mut q = EventQueue::new();
            if force {
                q.force_wheel();
            }
            let mut rng = crate::rng::SimRng::seed_from_u64(7);
            for i in 0..300u64 {
                q.schedule(SimTime::from_millis(rng.uniform_u64(0, 90_000)), i);
            }
            while let Some((at, seq)) = q.peek_stamp() {
                assert_eq!(q.peek_time(), Some(at));
                let e = q.pop().unwrap();
                assert_eq!((e.at, e.seq), (at, seq));
            }
            assert!(q.is_empty());
        }
    }

    #[test]
    fn counters_track_depth_and_dispatch() {
        let mut q = EventQueue::new();
        for s in 0..10u64 {
            q.schedule(SimTime::from_secs(s), s);
        }
        assert_eq!(q.peak_len(), 10);
        for _ in 0..4 {
            q.pop();
        }
        q.schedule(SimTime::from_secs(20), 99);
        assert_eq!(q.peak_len(), 10, "peak is a high-water mark");
        assert_eq!(q.dispatched(), 4);
        while q.pop().is_some() {}
        assert_eq!(q.dispatched(), 11);
    }

    #[test]
    fn bulk_load_behind_the_cursor_stays_ordered() {
        // A parked cursor plus a flood of earlier events exercises the
        // cursor-retreat path (and the near-bucket eviction it forces).
        let mut q = EventQueue::new();
        q.force_wheel();
        let mut heap = HeapEventQueue::new();
        // Park the cursor deep into the horizon...
        for i in 0..(RETREAT_LIMIT as u64 + 8) {
            let t = SimTime::from_secs(500) + SimDuration::from_micros(i);
            q.schedule(t, i);
            heap.schedule(t, i);
        }
        // ...then bulk-load earlier and far-future events in shuffled order.
        let mut rng = crate::rng::SimRng::seed_from_u64(3);
        for i in 0..5_000u64 {
            let t = SimTime::from_millis(rng.uniform_u64(0, 900_000));
            q.schedule(t, 100 + i);
            heap.schedule(t, 100 + i);
        }
        loop {
            assert_eq!(q.peek_time(), heap.peek_time());
            match (q.pop(), heap.pop()) {
                (Some(w), Some(h)) => {
                    assert_eq!((w.at, w.seq, w.payload), (h.at, h.seq, h.payload))
                }
                (None, None) => break,
                (w, h) => panic!("length mismatch: {w:?} vs {h:?}"),
            }
        }
    }

    #[test]
    fn heap_and_wheel_agree_on_a_mixed_workload() {
        // Differential check on a closed-loop-like pattern: pops interleaved
        // with schedules relative to the popped time.
        let mut wheel = EventQueue::new();
        wheel.force_wheel();
        let mut heap = HeapEventQueue::new();
        let mut rng = crate::rng::SimRng::seed_from_u64(99);
        for i in 0..64u64 {
            let t = SimTime::from_millis(rng.uniform_u64(0, 5_000));
            wheel.schedule(t, i);
            heap.schedule(t, i);
        }
        let mut i = 64;
        while let (Some(w), Some(h)) = (wheel.pop(), heap.pop()) {
            assert_eq!((w.at, w.seq, w.payload), (h.at, h.seq, h.payload));
            if i < 4_096 {
                // Re-schedule a few events relative to the frontier, hitting
                // staged, near and far placements.
                let delay = rng.uniform_u64(0, 200_000_000);
                let t = w.at + SimDuration::from_micros(delay);
                wheel.schedule(t, i);
                heap.schedule(t, i);
                i += 1;
            }
        }
        assert!(wheel.is_empty() && heap.is_empty());
    }

    /// The naive reference model for the cancellation proptest: a sorted vec
    /// of `(time, seq, payload)` with immediate removal on cancel.
    struct ModelQueue {
        pending: Vec<(SimTime, u64, u32)>,
        last_popped: SimTime,
    }

    impl ModelQueue {
        fn new() -> Self {
            ModelQueue {
                pending: Vec::new(),
                last_popped: SimTime::ZERO,
            }
        }
        fn schedule(&mut self, at: SimTime, seq: u64, payload: u32) {
            let at = at.max(self.last_popped);
            self.pending.push((at, seq, payload));
            self.pending.sort();
        }
        fn pop(&mut self) -> Option<(SimTime, u64, u32)> {
            if self.pending.is_empty() {
                return None;
            }
            let e = self.pending.remove(0);
            self.last_popped = e.0;
            Some(e)
        }
        fn pop_before(&mut self, until: SimTime) -> Option<(SimTime, u64, u32)> {
            if self.pending.first()?.0 < until {
                self.pop()
            } else {
                None
            }
        }
        fn cancel(&mut self, seq: u64) -> bool {
            let before = self.pending.len();
            self.pending.retain(|(_, s, _)| *s != seq);
            self.pending.len() != before
        }
        fn peek_time(&self) -> Option<SimTime> {
            self.pending.first().map(|(t, _, _)| *t)
        }
    }

    proptest! {
        #[test]
        fn prop_pop_order_is_monotone(
            times in proptest::collection::vec(0u64..10_000, 1..200),
            force in 0usize..2,
        ) {
            let mut q = EventQueue::new();
            if force == 1 {
                q.force_wheel();
            }
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(*t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some(e) = q.pop() {
                prop_assert!(e.at >= last);
                last = e.at;
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }

        #[test]
        fn prop_equal_times_preserve_insertion_order(n in 1usize..100, force in 0usize..2) {
            let mut q = EventQueue::new();
            if force == 1 {
                q.force_wheel();
            }
            let t = SimTime::from_secs(1) + SimDuration::from_micros(n as u64);
            for i in 0..n {
                q.schedule(t, i);
            }
            let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
            prop_assert_eq!(popped, (0..n).collect::<Vec<_>>());
        }

        /// Differential check against the old heap queue over times spanning
        /// the staged bucket, the near window and the far heap.
        #[test]
        fn prop_wheel_matches_heap_exactly(
            times in proptest::collection::vec(0u64..200_000_000, 1..300),
            force in 0usize..2,
        ) {
            let mut wheel = EventQueue::new();
            if force == 1 {
                wheel.force_wheel();
            }
            let mut heap = HeapEventQueue::new();
            for (i, t) in times.iter().enumerate() {
                wheel.schedule(SimTime::from_micros(*t), i);
                heap.schedule(SimTime::from_micros(*t), i);
            }
            loop {
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                match (wheel.pop(), heap.pop()) {
                    (Some(w), Some(h)) => {
                        prop_assert_eq!(w.at, h.at);
                        prop_assert_eq!(w.seq, h.seq);
                        prop_assert_eq!(w.payload, h.payload);
                    }
                    (None, None) => break,
                    (w, h) => prop_assert!(false, "length mismatch: {w:?} vs {h:?}"),
                }
            }
        }

        /// The satellite regression: interleave push / pop / pop_before /
        /// cancel against a naive sorted-vec model and require `len`,
        /// `is_empty`, `peek_time` and every popped event to agree — i.e.
        /// cancellations (tombstones) must never leak into the observable
        /// state.
        ///
        /// Ops decode as: 0 = push, 1 = pop, 2 = pop_before, 3 = cancel one
        /// of the previously scheduled events.
        #[test]
        fn prop_cancel_tombstones_stay_invisible(
            ops in proptest::collection::vec((0u8..4, 0u64..200_000_000), 1..250),
            force in 0usize..2,
        ) {
            let mut q = EventQueue::new();
            if force == 1 {
                q.force_wheel();
            }
            let mut model = ModelQueue::new();
            let mut handles: Vec<EventId> = Vec::new();
            let mut payload = 0u32;
            // Scheduling into the past is a (debug-asserted) logic error, so
            // clamp generated times to the pop frontier like a caller would.
            let mut frontier = SimTime::ZERO;
            for (op, arg) in ops {
                match op {
                    0 => {
                        let at = SimTime::from_micros(arg).max(frontier);
                        let id = q.schedule(at, payload);
                        model.schedule(at, id.seq(), payload);
                        handles.push(id);
                        payload += 1;
                    }
                    1 => {
                        let got = q.pop().map(|e| (e.at, e.seq, e.payload));
                        if let Some((at, _, _)) = got {
                            frontier = at;
                        }
                        prop_assert_eq!(got, model.pop());
                    }
                    2 => {
                        let until = SimTime::from_micros(arg);
                        let got = q.pop_before(until).map(|e| (e.at, e.seq, e.payload));
                        if let Some((at, _, _)) = got {
                            frontier = at;
                        }
                        prop_assert_eq!(got, model.pop_before(until));
                    }
                    _ => {
                        if !handles.is_empty() {
                            let id = handles[(arg as usize) % handles.len()];
                            prop_assert_eq!(q.cancel(id), model.cancel(id.seq()));
                        }
                    }
                }
                prop_assert_eq!(q.len(), model.pending.len());
                prop_assert_eq!(q.is_empty(), model.pending.is_empty());
                prop_assert_eq!(q.peek_time(), model.peek_time());
            }
        }
    }
}
