//! The discrete-event queue.
//!
//! Events are ordered by their scheduled [`SimTime`]; events scheduled for the
//! same instant are dispatched in FIFO order of insertion. This stability is
//! load-bearing for determinism: the engine schedules "compilation step
//! finished" and "gateway released" events at identical timestamps and the
//! experiment figures must not depend on heap tie-breaking.

use crate::clock::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event that has been scheduled onto the queue.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic sequence number used to break ties FIFO.
    pub seq: u64,
    /// The caller's payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of events keyed by virtual time with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Scheduling into the past (before the last popped event) is a logic
    /// error in the simulation and panics in debug builds; in release builds
    /// the event is clamped to the current frontier so the run can proceed.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> u64 {
        debug_assert!(
            at >= self.last_popped,
            "scheduled an event in the past: {} < {}",
            at,
            self.last_popped
        );
        let at = at.max(self.last_popped);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
        seq
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event only if it fires strictly before `until`, leaving
    /// later events queued. This is the phase-boundary primitive: a driver
    /// can advance the simulation to a boundary, mutate the model (client
    /// count, workload mix, budgets), and continue, without disturbing
    /// events already scheduled beyond the boundary.
    pub fn pop_before(&mut self, until: SimTime) -> Option<ScheduledEvent<E>> {
        if self.peek_time()? < until {
            self.pop()
        } else {
            None
        }
    }

    /// Pop the next event in (time, insertion) order.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop();
        if let Some(ref e) = ev {
            self.last_popped = e.at;
        }
        ev
    }

    /// Drain every event scheduled at exactly the same time as the head.
    /// Useful for batch-dispatching simultaneous events.
    pub fn pop_simultaneous(&mut self) -> Vec<ScheduledEvent<E>> {
        let mut out = Vec::new();
        let Some(t) = self.peek_time() else {
            return out;
        };
        while self.peek_time() == Some(t) {
            out.push(self.pop().expect("peeked event must pop"));
        }
        out
    }

    /// Remove all pending events, returning how many were dropped.
    pub fn clear(&mut self) -> usize {
        let n = self.heap.len();
        self.heap.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_simultaneous_groups_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(1), 2);
        q.schedule(SimTime::from_secs(2), 3);
        let first = q.pop_simultaneous();
        assert_eq!(
            first.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![1, 2]
        );
        let second = q.pop_simultaneous();
        assert_eq!(
            second.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![3]
        );
        assert!(q.pop_simultaneous().is_empty());
    }

    #[test]
    fn pop_before_respects_the_boundary() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(5), "b");
        q.schedule(SimTime::from_secs(5), "c");
        q.schedule(SimTime::from_secs(9), "d");
        // Events strictly before the boundary pop; the boundary itself and
        // everything after stay queued.
        let boundary = SimTime::from_secs(5);
        let mut drained = Vec::new();
        while let Some(e) = q.pop_before(boundary) {
            drained.push(e.payload);
        }
        assert_eq!(drained, vec!["a"]);
        assert_eq!(q.len(), 3);
        // The next window picks up exactly where the last one stopped.
        let mut rest = Vec::new();
        while let Some(e) = q.pop_before(SimTime::from_secs(10)) {
            rest.push(e.payload);
        }
        assert_eq!(rest, vec!["b", "c", "d"]);
        assert!(q.pop_before(SimTime::MAX).is_none());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.clear(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), "x");
        q.schedule(SimTime::from_secs(4), "y");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime::from_secs(4));
    }

    proptest! {
        #[test]
        fn prop_pop_order_is_monotone(times in proptest::collection::vec(0u64..10_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(*t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some(e) = q.pop() {
                prop_assert!(e.at >= last);
                last = e.at;
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }

        #[test]
        fn prop_equal_times_preserve_insertion_order(n in 1usize..100) {
            let mut q = EventQueue::new();
            let t = SimTime::from_secs(1) + SimDuration::from_micros(n as u64);
            for i in 0..n {
                q.schedule(t, i);
            }
            let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
            prop_assert_eq!(popped, (0..n).collect::<Vec<_>>());
        }
    }
}
