//! Deterministic epoch-barrier exchange primitives for sharded runs.
//!
//! A sharded simulation splits one logical event schedule across N
//! producers. Each producer emits its events in nondecreasing
//! `(time, seq)` order into its own [`EpochMailbox`] and periodically
//! **seals** the mailbox up to a barrier time — a promise that no event
//! before that time will ever arrive from it again. [`EpochMerge`] then
//! replays the union of all mailboxes in global `(time, seq, shard)`
//! order, releasing an event only once every other mailbox provably
//! cannot still produce an earlier one (its head is later, or it is
//! sealed past the candidate). The merged order is therefore identical
//! to what a single queue holding every event would produce — the
//! property the in-module proptests check against a sorted-vec oracle,
//! and the property the engine's sharded arrival plane builds on.
//!
//! Sequence numbers are expected to come from one shared counter (the
//! engine reserves them through `EventQueue::reserve_seq`), so `(time,
//! seq)` is already a total order; the shard index only breaks the
//! (impossible in practice) tie of two mailboxes claiming the same seq.

use crate::clock::SimTime;
use std::collections::VecDeque;

/// An item stamped with its global schedule key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped<T> {
    /// Virtual time the item fires at.
    pub at: SimTime,
    /// Global FIFO tie-break (shared counter across all producers).
    pub seq: u64,
    /// The payload.
    pub item: T,
}

/// One producer's ordered, seal-able event stream.
///
/// Pushes must arrive in nondecreasing `(at, seq)` order and never
/// before the sealed frontier; both are debug-asserted. Sealing is
/// monotone.
#[derive(Debug, Clone, Default)]
pub struct EpochMailbox<T> {
    queue: VecDeque<Stamped<T>>,
    sealed_until: SimTime,
}

impl<T> EpochMailbox<T> {
    /// An empty, unsealed mailbox.
    pub fn new() -> Self {
        EpochMailbox {
            queue: VecDeque::new(),
            sealed_until: SimTime::ZERO,
        }
    }

    /// Append an event. Must not precede the mailbox tail or the sealed
    /// frontier.
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        debug_assert!(
            self.queue
                .back()
                .map_or(true, |b| (b.at, b.seq) <= (at, seq)),
            "mailbox push out of (time, seq) order"
        );
        debug_assert!(at >= self.sealed_until, "push behind the sealed frontier");
        self.queue.push_back(Stamped { at, seq, item });
    }

    /// Promise that no event before `up_to` will ever be pushed again.
    /// Sealing backward is a no-op (the frontier is monotone).
    pub fn seal(&mut self, up_to: SimTime) {
        self.sealed_until = self.sealed_until.max(up_to);
    }

    /// The sealed frontier: events strictly before it can no longer
    /// arrive.
    pub fn sealed_until(&self) -> SimTime {
        self.sealed_until
    }

    /// The earliest queued event, if any.
    pub fn front(&self) -> Option<&Stamped<T>> {
        self.queue.front()
    }

    /// Remove and return the earliest queued event, if any.
    pub fn pop_front(&mut self) -> Option<Stamped<T>> {
        self.queue.pop_front()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Deterministic merge over per-shard [`EpochMailbox`]es: the exchange
/// half of the epoch-barrier protocol (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct EpochMerge<T> {
    mailboxes: Vec<EpochMailbox<T>>,
}

impl<T> EpochMerge<T> {
    /// A merge over `shards` empty mailboxes.
    pub fn new(shards: usize) -> Self {
        EpochMerge {
            mailboxes: (0..shards).map(|_| EpochMailbox::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.mailboxes.len()
    }

    /// Append an event to `shard`'s mailbox.
    pub fn push(&mut self, shard: usize, at: SimTime, seq: u64, item: T) {
        self.mailboxes[shard].push(at, seq, item);
    }

    /// Seal `shard`'s mailbox up to the barrier time `up_to`.
    pub fn seal(&mut self, shard: usize, up_to: SimTime) {
        self.mailboxes[shard].seal(up_to);
    }

    /// Total queued events across all shards.
    pub fn len(&self) -> usize {
        self.mailboxes.iter().map(|m| m.len()).sum()
    }

    /// True when no shard has queued events.
    pub fn is_empty(&self) -> bool {
        self.mailboxes.iter().all(|m| m.is_empty())
    }

    /// The key of the next event the merge would release, if one is
    /// releasable now (see [`EpochMerge::pop`]).
    pub fn peek_key(&self) -> Option<(SimTime, u64, usize)> {
        let (shard, head) = self
            .mailboxes
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.front().map(|h| (i, h)))
            .min_by_key(|(i, h)| (h.at, h.seq, *i))?;
        // Every empty mailbox must be sealed strictly past the candidate:
        // a shard sealed exactly *to* the candidate time could still push
        // an event at that time carrying an earlier seq.
        let safe = self
            .mailboxes
            .iter()
            .all(|m| !m.is_empty() || head.at < m.sealed_until());
        safe.then_some((head.at, head.seq, shard))
    }

    /// Release the globally next event — the minimum `(time, seq,
    /// shard)` over all mailbox heads — but only once no unsealed
    /// mailbox could still produce an earlier one. Returns `None` when
    /// the merge is empty *or* blocked waiting for a barrier.
    pub fn pop(&mut self) -> Option<(usize, Stamped<T>)> {
        let (_, _, shard) = self.peek_key()?;
        let stamped = self.mailboxes[shard].pop_front().expect("peeked head pops");
        Some((shard, stamped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn merge_releases_nothing_until_every_shard_is_sealed_past_the_head() {
        let mut m: EpochMerge<&str> = EpochMerge::new(3);
        m.push(0, t(10), 0, "a");
        // Shards 1 and 2 are unsealed: "a" could still be preceded.
        assert_eq!(m.pop(), None);
        m.seal(1, t(11));
        assert_eq!(m.pop(), None, "shard 2 still unsealed");
        // Sealing exactly *to* the head time is not enough: an equal-time,
        // smaller-seq event could still arrive.
        m.seal(2, t(10));
        assert_eq!(m.pop(), None);
        m.seal(2, t(11));
        assert_eq!(
            m.pop(),
            Some((
                0,
                Stamped {
                    at: t(10),
                    seq: 0,
                    item: "a"
                }
            ))
        );
        assert!(m.is_empty());
    }

    #[test]
    fn same_time_ties_break_by_seq_across_shards() {
        let mut m: EpochMerge<u32> = EpochMerge::new(2);
        // Generation order (per shard) disagrees with seq order at a tie.
        m.push(1, t(5), 1, 11);
        m.push(0, t(5), 2, 22);
        m.push(1, t(5), 3, 33);
        for s in 0..2 {
            m.seal(s, t(6));
        }
        let order: Vec<_> = std::iter::from_fn(|| m.pop()).map(|(_, e)| e.seq).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn barrier_straddling_events_wait_for_the_next_epoch() {
        let mut m: EpochMerge<&str> = EpochMerge::new(2);
        m.push(0, t(3), 0, "in-epoch");
        m.push(0, t(20), 1, "straddler");
        m.seal(0, t(10));
        m.seal(1, t(10));
        assert_eq!(m.pop().map(|(_, e)| e.item), Some("in-epoch"));
        // The straddler fires at 20 ≥ the barrier at 10: it must wait.
        assert_eq!(m.pop(), None);
        m.seal(0, t(30));
        m.seal(1, t(30));
        assert_eq!(m.pop().map(|(_, e)| e.item), Some("straddler"));
    }

    proptest! {
        /// The protocol's whole contract against a single sorted-vec
        /// queue: deal random (time ties included) events across shards,
        /// deliver them epoch by epoch (empty epochs included), and
        /// require (a) the merge never releases an event while an
        /// unsealed shard could still precede it, and (b) after the final
        /// barrier the released order equals the oracle's sorted order
        /// exactly.
        #[test]
        fn prop_epoch_merge_matches_a_single_sorted_queue(
            times in proptest::collection::vec(0u64..400, 0..120),
            shards in 1usize..5,
            epoch_us in 1u64..130,
        ) {
            // Global seq = index in time-sorted order, as one shared
            // counter reserving in schedule order would produce.
            let mut events: Vec<(u64, usize)> = times
                .iter()
                .enumerate()
                .map(|(i, &at)| (at, i))
                .collect();
            events.sort();
            let events: Vec<(u64, u64, usize)> = events
                .into_iter()
                .enumerate()
                .map(|(seq, (at, i))| (at, seq as u64, i % shards))
                .collect();
            let oracle: Vec<(u64, u64)> =
                events.iter().map(|&(at, seq, _)| (at, seq)).collect();

            let mut merge: EpochMerge<usize> = EpochMerge::new(shards);
            let mut released: Vec<(u64, u64)> = Vec::new();
            let mut barrier = 0u64;
            let horizon = times.iter().copied().max().unwrap_or(0) + 1;
            while barrier < horizon + epoch_us {
                let next = barrier + epoch_us;
                // Each shard ships the epoch's slice of its stream, then
                // seals to the barrier. Slices can be empty.
                for s in 0..shards {
                    for &(at, seq, shard) in &events {
                        if shard == s && at >= barrier && at < next {
                            merge.push(s, t(at), seq, shard);
                        }
                    }
                    merge.seal(s, t(next));
                }
                // Drain everything releasable at this barrier; nothing
                // released may fire at or after the seal frontier of an
                // empty mailbox (checked inside peek_key), and the order
                // must be a prefix of the oracle.
                while let Some((shard, e)) = merge.pop() {
                    prop_assert_eq!(e.item, shard);
                    released.push((e.at.as_micros(), e.seq));
                }
                let n = released.len();
                prop_assert_eq!(&released[..], &oracle[..n]);
                barrier = next;
            }
            prop_assert!(merge.is_empty(), "events stuck behind the last barrier");
            prop_assert_eq!(released, oracle);
        }
    }
}
