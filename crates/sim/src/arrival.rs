//! Open-loop arrival processes: inter-arrival samplers for simulated
//! request streams.
//!
//! A closed-loop client population couples the arrival rate to service
//! times (each client thinks, submits, waits). An *open-loop* source
//! decouples them: arrivals follow a stochastic process regardless of how
//! the server is doing — the regime where admission control actually
//! earns its keep, because offered load can exceed capacity indefinitely.
//!
//! Four process families cover the standard load shapes:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless arrivals at a constant rate
//!   (the M/·/· baseline);
//! * [`ArrivalProcess::Mmpp`] — a two-state Markov-modulated Poisson
//!   process alternating calm and burst rates with exponential dwell
//!   times (flash crowds, bursty tenants);
//! * [`ArrivalProcess::BoundedPareto`] — heavy-tailed inter-arrival gaps
//!   drawn from a bounded Pareto distribution (long quiet stretches
//!   punctuated by clustered arrivals);
//! * [`ArrivalProcess::Diurnal`] — a nonhomogeneous Poisson process whose
//!   rate follows a sinusoidal day/night cycle, sampled exactly by
//!   thinning.
//!
//! Every sampler draws only from the [`SimRng`] handed to it, so a source
//! with its own forked stream produces the same arrival sequence
//! regardless of what the rest of the simulation does — the property the
//! scenario layer's replay and the sweep harness's worker-count
//! invariance both rest on.

use crate::clock::{SimDuration, SimTime};
use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Declarative description of an open-loop arrival process.
///
/// The configuration is plain data (scenario files carry it); call
/// [`ArrivalProcess::sampler`] to obtain the stateful sampler that
/// generates the stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals: independent exponential gaps with
    /// mean `1 / rate_per_sec`.
    Poisson {
        /// Mean arrivals per simulated second.
        rate_per_sec: f64,
    },
    /// Two-state Markov-modulated Poisson process: the rate alternates
    /// between a calm and a burst level, staying in each state for an
    /// exponentially distributed dwell time. Sampled exactly via competing
    /// exponentials (memorylessness lets the draw restart at each state
    /// switch).
    Mmpp {
        /// Arrival rate while calm (per simulated second, must be > 0).
        calm_rate_per_sec: f64,
        /// Arrival rate while bursting (per simulated second).
        burst_rate_per_sec: f64,
        /// Mean time spent calm before a burst begins (seconds).
        mean_calm_secs: f64,
        /// Mean burst length (seconds).
        mean_burst_secs: f64,
    },
    /// Heavy-tailed gaps: inter-arrival times follow a bounded Pareto
    /// distribution on `[min_secs, max_secs]` with tail index `alpha`
    /// (smaller `alpha` = heavier tail).
    BoundedPareto {
        /// Tail index (> 0; the classic heavy-tail range is 1 < α < 2).
        alpha: f64,
        /// Smallest possible gap (seconds, > 0).
        min_secs: f64,
        /// Largest possible gap (seconds, > `min_secs`).
        max_secs: f64,
    },
    /// Sinusoidally modulated Poisson arrivals: the instantaneous rate is
    /// `base * (1 + amplitude * sin(2π t / period))`, sampled exactly by
    /// thinning against the peak rate.
    Diurnal {
        /// Mean arrivals per simulated second, averaged over a full cycle.
        base_rate_per_sec: f64,
        /// Modulation depth in `[0, 1)` (0 degenerates to Poisson).
        amplitude: f64,
        /// Cycle length in simulated seconds.
        period_secs: f64,
    },
}

impl ArrivalProcess {
    /// Panics on non-finite or out-of-range parameters.
    pub fn validate(&self) {
        let pos = |v: f64, what: &str| {
            assert!(v.is_finite() && v > 0.0, "{what} must be positive, got {v}");
        };
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => pos(rate_per_sec, "Poisson rate"),
            ArrivalProcess::Mmpp {
                calm_rate_per_sec,
                burst_rate_per_sec,
                mean_calm_secs,
                mean_burst_secs,
            } => {
                pos(calm_rate_per_sec, "MMPP calm rate");
                pos(burst_rate_per_sec, "MMPP burst rate");
                pos(mean_calm_secs, "MMPP calm dwell");
                pos(mean_burst_secs, "MMPP burst dwell");
            }
            ArrivalProcess::BoundedPareto {
                alpha,
                min_secs,
                max_secs,
            } => {
                pos(alpha, "Pareto alpha");
                pos(min_secs, "Pareto minimum gap");
                assert!(
                    max_secs.is_finite() && max_secs > min_secs,
                    "Pareto maximum gap must exceed the minimum ({max_secs} vs {min_secs})"
                );
            }
            ArrivalProcess::Diurnal {
                base_rate_per_sec,
                amplitude,
                period_secs,
            } => {
                pos(base_rate_per_sec, "diurnal base rate");
                assert!(
                    (0.0..1.0).contains(&amplitude),
                    "diurnal amplitude must be in [0, 1), got {amplitude}"
                );
                pos(period_secs, "diurnal period");
            }
        }
    }

    /// The long-run mean arrival rate (arrivals per simulated second),
    /// derived analytically. The sampler tests hold empirical rates to
    /// this value; sizing a scenario starts from it (`rate × duration ≈
    /// arrivals`).
    pub fn mean_rate_per_sec(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::Mmpp {
                calm_rate_per_sec,
                burst_rate_per_sec,
                mean_calm_secs,
                mean_burst_secs,
            } => {
                // Stationary time-weighting of the two rates.
                let total = mean_calm_secs + mean_burst_secs;
                (calm_rate_per_sec * mean_calm_secs + burst_rate_per_sec * mean_burst_secs) / total
            }
            ArrivalProcess::BoundedPareto {
                alpha,
                min_secs,
                max_secs,
            } => 1.0 / bounded_pareto_mean(alpha, min_secs, max_secs),
            // The sinusoid integrates to zero over a cycle.
            ArrivalProcess::Diurnal {
                base_rate_per_sec, ..
            } => base_rate_per_sec,
        }
    }

    /// Build the stateful sampler for this process.
    pub fn sampler(self) -> ArrivalSampler {
        self.validate();
        ArrivalSampler {
            process: self,
            mmpp_bursting: false,
            mmpp_next_switch: None,
        }
    }
}

/// Mean of the bounded Pareto distribution on `[lo, hi]` with tail index
/// `alpha` (the α = 1 singularity has its own closed form).
pub fn bounded_pareto_mean(alpha: f64, lo: f64, hi: f64) -> f64 {
    if (alpha - 1.0).abs() < 1e-9 {
        // E[X] = ln(hi/lo) * lo*hi / (hi - lo) at α = 1.
        (hi / lo).ln() * lo * hi / (hi - lo)
    } else {
        let k = (lo / hi).powf(alpha);
        alpha * lo.powf(alpha) * (hi.powf(1.0 - alpha) - lo.powf(1.0 - alpha))
            / ((1.0 - alpha) * (1.0 - k))
    }
}

/// A stateful inter-arrival sampler for one [`ArrivalProcess`].
///
/// The sampler carries only the process state that must persist between
/// arrivals (the MMPP modulation phase); everything else is derived from
/// the configuration and the caller's RNG. One sampler models one
/// arrival source — give each source its own forked [`SimRng`] stream and
/// the sources stay mutually independent and individually replayable.
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    process: ArrivalProcess,
    /// MMPP only: currently in the burst state?
    mmpp_bursting: bool,
    /// MMPP only: absolute time of the next state switch (`None` until the
    /// first draw initializes the modulation calendar).
    mmpp_next_switch: Option<SimTime>,
}

/// Arrivals closer together than the clock's microsecond resolution are
/// clamped to one tick so a very hot source still advances virtual time.
const MIN_GAP: SimDuration = SimDuration::from_micros(1);

impl ArrivalSampler {
    /// The process this sampler was built from.
    pub fn process(&self) -> ArrivalProcess {
        self.process
    }

    /// Draw the gap from `now` to the next arrival. Deterministic in
    /// (`process`, RNG stream, `now` sequence); at least one microsecond.
    pub fn next_gap(&mut self, rng: &mut SimRng, now: SimTime) -> SimDuration {
        let gap = match self.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                SimDuration::from_secs_f64(rng.exponential(1.0 / rate_per_sec))
            }
            ArrivalProcess::Mmpp {
                calm_rate_per_sec,
                burst_rate_per_sec,
                mean_calm_secs,
                mean_burst_secs,
            } => {
                // Competing exponentials: race the next arrival against the
                // next modulation switch; on a switch, memorylessness lets
                // the arrival draw restart at the new rate.
                let mut t = now;
                let mut switch = *self.mmpp_next_switch.get_or_insert_with(|| {
                    now + SimDuration::from_secs_f64(rng.exponential(mean_calm_secs))
                });
                loop {
                    if t >= switch {
                        self.mmpp_bursting = !self.mmpp_bursting;
                        let dwell = if self.mmpp_bursting {
                            mean_burst_secs
                        } else {
                            mean_calm_secs
                        };
                        switch = t + SimDuration::from_secs_f64(rng.exponential(dwell));
                        self.mmpp_next_switch = Some(switch);
                    }
                    let rate = if self.mmpp_bursting {
                        burst_rate_per_sec
                    } else {
                        calm_rate_per_sec
                    };
                    let candidate = t + SimDuration::from_secs_f64(rng.exponential(1.0 / rate));
                    if candidate < switch {
                        break candidate.saturating_since(now);
                    }
                    t = switch;
                }
            }
            ArrivalProcess::BoundedPareto {
                alpha,
                min_secs,
                max_secs,
            } => {
                // Inverse-CDF: x = lo * (1 - U(1 - (lo/hi)^α))^(-1/α).
                let k = (min_secs / max_secs).powf(alpha);
                let u = rng.unit();
                let x = min_secs * (1.0 - u * (1.0 - k)).powf(-1.0 / alpha);
                SimDuration::from_secs_f64(x.clamp(min_secs, max_secs))
            }
            ArrivalProcess::Diurnal {
                base_rate_per_sec,
                amplitude,
                period_secs,
            } => {
                // Exact thinning against the cycle's peak rate.
                let peak = base_rate_per_sec * (1.0 + amplitude);
                let mut t = now;
                loop {
                    t += SimDuration::from_secs_f64(rng.exponential(1.0 / peak));
                    let phase = 2.0 * std::f64::consts::PI * t.as_secs_f64() / period_secs;
                    let rate = base_rate_per_sec * (1.0 + amplitude * phase.sin());
                    if rng.unit() * peak <= rate {
                        break t.saturating_since(now);
                    }
                }
            }
        };
        gap.max(MIN_GAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn processes() -> Vec<ArrivalProcess> {
        vec![
            ArrivalProcess::Poisson { rate_per_sec: 50.0 },
            // Short dwells keep the modulation-cycle count high enough for
            // the empirical-rate check to converge (same 37.5/s mean as the
            // 20 s / 4 s shape used by the scenario built-ins).
            ArrivalProcess::Mmpp {
                calm_rate_per_sec: 5.0,
                burst_rate_per_sec: 200.0,
                mean_calm_secs: 2.0,
                mean_burst_secs: 0.4,
            },
            ArrivalProcess::BoundedPareto {
                alpha: 1.3,
                min_secs: 0.01,
                max_secs: 60.0,
            },
            ArrivalProcess::Diurnal {
                base_rate_per_sec: 30.0,
                amplitude: 0.8,
                period_secs: 600.0,
            },
        ]
    }

    /// Drive a sampler for `n` arrivals and return (total seconds, gaps).
    fn run(process: ArrivalProcess, seed: u64, n: usize) -> (f64, Vec<SimDuration>) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut sampler = process.sampler();
        let mut now = SimTime::ZERO;
        let mut gaps = Vec::with_capacity(n);
        for _ in 0..n {
            let gap = sampler.next_gap(&mut rng, now);
            now += gap;
            gaps.push(gap);
        }
        (now.as_secs_f64(), gaps)
    }

    #[test]
    fn every_family_validates_and_reports_a_positive_mean_rate() {
        for p in processes() {
            p.validate();
            assert!(p.mean_rate_per_sec() > 0.0, "{p:?}");
        }
    }

    #[test]
    fn empirical_rates_match_the_analytic_means() {
        // 200k arrivals per family: the empirical rate must land within a
        // few percent of ArrivalProcess::mean_rate_per_sec. MMPP gets the
        // widest band — dwell-time variance decays slowest.
        for p in processes() {
            let n = 200_000;
            let (elapsed, _) = run(p, 0xA881, n);
            let empirical = n as f64 / elapsed;
            let analytic = p.mean_rate_per_sec();
            let err = (empirical - analytic).abs() / analytic;
            assert!(
                err < 0.05,
                "{p:?}: empirical {empirical:.3}/s vs analytic {analytic:.3}/s (err {err:.3})"
            );
        }
    }

    #[test]
    fn bounded_pareto_gaps_respect_the_bounds_and_tail() {
        let p = ArrivalProcess::BoundedPareto {
            alpha: 1.1,
            min_secs: 0.5,
            max_secs: 30.0,
        };
        let (_, gaps) = run(p, 7, 50_000);
        let lo = SimDuration::from_secs_f64(0.5);
        let hi = SimDuration::from_secs_f64(30.0);
        assert!(gaps.iter().all(|g| *g >= lo && *g <= hi));
        // Heavy tail: the biggest observed gap dwarfs the median.
        let mut sorted = gaps.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        assert!(
            sorted[sorted.len() - 1] > median * 10,
            "tail too light: max {:?} vs median {:?}",
            sorted[sorted.len() - 1],
            median
        );
    }

    #[test]
    fn mmpp_actually_modulates() {
        // Gap sizes must be bimodal: bursts produce gaps near 1/200 s,
        // calm stretches near 1/5 s. Count each regime.
        let p = ArrivalProcess::Mmpp {
            calm_rate_per_sec: 5.0,
            burst_rate_per_sec: 200.0,
            mean_calm_secs: 20.0,
            mean_burst_secs: 4.0,
        };
        let (_, gaps) = run(p, 11, 100_000);
        let burst_like = gaps.iter().filter(|g| g.as_secs_f64() < 0.02).count();
        let calm_like = gaps.iter().filter(|g| g.as_secs_f64() > 0.1).count();
        assert!(burst_like > 10_000, "no burst regime: {burst_like}");
        assert!(calm_like > 1_000, "no calm regime: {calm_like}");
    }

    #[test]
    fn diurnal_rate_tracks_the_cycle() {
        // Split a full cycle into quarters: the second quarter (peak of the
        // sine) must see more arrivals than the fourth (trough).
        let p = ArrivalProcess::Diurnal {
            base_rate_per_sec: 30.0,
            amplitude: 0.8,
            period_secs: 600.0,
        };
        let mut rng = SimRng::seed_from_u64(13);
        let mut sampler = p.sampler();
        let mut now = SimTime::ZERO;
        let mut quarters = [0u64; 4];
        while now.as_secs_f64() < 600.0 {
            now = now + sampler.next_gap(&mut rng, now);
            let q = ((now.as_secs_f64() / 150.0) as usize).min(3);
            quarters[q] += 1;
        }
        assert!(
            quarters[0] > quarters[2] * 2,
            "peak quarter should dominate the trough: {quarters:?}"
        );
    }

    #[test]
    fn mean_rate_handles_the_alpha_one_singularity() {
        let near = bounded_pareto_mean(1.0 + 1e-7, 0.5, 30.0);
        let at = bounded_pareto_mean(1.0, 0.5, 30.0);
        assert!(
            (near - at).abs() / at < 1e-3,
            "α→1 limit mismatch: {near} vs {at}"
        );
    }

    proptest! {
        /// Same seed ⇒ identical arrival sequence, for every process family.
        #[test]
        fn prop_same_seed_same_sequence(seed in 0u64..u64::MAX, pick in 0usize..4) {
            let p = processes()[pick];
            let (ta, a) = run(p, seed, 500);
            let (tb, b) = run(p, seed, 500);
            prop_assert_eq!(a, b);
            prop_assert!((ta - tb).abs() < 1e-12);
        }

        /// Gaps are always at least the one-microsecond clock resolution,
        /// so a source can never wedge virtual time.
        #[test]
        fn prop_gaps_always_advance_time(seed in 0u64..u64::MAX, pick in 0usize..4) {
            let p = processes()[pick];
            let (_, gaps) = run(p, seed, 200);
            prop_assert!(gaps.iter().all(|g| *g >= SimDuration::from_micros(1)));
        }

        /// Two sources forked from the same parent stream with different
        /// salts produce different sequences (stream independence).
        #[test]
        fn prop_forked_sources_diverge(seed in 0u64..u64::MAX) {
            let mut parent = SimRng::seed_from_u64(seed);
            let mut ra = parent.fork(1);
            let mut rb = parent.fork(2);
            let p = ArrivalProcess::Poisson { rate_per_sec: 10.0 };
            let mut sa = p.sampler();
            let mut sb = p.sampler();
            let mut now = SimTime::ZERO;
            let mut same = 0;
            for _ in 0..64 {
                let ga = sa.next_gap(&mut ra, now);
                let gb = sb.next_gap(&mut rb, now);
                if ga == gb { same += 1; }
                now += ga;
            }
            prop_assert!(same < 8, "forked streams should rarely agree ({same}/64)");
        }
    }
}
