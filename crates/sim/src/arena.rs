//! A slab allocator with an intrusive free list.
//!
//! The event queue stores every scheduled payload in an [`Arena`] and moves
//! only small `(time, seq, slot)` index records through its buckets and
//! heaps. Slots are recycled through a free list, so a steady-state
//! simulation — schedule one event, pop one event, repeat — performs **no
//! allocation at all** once the arena has grown to the high-water mark of
//! concurrently pending events.

/// A slot index into an [`Arena`].
pub(crate) type SlotIndex = u32;

/// Sentinel for "no next free slot".
const NIL: u32 = u32::MAX;

#[derive(Debug)]
enum Slot<T> {
    /// Holds a live value.
    Occupied(T),
    /// Recycled; `next` chains the free list.
    Vacant { next: u32 },
}

/// A growable slab of `T` with O(1) insert/remove and slot reuse.
///
/// Indices are only guaranteed valid until the slot is removed; the event
/// queue pairs every index with a generation-like sequence number to detect
/// stale handles (see `EventId`).
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever allocated (live + recycled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Store `value`, reusing a recycled slot when one exists.
    pub fn insert(&mut self, value: T) -> SlotIndex {
        self.len += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            match self.slots[idx as usize] {
                Slot::Vacant { next } => self.free_head = next,
                Slot::Occupied(_) => unreachable!("free list points at an occupied slot"),
            }
            self.slots[idx as usize] = Slot::Occupied(value);
            idx
        } else {
            assert!(
                self.slots.len() < u32::MAX as usize,
                "arena exhausted the u32 index space"
            );
            self.slots.push(Slot::Occupied(value));
            (self.slots.len() - 1) as u32
        }
    }

    /// Take the value out of `idx`, returning the slot to the free list.
    /// Panics if the slot is vacant (a queue-internal logic error).
    pub fn remove(&mut self, idx: SlotIndex) -> T {
        let slot = std::mem::replace(
            &mut self.slots[idx as usize],
            Slot::Vacant {
                next: self.free_head,
            },
        );
        match slot {
            Slot::Occupied(value) => {
                self.free_head = idx;
                self.len -= 1;
                value
            }
            Slot::Vacant { .. } => panic!("removed a vacant arena slot {idx}"),
        }
    }

    /// Borrow the value at `idx`, or `None` if the slot is vacant.
    pub fn get(&self, idx: SlotIndex) -> Option<&T> {
        match self.slots.get(idx as usize) {
            Some(Slot::Occupied(value)) => Some(value),
            _ => None,
        }
    }

    /// Mutably borrow the value at `idx`, or `None` if the slot is vacant.
    pub fn get_mut(&mut self, idx: SlotIndex) -> Option<&mut T> {
        match self.slots.get_mut(idx as usize) {
            Some(Slot::Occupied(value)) => Some(value),
            _ => None,
        }
    }

    /// Drop every value and recycled slot.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = NIL;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut a = Arena::new();
        let x = a.insert("x");
        let y = a.insert("y");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(x), Some(&"x"));
        assert_eq!(a.remove(x), "x");
        assert_eq!(a.get(x), None);
        assert_eq!(a.get(y), Some(&"y"));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut a = Arena::new();
        let x = a.insert(1);
        let _y = a.insert(2);
        a.remove(x);
        let z = a.insert(3);
        assert_eq!(z, x, "freed slot must be reused");
        assert_eq!(a.capacity(), 2, "no growth while the free list has slots");
    }

    #[test]
    fn steady_state_never_grows() {
        let mut a = Arena::new();
        let mut pending: Vec<SlotIndex> = (0..8).map(|i| a.insert(i)).collect();
        let high_water = a.capacity();
        for i in 0..1000 {
            let idx = pending.remove(0);
            a.remove(idx);
            pending.push(a.insert(i));
            assert_eq!(a.capacity(), high_water);
        }
    }

    #[test]
    #[should_panic(expected = "vacant arena slot")]
    fn double_remove_panics() {
        let mut a = Arena::new();
        let x = a.insert(7);
        a.remove(x);
        a.remove(x);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a = Arena::new();
        a.insert(1);
        a.insert(2);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.capacity(), 0);
    }
}
