//! Deterministic random numbers for the simulation and workload generators.
//!
//! Every stochastic decision in the reproduction — client think times,
//! query-template selection, literal uniquification, compile-time jitter —
//! draws from a [`SimRng`] seeded per experiment. Re-running an experiment
//! with the same seed regenerates exactly the same figure.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random-number generator with the distributions the workload
/// model needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator. Used to give each simulated
    /// client its own stream so adding a client does not perturb the others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(s)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64 range inverted: {lo} > {hi}");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_f64 range inverted");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Exponentially distributed value with the given mean (inter-arrival
    /// times of the open portion of the client model).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// A multiplicative jitter factor in `[1-spread, 1+spread]`, used to vary
    /// compile and execution times between "identical" query submissions.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&spread),
            "jitter spread must be in [0,1)"
        );
        1.0 + self.uniform_f64(-spread, spread)
    }

    /// Zipf-distributed rank in `[0, n)` with skew `theta` (0 = uniform).
    /// Used for skewed dimension-key access in the synthetic warehouse.
    pub fn zipf(&mut self, n: usize, theta: f64) -> usize {
        assert!(n > 0, "zipf over empty domain");
        if theta <= f64::EPSILON {
            return self.uniform_u64(0, n as u64 - 1) as usize;
        }
        // Inverse-CDF by linear scan over a truncated harmonic sum. n is small
        // (dimension tables, query templates) so this is fine.
        let mut norm = 0.0;
        for i in 1..=n {
            norm += 1.0 / (i as f64).powf(theta);
        }
        let target = self.unit() * norm;
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            if acc >= target {
                return i - 1;
            }
        }
        n - 1
    }

    /// Choose an index in `[0, weights.len())` proportionally to `weights`.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(
            !weights.is_empty(),
            "weighted_index needs at least one weight"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        let idx = self.uniform_u64(0, items.len() as u64 - 1) as usize;
        &items[idx]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_u64(0, i as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Sample from an arbitrary `rand` distribution.
    pub fn sample<D, T>(&mut self, dist: &D) -> T
    where
        D: Distribution<T>,
    {
        dist.sample(&mut self.inner)
    }

    /// A raw 64-bit value (for uniquifier tags and fork salts).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "independent streams should rarely collide");
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        let mut fa = a.fork(3);
        let mut fb = b.fork(3);
        assert_eq!(fa.next_u64(), fb.next_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.uniform_u64(10, 20);
            assert!((10..=20).contains(&v));
            let f = r.uniform_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 5.0).abs() < 0.25,
            "sample mean {mean} too far from 5.0"
        );
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 10_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[r.zipf(10, 1.0)] += 1;
        }
        assert!(
            counts[0] > counts[9] * 3,
            "rank 0 should dominate rank 9: {counts:?}"
        );
    }

    #[test]
    fn zipf_zero_theta_is_roughly_uniform() {
        let mut r = SimRng::seed_from_u64(17);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[r.zipf(4, 0.0)] += 1;
        }
        for c in counts {
            assert!(
                (1_600..2_400).contains(&c),
                "uniform-ish expected, got {counts:?}"
            );
        }
    }

    #[test]
    fn weighted_index_follows_weights() {
        let mut r = SimRng::seed_from_u64(19);
        let mut counts = [0usize; 3];
        for _ in 0..9_000 {
            counts[r.weighted_index(&[1.0, 2.0, 6.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0], "{counts:?}");
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut r = SimRng::seed_from_u64(23);
        for _ in 0..1000 {
            let j = r.jitter(0.25);
            assert!((0.75..=1.25).contains(&j));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(29);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_member() {
        let mut r = SimRng::seed_from_u64(31);
        let items = ["a", "b", "c"];
        for _ in 0..50 {
            assert!(items.contains(r.choose(&items)));
        }
    }
}
