//! # throttledb-sim
//!
//! Deterministic discrete-event simulation (DES) substrate used by the
//! `throttledb` reproduction of *"Managing Query Compilation Memory
//! Consumption to Improve DBMS Throughput"* (CIDR 2007).
//!
//! The paper's evaluation runs a DBMS for hours of wall-clock time on an
//! 8-CPU / 4 GB machine. We reproduce the *shape* of those experiments by
//! running the same memory-management policy code against a virtual clock:
//! hours of model time execute in seconds, and every run is exactly
//! reproducible because all randomness flows through [`rng::SimRng`].
//!
//! The crate deliberately knows nothing about databases. It provides:
//!
//! * [`clock`] — virtual time ([`SimTime`], [`SimDuration`]) with microsecond
//!   resolution.
//! * [`events`] — a monotonic event queue / scheduler with stable FIFO
//!   ordering for simultaneous events, implemented as a timing wheel
//!   (near-future buckets + a far-future overflow heap) over a slab
//!   [`arena`] so the hot scheduling path is allocation-free.
//! * [`arena`] — the slab/free-list allocator backing the event queue.
//! * [`arrival`] — open-loop arrival processes (Poisson, MMPP,
//!   bounded-Pareto, diurnal) for request streams decoupled from service
//!   times.
//! * [`rng`] — a deterministic random-number generator with the
//!   distributions the workload model needs (uniform, exponential, zipf,
//!   log-normal-ish compile-time jitter).
//! * [`series`] — bucketed time-series recorders used to regenerate the
//!   paper's "completed queries per time slice" figures.
//! * [`shard`] — sealed per-producer mailboxes and a deterministic
//!   `(time, seq, shard)` merge, the exchange primitives behind
//!   byte-identical sharded runs.
//! * [`stats`] — histograms and summary statistics.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod arrival;
pub mod clock;
pub mod events;
pub mod rng;
pub mod series;
pub mod shard;
pub mod stats;

pub use arena::Arena;
pub use arrival::{ArrivalProcess, ArrivalSampler};
pub use clock::{SimDuration, SimTime};
pub use events::{EventId, EventQueue, HeapEventQueue, ScheduledEvent};
pub use rng::SimRng;
pub use series::{GaugeTimeline, TimeSeries};
pub use shard::{EpochMailbox, EpochMerge, Stamped};
pub use stats::{Histogram, Running, Summary};
