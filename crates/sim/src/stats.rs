//! Histograms and summary statistics for experiment reporting.

use serde::{Deserialize, Serialize};

/// A histogram over `u64` values with power-of-two buckets plus an exact
/// running sum/min/max. Suits the quantities we track — bytes, microseconds —
//  which span many orders of magnitude.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    name: String,
    /// `buckets[i]` counts values `v` with `floor(log2(v.max(1))) == i`.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new(name: impl Into<String>) -> Self {
        Histogram {
            name: name.into(),
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The histogram name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record a value.
    pub fn record(&mut self, value: u64) {
        let idx = 64 - value.max(1).leading_zeros() as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, or 0 for an empty histogram.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (p in \[0,100\]) using the bucket upper bounds.
    /// Accuracy is within a factor of two, which is sufficient for the
    /// order-of-magnitude comparisons the paper makes. The extremes are
    /// exact: p = 0 returns the tracked minimum and p = 100 the tracked
    /// maximum (the buckets only bound them from above).
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.count == 0 {
            return 0;
        }
        if p == 0.0 {
            return self.min();
        }
        if p == 100.0 {
            return self.max();
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                // Upper bound of bucket i is 2^i (bucket 0 holds value<=1).
                return if i >= 63 { u64::MAX } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Produce a compact summary of this histogram.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
        }
    }
}

/// Summary statistics extracted from a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: u64,
    /// Maximum sample.
    pub max: u64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 95th percentile.
    pub p95: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

/// Welford-style running mean/variance for floating point series (used for
/// run-to-run comparisons in the experiment harness and for cross-seed
/// aggregation in the policy sweeps).
///
/// The accumulator is **mergeable**: [`Running::merge`] combines two
/// independently accumulated streams via the pairwise m2 combination, and
/// the mean is kept as an exact running sum so that merging partitions of a
/// stream reproduces the single-stream mean bit-for-bit whenever the sums
/// are exactly representable (e.g. integer-valued samples).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Running {
    n: u64,
    sum: f64,
    m2: f64,
}

impl Running {
    /// An empty accumulator.
    pub fn new() -> Self {
        Running::default()
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        let mean_old = self.mean();
        self.n += 1;
        self.sum += x;
        let mean_new = self.sum / self.n as f64;
        self.m2 += (x - mean_old) * (x - mean_new);
    }

    /// Merge another accumulator into this one (Chan et al.'s pairwise
    /// update: `m2 = m2a + m2b + delta² · na·nb / n`).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean() - self.mean();
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.sum += other.sum;
        self.n = n;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Sample variance (0 when fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the two-sided 95% confidence interval for the mean
    /// (Student's t for n − 1 ≤ 30 degrees of freedom, the normal 1.96
    /// beyond). Zero with fewer than two samples.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        const T95: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        let df = (self.n - 1) as usize;
        let t = if df <= T95.len() { T95[df - 1] } else { 1.96 };
        t * (self.variance() / self.n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new("bytes");
        for v in [1u64, 2, 4, 8, 16] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 16);
        assert!((h.mean() - 6.2).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_defaults() {
        let h = Histogram::new("x");
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn percentile_is_order_of_magnitude_correct() {
        let mut h = Histogram::new("x");
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        let p50 = h.percentile(50.0);
        assert!((64..=256).contains(&p50), "p50 = {p50}");
        let p100 = h.percentile(100.0);
        assert!(p100 >= 1_000_000 / 2, "p100 = {p100}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new("a");
        let mut b = Histogram::new("b");
        a.record(10);
        b.record(1000);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn summary_reflects_histogram() {
        let mut h = Histogram::new("x");
        for i in 1..=100u64 {
            h.record(i);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!(s.p50 >= 32 && s.p50 <= 128);
    }

    #[test]
    fn running_mean_and_variance() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-9);
        assert!((r.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert!(r.std_dev() > 2.0 && r.std_dev() < 2.2);
    }

    #[test]
    fn running_empty_is_zero() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.ci95_half_width(), 0.0);
    }

    /// The aggregation layers divide by and compare against this value, so
    /// the degenerate seed counts must stay exactly 0.0 — never NaN or an
    /// infinity from a 0/0 variance or a df = 0 t-lookup.
    #[test]
    fn ci95_half_width_degenerate_counts_are_exactly_zero() {
        // n = 0.
        let empty = Running::new();
        assert_eq!(empty.ci95_half_width(), 0.0);
        assert!(empty.ci95_half_width().is_finite());

        // n = 1: a single seed has no spread to estimate.
        let mut one = Running::new();
        one.push(42.5);
        assert_eq!(one.count(), 1);
        assert_eq!(one.ci95_half_width(), 0.0);
        assert!(one.ci95_half_width().is_finite());

        // Merging two degenerate accumulators stays degenerate...
        let mut merged = Running::new();
        merged.merge(&empty);
        merged.merge(&one);
        assert_eq!(merged.count(), 1);
        assert_eq!(merged.ci95_half_width(), 0.0);

        // ...and the first non-degenerate count produces a finite,
        // strictly positive width (df = 1 hits the widest t row).
        let mut two = one;
        two.push(43.5);
        let width = two.ci95_half_width();
        assert!(width.is_finite() && width > 0.0, "width = {width}");
    }

    #[test]
    fn percentile_extremes_are_exact() {
        let mut h = Histogram::new("x");
        for v in [3u64, 100, 999_999] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 3, "p0 must be the tracked minimum");
        assert_eq!(h.percentile(100.0), 999_999, "p100 the tracked maximum");
    }

    #[test]
    fn extreme_values_land_in_valid_buckets() {
        let mut h = Histogram::new("x");
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), u64::MAX);
        // Interior percentiles stay bucket-approximate but in range.
        assert!(h.percentile(50.0) >= 1);
        let s = h.summary();
        assert_eq!((s.min, s.max), (0, u64::MAX));
    }

    #[test]
    fn percentile_zero_of_single_zero_value() {
        let mut h = Histogram::new("x");
        h.record(0);
        // The old bucket walk returned bucket 1's upper bound (1) here.
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 0);
    }

    #[test]
    fn running_merge_matches_single_stream() {
        // Integer-valued samples make the running sums exact, so the merged
        // mean must equal the single-stream mean bit-for-bit.
        let samples: Vec<f64> = (0..40).map(|i| ((i * 37) % 101) as f64).collect();
        let mut single = Running::new();
        for &x in &samples {
            single.push(x);
        }
        for split in [1usize, 7, 20, 39] {
            let (left, right) = samples.split_at(split);
            let mut a = Running::new();
            let mut b = Running::new();
            left.iter().for_each(|&x| a.push(x));
            right.iter().for_each(|&x| b.push(x));
            a.merge(&b);
            assert_eq!(a.count(), single.count());
            assert_eq!(a.mean().to_bits(), single.mean().to_bits(), "split {split}");
            let rel = (a.variance() - single.variance()).abs() / single.variance();
            assert!(rel < 1e-9, "split {split}: relative variance error {rel}");
        }
    }

    #[test]
    fn running_merge_with_empty_is_identity() {
        let mut a = Running::new();
        a.push(5.0);
        a.push(7.0);
        let before = a;
        a.merge(&Running::new());
        assert_eq!(a.mean().to_bits(), before.mean().to_bits());
        let mut empty = Running::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean().to_bits(), before.mean().to_bits());
    }

    #[test]
    fn ci95_half_width_shrinks_with_samples() {
        let mut small = Running::new();
        let mut large = Running::new();
        for i in 0..5 {
            small.push((i % 2) as f64);
        }
        for i in 0..50 {
            large.push((i % 2) as f64);
        }
        assert!(small.ci95_half_width() > 0.0);
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }
}
