//! Virtual time for the discrete-event simulation.
//!
//! Model time is measured in integer **microseconds** since the start of the
//! simulation. The paper reports throughput in "completed queries per time
//! slice" where a slice is 3600 seconds of wall-clock time; microsecond
//! resolution keeps scheduler decisions (which operate at the level of
//! optimizer tasks taking tens of microseconds) exact while still allowing
//! multi-hour experiments inside a `u64`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never" sentinels.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds since simulation start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration; used as "infinite" timeouts.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Construct from fractional seconds (negative values clamp to zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((secs * 1_000_000.0).round() as u64)
        }
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest microsecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "durations cannot be negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            write!(f, "inf")
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// A mutable virtual clock. The event loop owns one and advances it as events
/// are dispatched; components read it through a shared reference.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        SimClock { now: SimTime::ZERO }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock to `t`. Panics in debug builds if time would move
    /// backwards — the event queue guarantees monotonicity.
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(
            t >= self.now,
            "clock moved backwards: {} -> {}",
            self.now,
            t
        );
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!((t + d).as_secs(), 13);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 2, SimDuration::from_secs(6));
        assert_eq!(d / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(9);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(4));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_float_round_trip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_micros(), 1_500_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_micros(250));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_to(SimTime::from_secs(1));
        c.advance_to(SimTime::from_secs(1));
        assert_eq!(c.now().as_secs(), 1);
    }

    #[test]
    fn display_is_humane() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimDuration::MAX), "inf");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
