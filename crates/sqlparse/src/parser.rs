//! Recursive-descent parser for the SQL subset.

use crate::ast::{
    AggregateFunc, BinaryOp, Expr, JoinClause, JoinKind, Literal, OrderItem, SelectItem,
    SelectStatement, TableRef, UnaryOp,
};
use crate::lexer::Lexer;
use crate::token::{Keyword, Token};
use std::fmt;

/// A parse error with the offending token position (token index, not byte).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Index of the offending token in the token stream.
    pub token_index: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at token {}: {}",
            self.token_index, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse one SELECT statement from SQL text.
pub fn parse(sql: &str) -> Result<SelectStatement, ParseError> {
    let tokens = Lexer::new(sql).tokenize().map_err(|e| ParseError {
        token_index: 0,
        message: e.to_string(),
    })?;
    Parser::new(tokens).parse_select_statement()
}

/// The parser over a token stream.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Create a parser over tokens (must end with [`Token::Eof`]).
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            token_index: self.pos,
            message: message.into(),
        })
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<(), ParseError> {
        match self.advance() {
            Token::Keyword(k) if k == kw => Ok(()),
            other => self.error(format!("expected {kw:?}, found {other}")),
        }
    }

    fn expect_token(&mut self, expected: Token) -> Result<(), ParseError> {
        let got = self.advance();
        if got == expected {
            Ok(())
        } else {
            self.error(format!("expected {expected}, found {got}"))
        }
    }

    fn consume_keyword(&mut self, kw: Keyword) -> bool {
        if matches!(self.peek(), Token::Keyword(k) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn consume_token(&mut self, tok: &Token) -> bool {
        if self.peek() == tok {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parse a full SELECT statement and require EOF afterwards.
    pub fn parse_select_statement(&mut self) -> Result<SelectStatement, ParseError> {
        let stmt = self.parse_select()?;
        match self.peek() {
            Token::Eof => Ok(stmt),
            other => self.error(format!("unexpected trailing token {other}")),
        }
    }

    fn parse_select(&mut self) -> Result<SelectStatement, ParseError> {
        self.expect_keyword(Keyword::Select)?;
        let distinct = self.consume_keyword(Keyword::Distinct);

        // Select list.
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.consume_token(&Token::Comma) {
                break;
            }
        }

        // FROM.
        self.expect_keyword(Keyword::From)?;
        let mut from = vec![self.parse_table_ref()?];
        let mut joins = Vec::new();
        loop {
            if self.consume_token(&Token::Comma) {
                from.push(self.parse_table_ref()?);
            } else if let Some(kind) = self.try_parse_join_kind() {
                let table = self.parse_table_ref()?;
                self.expect_keyword(Keyword::On)?;
                let on = self.parse_expr()?;
                joins.push(JoinClause { kind, table, on });
            } else {
                break;
            }
        }

        // WHERE.
        let where_clause = if self.consume_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        // GROUP BY.
        let mut group_by = Vec::new();
        if self.consume_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }

        // HAVING.
        let having = if self.consume_keyword(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        // ORDER BY.
        let mut order_by = Vec::new();
        if self.consume_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.consume_keyword(Keyword::Desc) {
                    true
                } else {
                    self.consume_keyword(Keyword::Asc);
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }

        // LIMIT.
        let limit = if self.consume_keyword(Keyword::Limit) {
            match self.advance() {
                Token::Number(n) if n >= 0.0 && n.fract() == 0.0 => Some(n as u64),
                other => {
                    return self.error(format!(
                        "LIMIT expects a non-negative integer, found {other}"
                    ))
                }
            }
        } else {
            None
        };

        Ok(SelectStatement {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn try_parse_join_kind(&mut self) -> Option<JoinKind> {
        if self.consume_keyword(Keyword::Join) {
            return Some(JoinKind::Inner);
        }
        if self.consume_keyword(Keyword::Inner) {
            // INNER must be followed by JOIN.
            self.consume_keyword(Keyword::Join);
            return Some(JoinKind::Inner);
        }
        if self.consume_keyword(Keyword::Left) {
            self.consume_keyword(Keyword::Outer);
            self.consume_keyword(Keyword::Join);
            return Some(JoinKind::Left);
        }
        if self.consume_keyword(Keyword::Right) {
            self.consume_keyword(Keyword::Outer);
            self.consume_keyword(Keyword::Join);
            return Some(JoinKind::Right);
        }
        None
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        // Bare `*` select list.
        if self.peek() == &Token::Star {
            self.advance();
            return Ok(SelectItem {
                expr: Expr::Wildcard,
                alias: None,
            });
        }
        let expr = self.parse_expr()?;
        let alias = if self.consume_keyword(Keyword::As) {
            match self.advance() {
                Token::Ident(name) => Some(name),
                other => return self.error(format!("expected alias after AS, found {other}")),
            }
        } else if let Token::Ident(name) = self.peek().clone() {
            // Implicit alias: `SELECT expr alias`.
            self.advance();
            Some(name)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = match self.advance() {
            Token::Ident(name) => name,
            other => return self.error(format!("expected table name, found {other}")),
        };
        let alias = if self.consume_keyword(Keyword::As) {
            match self.advance() {
                Token::Ident(name) => Some(name),
                other => return self.error(format!("expected alias after AS, found {other}")),
            }
        } else if let Token::Ident(name) = self.peek().clone() {
            self.advance();
            Some(name)
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    /// Entry point for expressions: OR has the lowest precedence.
    pub fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.consume_keyword(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.consume_keyword(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.consume_keyword(Keyword::Not) {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.consume_keyword(Keyword::Is) {
            let negated = self.consume_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        // [NOT] IN / [NOT] BETWEEN / [NOT] LIKE
        let negated = self.consume_keyword(Keyword::Not);
        if self.consume_keyword(Keyword::In) {
            self.expect_token(Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_additive()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.consume_keyword(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_keyword(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.consume_keyword(Keyword::Like) {
            let right = self.parse_additive()?;
            let like = Expr::binary(left, BinaryOp::Like, right);
            return Ok(if negated {
                Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(like),
                }
            } else {
                like
            });
        }
        if negated {
            return self.error("expected IN, BETWEEN or LIKE after NOT");
        }

        let op = match self.peek() {
            Token::Eq => Some(BinaryOp::Eq),
            Token::NotEq => Some(BinaryOp::NotEq),
            Token::Lt => Some(BinaryOp::Lt),
            Token::LtEq => Some(BinaryOp::LtEq),
            Token::Gt => Some(BinaryOp::Gt),
            Token::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Add,
                Token::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Mul,
                Token::Slash => BinaryOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.consume_token(&Token::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.advance() {
            Token::Number(n) => Ok(Expr::Literal(Literal::Number(n))),
            Token::String(s) => Ok(Expr::Literal(Literal::String(s))),
            Token::Keyword(Keyword::Null) => Ok(Expr::Literal(Literal::Null)),
            Token::LParen => {
                let inner = self.parse_expr()?;
                self.expect_token(Token::RParen)?;
                Ok(inner)
            }
            Token::Keyword(k) if k.is_aggregate() => {
                let func = match k {
                    Keyword::Sum => AggregateFunc::Sum,
                    Keyword::Count => AggregateFunc::Count,
                    Keyword::Avg => AggregateFunc::Avg,
                    Keyword::Min => AggregateFunc::Min,
                    Keyword::Max => AggregateFunc::Max,
                    _ => unreachable!("is_aggregate covers exactly these keywords"),
                };
                self.expect_token(Token::LParen)?;
                let distinct = self.consume_keyword(Keyword::Distinct);
                let arg = if self.peek() == &Token::Star {
                    self.advance();
                    Expr::Wildcard
                } else {
                    self.parse_expr()?
                };
                self.expect_token(Token::RParen)?;
                Ok(Expr::Aggregate {
                    func,
                    arg: Box::new(arg),
                    distinct,
                })
            }
            Token::Ident(first) => {
                if self.consume_token(&Token::Dot) {
                    match self.advance() {
                        Token::Ident(name) => Ok(Expr::Column {
                            qualifier: Some(first),
                            name,
                        }),
                        Token::Star => Ok(Expr::Wildcard),
                        other => self.error(format!("expected column after '.', found {other}")),
                    }
                } else {
                    Ok(Expr::Column {
                        qualifier: None,
                        name: first,
                    })
                }
            }
            other => self.error(format!("unexpected token {other} in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_select() {
        let s = parse("SELECT a FROM t").unwrap();
        assert_eq!(s.items.len(), 1);
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].table, "t");
        assert!(s.where_clause.is_none());
        assert_eq!(s.table_count(), 1);
    }

    #[test]
    fn parses_star_select() {
        let s = parse("SELECT * FROM orders LIMIT 10").unwrap();
        assert_eq!(s.items[0].expr, Expr::Wildcard);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn parses_aliases_and_qualified_columns() {
        let s = parse("SELECT f.amount AS amt, d.year yr FROM fact f, dim d").unwrap();
        assert_eq!(s.items[0].alias.as_deref(), Some("amt"));
        assert_eq!(s.items[1].alias.as_deref(), Some("yr"));
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].binding_name(), "f");
        assert_eq!(s.join_count(), 1);
    }

    #[test]
    fn parses_explicit_joins() {
        let s = parse(
            "SELECT x.a FROM t1 x \
             JOIN t2 y ON x.k = y.k \
             LEFT JOIN t3 z ON y.j = z.j \
             INNER JOIN t4 w ON z.m = w.m",
        )
        .unwrap();
        assert_eq!(s.joins.len(), 3);
        assert_eq!(s.joins[0].kind, JoinKind::Inner);
        assert_eq!(s.joins[1].kind, JoinKind::Left);
        assert_eq!(s.joins[2].kind, JoinKind::Inner);
        assert_eq!(s.table_count(), 4);
    }

    #[test]
    fn parses_where_with_precedence() {
        let s = parse("SELECT a FROM t WHERE a = 1 AND b > 2 OR c < 3").unwrap();
        // OR binds loosest: (a=1 AND b>2) OR (c<3)
        match s.where_clause.unwrap() {
            Expr::Binary {
                op: BinaryOp::Or,
                left,
                ..
            } => match *left {
                Expr::Binary {
                    op: BinaryOp::And, ..
                } => {}
                other => panic!("left of OR should be AND, got {other:?}"),
            },
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let s = parse("SELECT a FROM t WHERE a + 2 * 3 = 7").unwrap();
        let w = s.where_clause.unwrap();
        // a + (2*3) = 7
        match w {
            Expr::Binary {
                op: BinaryOp::Eq,
                left,
                ..
            } => match *left {
                Expr::Binary {
                    op: BinaryOp::Add,
                    right,
                    ..
                } => {
                    assert!(matches!(
                        *right,
                        Expr::Binary {
                            op: BinaryOp::Mul,
                            ..
                        }
                    ));
                }
                other => panic!("expected Add, got {other:?}"),
            },
            other => panic!("expected Eq, got {other:?}"),
        }
    }

    #[test]
    fn parses_in_between_like_isnull() {
        let s = parse(
            "SELECT a FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 5 AND 10 \
             AND c LIKE 'x' AND d IS NOT NULL AND e NOT IN (4)",
        )
        .unwrap();
        let w = s.where_clause.unwrap();
        let conjuncts = w.conjuncts();
        assert_eq!(conjuncts.len(), 5);
        assert!(matches!(conjuncts[0], Expr::InList { negated: false, .. }));
        assert!(matches!(conjuncts[1], Expr::Between { .. }));
        assert!(matches!(
            conjuncts[2],
            Expr::Binary {
                op: BinaryOp::Like,
                ..
            }
        ));
        assert!(matches!(conjuncts[3], Expr::IsNull { negated: true, .. }));
        assert!(matches!(conjuncts[4], Expr::InList { negated: true, .. }));
    }

    #[test]
    fn parses_aggregates_group_by_having_order_by() {
        let s = parse(
            "SELECT d.year, SUM(f.amount) AS total, COUNT(*) AS n \
             FROM fact f JOIN dim_date d ON f.date_id = d.date_key \
             WHERE f.amount > 0 \
             GROUP BY d.year \
             HAVING SUM(f.amount) > 1000 \
             ORDER BY total DESC, d.year ASC \
             LIMIT 5",
        )
        .unwrap();
        assert!(s.is_aggregation());
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
        assert_eq!(s.limit, Some(5));
        assert!(matches!(
            s.items[2].expr,
            Expr::Aggregate {
                func: AggregateFunc::Count,
                ..
            }
        ));
    }

    #[test]
    fn parses_count_distinct() {
        let s = parse("SELECT COUNT(DISTINCT c.customer_id) FROM c").unwrap();
        assert!(matches!(
            s.items[0].expr,
            Expr::Aggregate { distinct: true, .. }
        ));
    }

    #[test]
    fn parses_select_distinct() {
        let s = parse("SELECT DISTINCT region FROM stores").unwrap();
        assert!(s.distinct);
    }

    #[test]
    fn parses_unary_minus_and_not() {
        let s = parse("SELECT a FROM t WHERE NOT a = -5").unwrap();
        assert!(matches!(
            s.where_clause.unwrap(),
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }

    #[test]
    fn parses_parenthesised_predicates() {
        let s = parse("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3").unwrap();
        let w = s.where_clause.unwrap();
        assert!(matches!(
            w,
            Expr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse("SELECT a FROM t GARBAGE more").unwrap_err();
        assert!(err.message.contains("unexpected trailing") || err.message.contains("expected"));
    }

    #[test]
    fn rejects_missing_from() {
        assert!(parse("SELECT a WHERE x = 1").is_err());
    }

    #[test]
    fn rejects_bad_limit() {
        assert!(parse("SELECT a FROM t LIMIT x").is_err());
        assert!(parse("SELECT a FROM t LIMIT 1.5").is_err());
    }

    #[test]
    fn rejects_unbalanced_parens() {
        assert!(parse("SELECT a FROM t WHERE (a = 1").is_err());
        assert!(parse("SELECT SUM(a FROM t").is_err());
    }

    #[test]
    fn parses_twenty_way_join() {
        // Shape of a SALES query: fact table joined to 19 dimensions.
        let mut sql = String::from("SELECT SUM(f.m0) FROM fact f");
        for i in 0..19 {
            sql.push_str(&format!(" JOIN dim{i} d{i} ON f.k{i} = d{i}.key"));
        }
        sql.push_str(" WHERE f.m0 > 0 GROUP BY f.k0");
        let s = parse(&sql).unwrap();
        assert_eq!(s.table_count(), 20);
        assert_eq!(s.join_count(), 19);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let s = parse("select a from t where a between 1 and 2 order by a desc").unwrap();
        assert!(matches!(s.where_clause.unwrap(), Expr::Between { .. }));
        assert!(s.order_by[0].desc);
    }
}
