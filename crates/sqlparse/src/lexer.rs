//! The SQL lexer.

use crate::token::{Keyword, Token};
use std::fmt;

/// An error produced while tokenizing.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub position: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Converts SQL text into a vector of [`Token`]s.
#[derive(Debug)]
pub struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Lexer {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the whole input, appending a trailing [`Token::Eof`].
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t == Token::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn peek_next(&self) -> Option<u8> {
        self.input.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_whitespace_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                // `-- line comment`
                Some(b'-') if self.peek_next() == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_whitespace_and_comments();
        let start = self.pos;
        let Some(c) = self.bump() else {
            return Ok(Token::Eof);
        };
        let t = match c {
            b',' => Token::Comma,
            b'.' => Token::Dot,
            b'(' => Token::LParen,
            b')' => Token::RParen,
            b'*' => Token::Star,
            b'+' => Token::Plus,
            b'-' => Token::Minus,
            b'/' => Token::Slash,
            b'=' => Token::Eq,
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    Token::LtEq
                }
                Some(b'>') => {
                    self.pos += 1;
                    Token::NotEq
                }
                _ => Token::Lt,
            },
            b'>' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    Token::GtEq
                }
                _ => Token::Gt,
            },
            b'!' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    Token::NotEq
                }
                _ => {
                    return Err(LexError {
                        position: start,
                        message: "expected '=' after '!'".to_string(),
                    })
                }
            },
            b'\'' => {
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'\'') => {
                            // Doubled quote = escaped quote.
                            if self.peek() == Some(b'\'') {
                                self.pos += 1;
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c as char),
                        None => {
                            return Err(LexError {
                                position: start,
                                message: "unterminated string literal".to_string(),
                            })
                        }
                    }
                }
                Token::String(s)
            }
            c if c.is_ascii_digit() => {
                let mut seen_dot = false;
                while let Some(n) = self.peek() {
                    if n.is_ascii_digit() {
                        self.pos += 1;
                    } else if n == b'.'
                        && !seen_dot
                        && self.peek_next().is_some_and(|d| d.is_ascii_digit())
                    {
                        seen_dot = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii");
                let value: f64 = text.parse().map_err(|_| LexError {
                    position: start,
                    message: format!("invalid number: {text}"),
                })?;
                Token::Number(value)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while let Some(n) = self.peek() {
                    if n.is_ascii_alphanumeric() || n == b'_' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii");
                match Keyword::from_ident(text) {
                    Some(k) => Token::Keyword(k),
                    None => Token::Ident(text.to_ascii_lowercase()),
                }
            }
            other => {
                return Err(LexError {
                    position: start,
                    message: format!("unexpected character '{}'", other as char),
                })
            }
        };
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<Token> {
        Lexer::new(s).tokenize().expect("lexes")
    }

    #[test]
    fn lexes_simple_select() {
        let toks = lex("SELECT a, b FROM t WHERE a = 1");
        assert_eq!(
            toks,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Ident("a".into()),
                Token::Comma,
                Token::Ident("b".into()),
                Token::Keyword(Keyword::From),
                Token::Ident("t".into()),
                Token::Keyword(Keyword::Where),
                Token::Ident("a".into()),
                Token::Eq,
                Token::Number(1.0),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let toks = lex("<= >= <> != < > = + - * /");
        assert_eq!(
            toks[..toks.len() - 1],
            vec![
                Token::LtEq,
                Token::GtEq,
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::Gt,
                Token::Eq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
            ]
        );
    }

    #[test]
    fn lexes_numbers_and_decimals() {
        let toks = lex("42 3.25 1000");
        assert_eq!(
            toks[..3],
            vec![
                Token::Number(42.0),
                Token::Number(3.25),
                Token::Number(1000.0)
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let toks = lex("'hello' 'it''s'");
        assert_eq!(
            toks[..2],
            vec![Token::String("hello".into()), Token::String("it's".into())]
        );
    }

    #[test]
    fn skips_line_comments() {
        let toks = lex("SELECT -- the columns\n a FROM t");
        assert_eq!(toks.len(), 5);
        assert_eq!(toks[1], Token::Ident("a".into()));
    }

    #[test]
    fn identifiers_are_lowercased_keywords_detected() {
        let toks = lex("Fact_Sales JOIN Dim_Date");
        assert_eq!(toks[0], Token::Ident("fact_sales".into()));
        assert_eq!(toks[1], Token::Keyword(Keyword::Join));
        assert_eq!(toks[2], Token::Ident("dim_date".into()));
    }

    #[test]
    fn qualified_names_lex_as_ident_dot_ident() {
        let toks = lex("f.net_amount");
        assert_eq!(
            toks[..3],
            vec![
                Token::Ident("f".into()),
                Token::Dot,
                Token::Ident("net_amount".into())
            ]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = Lexer::new("'oops").tokenize().unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn stray_character_is_an_error() {
        let err = Lexer::new("SELECT #").tokenize().unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.position, 7);
    }

    #[test]
    fn bang_without_eq_is_an_error() {
        let err = Lexer::new("a ! b").tokenize().unwrap_err();
        assert!(err.message.contains("expected '='"));
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(lex(""), vec![Token::Eof]);
        assert_eq!(lex("   \n\t "), vec![Token::Eof]);
    }
}
