//! The abstract syntax tree for the SQL subset.

use serde::{Deserialize, Serialize};

/// Scalar literals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// Numeric literal (all numbers are carried as f64).
    Number(f64),
    /// String literal.
    String(String),
    /// NULL.
    Null,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `=` equality comparison.
    Eq,
    /// `<>` / `!=` inequality comparison.
    NotEq,
    /// `<` less-than comparison.
    Lt,
    /// `<=` less-than-or-equal comparison.
    LtEq,
    /// `>` greater-than comparison.
    Gt,
    /// `>=` greater-than-or-equal comparison.
    GtEq,
    /// Logical `AND`.
    And,
    /// Logical `OR`.
    Or,
    /// Arithmetic `+`.
    Add,
    /// Arithmetic `-`.
    Sub,
    /// Arithmetic `*`.
    Mul,
    /// Arithmetic `/`.
    Div,
    /// `LIKE` pattern match.
    Like,
}

impl BinaryOp {
    /// True for comparison operators that produce a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
                | BinaryOp::Like
        )
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateFunc {
    /// `SUM(expr)`.
    Sum,
    /// `COUNT(expr)` / `COUNT(*)`.
    Count,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

/// A scalar or boolean expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A (possibly qualified) column reference.
    Column {
        /// Table name or alias qualifier, if written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A literal value.
    Literal(Literal),
    /// `*` — only valid inside `COUNT(*)` or as the lone select item.
    Wildcard,
    /// A binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// An aggregate function call.
    Aggregate {
        /// Which aggregate.
        func: AggregateFunc,
        /// Argument (may be [`Expr::Wildcard`] for `COUNT(*)`).
        arg: Box<Expr>,
        /// Whether `DISTINCT` was specified.
        distinct: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// The probed expression.
        expr: Box<Expr>,
        /// List members.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl Expr {
    /// Shorthand for an unqualified column reference.
    pub fn column(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_ascii_lowercase(),
        }
    }

    /// Shorthand for a qualified column reference.
    pub fn qualified(qualifier: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.to_ascii_lowercase()),
            name: name.to_ascii_lowercase(),
        }
    }

    /// Shorthand for a numeric literal.
    pub fn number(n: f64) -> Expr {
        Expr::Literal(Literal::Number(n))
    }

    /// Shorthand for a binary expression.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// Split a conjunction into its AND-ed conjuncts (a single non-AND
    /// expression yields itself).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                let mut out = left.conjuncts();
                out.extend(right.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Collect every column referenced anywhere in this expression, as
    /// `(qualifier, name)` pairs in depth-first order.
    pub fn referenced_columns(&self) -> Vec<(Option<String>, String)> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column { qualifier, name } = e {
                out.push((qualifier.clone(), name.clone()));
            }
        });
        out
    }

    /// True when the expression (or any sub-expression) is an aggregate.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Aggregate { .. }) {
                found = true;
            }
        });
        found
    }

    /// Number of nodes in the expression tree (used by the compile-memory
    /// model: bigger predicates = more optimizer work).
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Visit every [`Literal`] in the expression mutably, depth-first in
    /// the same order as [`Expr::walk`].
    pub fn for_each_literal_mut(&mut self, f: &mut impl FnMut(&mut Literal)) {
        match self {
            Expr::Literal(lit) => f(lit),
            Expr::Column { .. } | Expr::Wildcard => {}
            Expr::Binary { left, right, .. } => {
                left.for_each_literal_mut(f);
                right.for_each_literal_mut(f);
            }
            Expr::Unary { expr, .. } => expr.for_each_literal_mut(f),
            Expr::Aggregate { arg, .. } => arg.for_each_literal_mut(f),
            Expr::InList { expr, list, .. } => {
                expr.for_each_literal_mut(f);
                for e in list {
                    e.for_each_literal_mut(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.for_each_literal_mut(f);
                low.for_each_literal_mut(f);
                high.for_each_literal_mut(f);
            }
            Expr::IsNull { expr, .. } => expr.for_each_literal_mut(f),
        }
    }

    /// Visit every node depth-first.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Aggregate { arg, .. } => arg.walk(f),
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Column { .. } | Expr::Literal(_) | Expr::Wildcard => {}
        }
    }
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

/// A base-table reference in the FROM clause.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is referred to by in the rest of the query.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// Join flavours supported by the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT OUTER JOIN.
    Left,
    /// RIGHT OUTER JOIN.
    Right,
}

/// One `JOIN ... ON ...` clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinClause {
    /// Join flavour.
    pub kind: JoinKind,
    /// The joined table.
    pub table: TableRef,
    /// The ON predicate.
    pub on: Expr,
}

/// One ORDER BY item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderItem {
    /// Ordering expression.
    pub expr: Expr,
    /// True for DESC.
    pub desc: bool,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStatement {
    /// Whether `SELECT DISTINCT` was used.
    pub distinct: bool,
    /// The select list.
    pub items: Vec<SelectItem>,
    /// Base tables of the FROM clause (comma-separated implicit joins).
    pub from: Vec<TableRef>,
    /// Explicit JOIN clauses, in textual order.
    pub joins: Vec<JoinClause>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

impl SelectStatement {
    /// Total number of base-table references (FROM entries plus JOINs).
    /// A SALES query has 16–21 of these; an OLTP point query 1–2.
    pub fn table_count(&self) -> usize {
        self.from.len() + self.joins.len()
    }

    /// Number of join edges (explicit ON clauses plus implicit comma joins).
    pub fn join_count(&self) -> usize {
        self.table_count().saturating_sub(1)
    }

    /// All table references, FROM entries first then JOINed tables.
    pub fn all_tables(&self) -> Vec<&TableRef> {
        self.from
            .iter()
            .chain(self.joins.iter().map(|j| &j.table))
            .collect()
    }

    /// True when the query computes any aggregate or has a GROUP BY.
    pub fn is_aggregation(&self) -> bool {
        !self.group_by.is_empty() || self.items.iter().any(|i| i.expr.contains_aggregate())
    }

    /// Visit every [`Literal`] in the statement mutably, in deterministic
    /// clause order: select items, join conditions, WHERE, GROUP BY,
    /// HAVING, ORDER BY (and depth-first within each expression).
    ///
    /// The workload uniquifier perturbs numeric literals through this
    /// visitor on a *cached* parse of each template — re-rendering a unique
    /// query per submission without re-parsing or allocating — so the visit
    /// order is part of the deterministic-replay contract: it fixes the RNG
    /// draw order of every simulated submission.
    pub fn for_each_literal_mut(&mut self, f: &mut impl FnMut(&mut Literal)) {
        for item in &mut self.items {
            item.expr.for_each_literal_mut(f);
        }
        for join in &mut self.joins {
            join.on.for_each_literal_mut(f);
        }
        if let Some(w) = &mut self.where_clause {
            w.for_each_literal_mut(f);
        }
        for g in &mut self.group_by {
            g.for_each_literal_mut(f);
        }
        if let Some(h) = &mut self.having {
            h.for_each_literal_mut(f);
        }
        for o in &mut self.order_by {
            o.expr.for_each_literal_mut(f);
        }
    }

    /// Rough size of the statement in AST nodes; the compile-memory model
    /// uses it as one input ("memory as a function of the size of the query
    /// tree structure").
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        for i in &self.items {
            n += i.expr.node_count();
        }
        for j in &self.joins {
            n += 1 + j.on.node_count();
        }
        n += self.from.len();
        if let Some(w) = &self.where_clause {
            n += w.node_count();
        }
        for g in &self.group_by {
            n += g.node_count();
        }
        if let Some(h) = &self.having {
            n += h.node_count();
        }
        for o in &self.order_by {
            n += o.expr.node_count();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SelectStatement {
        SelectStatement {
            distinct: false,
            items: vec![SelectItem {
                expr: Expr::Aggregate {
                    func: AggregateFunc::Sum,
                    arg: Box::new(Expr::qualified("f", "amount")),
                    distinct: false,
                },
                alias: Some("total".into()),
            }],
            from: vec![TableRef {
                table: "fact_sales".into(),
                alias: Some("f".into()),
            }],
            joins: vec![JoinClause {
                kind: JoinKind::Inner,
                table: TableRef {
                    table: "dim_date".into(),
                    alias: Some("d".into()),
                },
                on: Expr::binary(
                    Expr::qualified("f", "date_id"),
                    BinaryOp::Eq,
                    Expr::qualified("d", "date_key"),
                ),
            }],
            where_clause: Some(Expr::binary(
                Expr::qualified("d", "calendar_year"),
                BinaryOp::GtEq,
                Expr::number(2004.0),
            )),
            group_by: vec![Expr::qualified("d", "calendar_year")],
            having: None,
            order_by: vec![],
            limit: None,
        }
    }

    #[test]
    fn table_and_join_counts() {
        let s = sample();
        assert_eq!(s.table_count(), 2);
        assert_eq!(s.join_count(), 1);
        assert_eq!(s.all_tables().len(), 2);
        assert!(s.is_aggregation());
    }

    #[test]
    fn conjuncts_split_and_chains() {
        let e = Expr::binary(
            Expr::binary(Expr::column("a"), BinaryOp::Eq, Expr::number(1.0)),
            BinaryOp::And,
            Expr::binary(
                Expr::binary(Expr::column("b"), BinaryOp::Eq, Expr::number(2.0)),
                BinaryOp::And,
                Expr::binary(Expr::column("c"), BinaryOp::Eq, Expr::number(3.0)),
            ),
        );
        assert_eq!(e.conjuncts().len(), 3);
        let single = Expr::binary(Expr::column("a"), BinaryOp::Or, Expr::column("b"));
        assert_eq!(single.conjuncts().len(), 1);
    }

    #[test]
    fn referenced_columns_are_collected() {
        let s = sample();
        let cols = s.where_clause.as_ref().unwrap().referenced_columns();
        assert_eq!(
            cols,
            vec![(Some("d".to_string()), "calendar_year".to_string())]
        );
    }

    #[test]
    fn aggregate_detection() {
        assert!(sample().items[0].expr.contains_aggregate());
        assert!(!Expr::column("x").contains_aggregate());
    }

    #[test]
    fn node_count_is_positive_and_monotone() {
        let s = sample();
        let n = s.node_count();
        assert!(n > 5);
        let small = Expr::column("a").node_count();
        assert_eq!(small, 1);
        assert!(
            Expr::binary(Expr::column("a"), BinaryOp::Eq, Expr::number(1.0)).node_count() > small
        );
    }

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableRef {
            table: "fact_sales".into(),
            alias: Some("f".into()),
        };
        assert_eq!(t.binding_name(), "f");
        let t = TableRef {
            table: "fact_sales".into(),
            alias: None,
        };
        assert_eq!(t.binding_name(), "fact_sales");
    }

    #[test]
    fn comparison_classification() {
        assert!(BinaryOp::Eq.is_comparison());
        assert!(BinaryOp::Like.is_comparison());
        assert!(!BinaryOp::And.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
    }
}
