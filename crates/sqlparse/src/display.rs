//! Pretty-printing of the AST back to SQL text.
//!
//! The workload generator's *uniquifier* (§5.1: "our load generator modifies
//! each base query before it is submitted ... to make it appear unique and to
//! defeat plan-caching") rewrites literal values in a parsed template and
//! re-renders it; round-tripping through this printer keeps that pipeline
//! honest and is exercised by property tests.

use crate::ast::{
    AggregateFunc, BinaryOp, Expr, JoinKind, Literal, SelectStatement, TableRef, UnaryOp,
};
use std::fmt;

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Like => "LIKE",
        };
        f.write_str(s)
    }
}

impl fmt::Display for AggregateFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggregateFunc::Sum => "SUM",
            AggregateFunc::Count => "COUNT",
            AggregateFunc::Avg => "AVG",
            AggregateFunc::Min => "MIN",
            AggregateFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Wildcard => write!(f, "*"),
            Expr::Binary { left, op, right } => {
                // Parenthesize conservatively: always safe, re-parses identically
                // up to redundant parentheses.
                write!(f, "({left} {op} {right})")
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
            },
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => {
                write!(
                    f,
                    "{func}({}{arg})",
                    if *distinct { "DISTINCT " } else { "" }
                )
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}BETWEEN {low} AND {high}",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} {}", self.table, a),
            None => write!(f, "{}", self.table),
        }
    }
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinKind::Inner => "JOIN",
            JoinKind::Left => "LEFT JOIN",
            JoinKind::Right => "RIGHT JOIN",
        };
        f.write_str(s)
    }
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", item.expr)?;
            if let Some(alias) = &item.alias {
                write!(f, " AS {alias}")?;
            }
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        for j in &self.joins {
            write!(f, " {} {} ON {}", j.kind, j.table, j.on)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", o.expr, if o.desc { " DESC" } else { "" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use proptest::prelude::*;

    #[test]
    fn simple_statement_round_trips() {
        let sql = "SELECT a FROM t WHERE (a = 1)";
        let stmt = parse(sql).unwrap();
        let rendered = stmt.to_string();
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(stmt, reparsed);
    }

    #[test]
    fn complex_statement_round_trips() {
        let sql = "SELECT d.year, SUM(f.amount) AS total, COUNT(*) AS n \
                   FROM fact f JOIN dim_date d ON f.date_id = d.date_key \
                   LEFT JOIN dim_store s ON f.store_id = s.store_key \
                   WHERE f.amount > 0 AND d.year IN (2004, 2005) AND s.name LIKE 'a' \
                   GROUP BY d.year HAVING SUM(f.amount) > 1000 \
                   ORDER BY total DESC LIMIT 10";
        let stmt = parse(sql).unwrap();
        let reparsed = parse(&stmt.to_string()).unwrap();
        assert_eq!(stmt, reparsed);
    }

    #[test]
    fn literal_rendering() {
        assert_eq!(Literal::Number(5.0).to_string(), "5");
        assert_eq!(Literal::Number(2.5).to_string(), "2.5");
        assert_eq!(Literal::String("o'neil".into()).to_string(), "'o''neil'");
        assert_eq!(Literal::Null.to_string(), "NULL");
    }

    #[test]
    fn between_and_isnull_round_trip() {
        let sql = "SELECT a FROM t WHERE a BETWEEN 1 AND 2 AND b IS NOT NULL AND c NOT IN (3, 4)";
        let stmt = parse(sql).unwrap();
        let reparsed = parse(&stmt.to_string()).unwrap();
        assert_eq!(stmt, reparsed);
    }

    proptest! {
        /// Rendering a parsed statement and re-parsing it is a fixed point
        /// for a family of generated join queries (the shape the SALES
        /// uniquifier manipulates).
        #[test]
        fn prop_generated_join_queries_round_trip(
            joins in 0usize..12,
            literal in 0i64..1_000_000,
            use_group in proptest::bool::ANY,
        ) {
            let mut sql = "SELECT SUM(f.m) AS total FROM fact f".to_string();
            for i in 0..joins {
                sql.push_str(&format!(" JOIN dim{i} d{i} ON f.k{i} = d{i}.key"));
            }
            sql.push_str(&format!(" WHERE f.m > {literal}"));
            if use_group {
                sql.push_str(" GROUP BY f.k0");
            }
            let stmt = parse(&sql).unwrap();
            let rendered = stmt.to_string();
            let reparsed = parse(&rendered).unwrap();
            prop_assert_eq!(stmt, reparsed);
        }
    }
}
