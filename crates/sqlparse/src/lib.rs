//! # throttledb-sqlparse
//!
//! A SQL-subset front end for the `throttledb` reproduction: lexer, abstract
//! syntax tree, recursive-descent parser and a pretty-printer.
//!
//! The subset covers what the paper's workloads need — multi-way joins
//! (explicit `JOIN ... ON` and implicit comma joins), selections with
//! conjunctive/disjunctive predicates, `IN` lists, `BETWEEN`, grouping and
//! aggregation, `HAVING`, `ORDER BY` and `LIMIT`. That is enough to express
//! the 15–20-join SALES decision-support queries of §5.1, TPC-H-like
//! queries, and the small diagnostic/OLTP queries that the first gateway
//! threshold is calibrated to let through unthrottled.
//!
//! ```
//! use throttledb_sqlparse::parse;
//!
//! let stmt = parse(
//!     "SELECT d.calendar_year, SUM(f.net_amount) AS total \
//!      FROM fact_sales f JOIN dim_date d ON f.date_id = d.date_key \
//!      WHERE d.calendar_year >= 2004 GROUP BY d.calendar_year",
//! ).expect("valid SQL");
//! assert_eq!(stmt.from.len(), 1);
//! assert_eq!(stmt.joins.len(), 1);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod display;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{
    BinaryOp, Expr, JoinClause, JoinKind, Literal, OrderItem, SelectItem, SelectStatement,
    TableRef, UnaryOp,
};
pub use lexer::{LexError, Lexer};
pub use parser::{parse, ParseError, Parser};
pub use token::{Keyword, Token};
