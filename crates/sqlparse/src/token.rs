//! Tokens produced by the lexer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// SQL keywords recognised by the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Keyword {
    /// `SELECT`.
    Select,
    /// `FROM`.
    From,
    /// `WHERE`.
    Where,
    /// `JOIN`.
    Join,
    /// `INNER` (join qualifier).
    Inner,
    /// `LEFT` (join qualifier).
    Left,
    /// `RIGHT` (join qualifier).
    Right,
    /// `OUTER` (join qualifier).
    Outer,
    /// `ON` (join condition).
    On,
    /// `GROUP` (of `GROUP BY`).
    Group,
    /// `BY` (of `GROUP BY` / `ORDER BY`).
    By,
    /// `HAVING`.
    Having,
    /// `ORDER` (of `ORDER BY`).
    Order,
    /// `LIMIT`.
    Limit,
    /// `AS` (alias introducer).
    As,
    /// `AND`.
    And,
    /// `OR`.
    Or,
    /// `NOT`.
    Not,
    /// `IN`.
    In,
    /// `BETWEEN`.
    Between,
    /// `LIKE`.
    Like,
    /// `IS` (of `IS [NOT] NULL`).
    Is,
    /// `NULL`.
    Null,
    /// `DISTINCT`.
    Distinct,
    /// `ASC` (sort direction).
    Asc,
    /// `DESC` (sort direction).
    Desc,
    /// `SUM` aggregate.
    Sum,
    /// `COUNT` aggregate.
    Count,
    /// `AVG` aggregate.
    Avg,
    /// `MIN` aggregate.
    Min,
    /// `MAX` aggregate.
    Max,
}

impl Keyword {
    /// Parse an identifier into a keyword, case-insensitively.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        let k = match s.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "JOIN" => Keyword::Join,
            "INNER" => Keyword::Inner,
            "LEFT" => Keyword::Left,
            "RIGHT" => Keyword::Right,
            "OUTER" => Keyword::Outer,
            "ON" => Keyword::On,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            "HAVING" => Keyword::Having,
            "ORDER" => Keyword::Order,
            "LIMIT" => Keyword::Limit,
            "AS" => Keyword::As,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "IN" => Keyword::In,
            "BETWEEN" => Keyword::Between,
            "LIKE" => Keyword::Like,
            "IS" => Keyword::Is,
            "NULL" => Keyword::Null,
            "DISTINCT" => Keyword::Distinct,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "SUM" => Keyword::Sum,
            "COUNT" => Keyword::Count,
            "AVG" => Keyword::Avg,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            _ => return None,
        };
        Some(k)
    }

    /// True for the aggregate-function keywords.
    pub fn is_aggregate(self) -> bool {
        matches!(
            self,
            Keyword::Sum | Keyword::Count | Keyword::Avg | Keyword::Min | Keyword::Max
        )
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Token {
    /// A keyword such as `SELECT`.
    Keyword(Keyword),
    /// An identifier (table, column or alias name), lower-cased.
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// A single-quoted string literal (quotes stripped).
    String(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::String(s) => write!(f, "'{s}'"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_parse_case_insensitively() {
        assert_eq!(Keyword::from_ident("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_ident("SELECT"), Some(Keyword::Select));
        assert_eq!(Keyword::from_ident("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::from_ident("frobnicate"), None);
    }

    #[test]
    fn aggregates_are_flagged() {
        assert!(Keyword::Sum.is_aggregate());
        assert!(Keyword::Count.is_aggregate());
        assert!(!Keyword::Select.is_aggregate());
    }

    #[test]
    fn tokens_display() {
        assert_eq!(Token::Comma.to_string(), ",");
        assert_eq!(Token::NotEq.to_string(), "<>");
        assert_eq!(Token::String("x".into()).to_string(), "'x'");
    }
}
