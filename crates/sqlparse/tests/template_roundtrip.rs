//! Satellite property tests: `parse(display(parse(sql)))` is a fixed point
//! for every query template the workload generator can submit — the SALES
//! suite, the TPC-H-like baseline and the OLTP diagnostics — and stays a
//! fixed point after the uniquifier rewrites literals (the §5.1 pipeline
//! that defeats the plan cache).

use throttledb_sim::SimRng;
use throttledb_sqlparse::parse;
use throttledb_workload::{
    oltp_templates, sales_templates, tpch_like_templates, QueryTemplate, Uniquifier,
};

/// parse → display → parse must reproduce the same AST, and a second
/// display must reproduce the same text (the printer is a fixed point of
/// its own output).
fn assert_round_trip(name: &str, sql: &str) {
    let first = parse(sql).unwrap_or_else(|e| panic!("{name}: template does not parse: {e:?}"));
    let rendered = first.to_string();
    let second = parse(&rendered)
        .unwrap_or_else(|e| panic!("{name}: rendering does not re-parse: {e:?}\n{rendered}"));
    assert_eq!(
        first, second,
        "{name}: AST changed across a render/parse cycle"
    );
    assert_eq!(
        rendered,
        second.to_string(),
        "{name}: rendered text is not a fixed point"
    );
}

fn assert_suite_round_trips(templates: &[QueryTemplate]) {
    assert!(!templates.is_empty(), "template suite must not be empty");
    for t in templates {
        assert_round_trip(&t.name, &t.sql);
    }
}

#[test]
fn every_sales_template_round_trips() {
    assert_suite_round_trips(&sales_templates());
}

#[test]
fn every_oltp_template_round_trips() {
    assert_suite_round_trips(&oltp_templates());
}

#[test]
fn every_tpch_like_template_round_trips() {
    assert_suite_round_trips(&tpch_like_templates());
}

#[test]
fn uniquified_sales_queries_still_round_trip() {
    // The engine parses what the uniquifier emits, so rewritten literals must
    // not break the fixed point. Exercise many rewrites per template.
    let uniquifier = Uniquifier::new();
    let mut rng = SimRng::seed_from_u64(2007);
    for t in sales_templates() {
        for submission in 0..25 {
            let sql = uniquifier.uniquify(&t.sql, &mut rng, submission);
            assert_round_trip(&format!("{}#{submission}", t.name), &sql);
        }
    }
}

#[test]
fn uniquified_queries_differ_from_their_template() {
    // The whole point of uniquification is to defeat exact-text plan-cache
    // matching; the rewritten SQL must actually differ.
    let uniquifier = Uniquifier::new();
    let mut rng = SimRng::seed_from_u64(7);
    let mut changed = 0usize;
    let templates = sales_templates();
    for (i, t) in templates.iter().enumerate() {
        let sql = uniquifier.uniquify(&t.sql, &mut rng, i as u64);
        if sql != t.sql {
            changed += 1;
        }
    }
    assert!(
        changed > 0,
        "uniquification changed no template at all — plan-cache defeat is broken"
    );
}

#[test]
fn sales_templates_are_join_heavy_and_oltp_templates_are_not() {
    // Guard the workload shape the paper's evaluation depends on: SALES
    // queries carry large join counts (15–20 joins in §5.1), OLTP
    // diagnostics stay trivial. join_count is derived from the parsed AST,
    // so this also pins the parser's join handling.
    let max_oltp = oltp_templates()
        .iter()
        .map(|t| parse(&t.sql).expect("oltp parses").join_count())
        .max()
        .unwrap();
    let min_sales = sales_templates()
        .iter()
        .map(|t| parse(&t.sql).expect("sales parses").join_count())
        .min()
        .unwrap();
    assert!(
        min_sales > max_oltp,
        "every SALES template ({min_sales}+ joins) must out-join every OLTP template ({max_oltp})"
    );
}
