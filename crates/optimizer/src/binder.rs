//! The binder: name resolution and lowering of parsed SQL into the logical
//! algebra.
//!
//! Beyond resolving tables and columns against the catalog, the binder does
//! the normalization the optimizer relies on:
//!
//! * WHERE and `JOIN ... ON` conjuncts are classified into **equi-join
//!   predicates** (column = column across two bindings), **single-table
//!   filters** (pushed into the `Get` of their table), and **residual
//!   predicates** (kept in a `Filter` with a guessed selectivity);
//! * the initial join tree is built left-deep in textual order — the
//!   optimizer's transformation rules then explore alternative shapes inside
//!   the memo.

use crate::error::OptimizerError;
use crate::logical::{ColumnRef, JoinPredicate, LogicalOp, LogicalPlan, Predicate};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use throttledb_catalog::Catalog;
use throttledb_sqlparse::{BinaryOp, Expr, JoinKind, Literal, SelectStatement};

/// Binds parsed statements against a catalog.
#[derive(Debug)]
pub struct Binder<'a> {
    catalog: &'a Catalog,
}

/// A resolved table binding: query alias → catalog table.
#[derive(Debug, Clone)]
struct Binding {
    binding: String,
    table: String,
}

impl<'a> Binder<'a> {
    /// Create a binder over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        Binder { catalog }
    }

    /// Bind a statement, producing the initial logical plan.
    pub fn bind(&self, stmt: &SelectStatement) -> Result<LogicalPlan, OptimizerError> {
        // 1. Resolve table bindings in textual order.
        let mut bindings: Vec<Binding> = Vec::new();
        for tref in stmt.all_tables() {
            if !self.catalog.contains(&tref.table) {
                return Err(OptimizerError::UnknownTable(tref.table.clone()));
            }
            bindings.push(Binding {
                binding: tref.binding_name().to_string(),
                table: tref.table.clone(),
            });
        }
        if bindings.is_empty() {
            return Err(OptimizerError::Unsupported("query without FROM".into()));
        }

        // 2. Gather all conjuncts: WHERE plus every JOIN ON clause.
        let mut conjuncts: Vec<&Expr> = Vec::new();
        if let Some(w) = &stmt.where_clause {
            conjuncts.extend(w.conjuncts());
        }
        for j in &stmt.joins {
            conjuncts.extend(j.on.conjuncts());
        }

        // 3. Classify conjuncts.
        let mut join_predicates: Vec<JoinPredicate> = Vec::new();
        let mut table_filters: HashMap<String, Vec<Predicate>> = HashMap::new();
        let mut residual_ppm: f64 = 1_000_000.0;
        let mut residual_count = 0u32;
        for expr in conjuncts {
            match self.classify(expr, &bindings)? {
                Classified::Join(jp) => join_predicates.push(jp),
                Classified::TableFilter(binding, pred) => {
                    table_filters.entry(binding).or_default().push(pred);
                }
                Classified::Residual(selectivity) => {
                    residual_ppm *= selectivity;
                    residual_count += 1;
                }
            }
        }

        // 4. Build the initial left-deep join tree in textual order.
        let outer_kinds: HashMap<String, JoinKind> = stmt
            .joins
            .iter()
            .map(|j| (j.table.binding_name().to_string(), j.kind))
            .collect();

        let mut plan: Option<LogicalPlan> = None;
        let mut joined: Vec<String> = Vec::new();
        let mut remaining_joins = join_predicates.clone();
        for b in &bindings {
            let get = LogicalPlan::leaf(LogicalOp::Get {
                table: b.table.clone(),
                binding: b.binding.clone(),
                predicates: table_filters.remove(&b.binding).unwrap_or_default(),
            });
            plan = Some(match plan {
                None => get,
                Some(left) => {
                    // Collect join predicates connecting the new table to the
                    // already-joined set.
                    let mut usable = Vec::new();
                    let mut rest = Vec::new();
                    for jp in remaining_joins.drain(..) {
                        let connects = (joined.contains(&jp.left.binding)
                            && jp.right.binding == b.binding)
                            || (joined.contains(&jp.right.binding) && jp.left.binding == b.binding);
                        if connects {
                            // Normalize so the left side refers to the
                            // accumulated input and the right side to the new
                            // table.
                            if jp.right.binding == b.binding {
                                usable.push(jp);
                            } else {
                                usable.push(jp.flipped());
                            }
                        } else {
                            rest.push(jp);
                        }
                    }
                    remaining_joins = rest;
                    let kind = outer_kinds
                        .get(&b.binding)
                        .copied()
                        .unwrap_or(JoinKind::Inner);
                    LogicalPlan::binary(
                        LogicalOp::Join {
                            kind,
                            predicates: usable,
                        },
                        left,
                        get,
                    )
                }
            });
            joined.push(b.binding.clone());
        }
        let mut plan = plan.expect("at least one table");

        // Any join predicate that never connected (e.g. refers to tables in
        // an order the left-deep build couldn't use) becomes a residual
        // filter so no predicate is silently dropped.
        for _ in &remaining_joins {
            residual_ppm *= 0.1;
            residual_count += 1;
        }

        // 5. Residual filter.
        if residual_count > 0 {
            plan = LogicalPlan::unary(
                LogicalOp::Filter {
                    selectivity_ppm: residual_ppm.clamp(1.0, 1_000_000.0) as u32,
                },
                plan,
            );
        }

        // 6. Aggregation.
        if stmt.is_aggregation() {
            let group_by = stmt
                .group_by
                .iter()
                .filter_map(|g| match g {
                    Expr::Column { qualifier, name } => self
                        .resolve_column(qualifier.as_deref(), name, &bindings)
                        .ok(),
                    _ => None,
                })
                .collect::<Vec<_>>();
            let aggregate_count = stmt
                .items
                .iter()
                .filter(|i| i.expr.contains_aggregate())
                .count() as u32;
            plan = LogicalPlan::unary(
                LogicalOp::Aggregate {
                    group_by,
                    aggregate_count: aggregate_count.max(1),
                },
                plan,
            );
        }

        // 7. HAVING is a residual filter above the aggregate.
        if stmt.having.is_some() {
            plan = LogicalPlan::unary(
                LogicalOp::Filter {
                    selectivity_ppm: 300_000,
                },
                plan,
            );
        }

        // 8. Projection, sort, limit.
        plan = LogicalPlan::unary(
            LogicalOp::Project {
                column_count: stmt.items.len() as u32,
            },
            plan,
        );
        if !stmt.order_by.is_empty() {
            plan = LogicalPlan::unary(
                LogicalOp::Sort {
                    key_count: stmt.order_by.len() as u32,
                },
                plan,
            );
        }
        if let Some(limit) = stmt.limit {
            plan = LogicalPlan::unary(LogicalOp::Limit { count: limit }, plan);
        }
        Ok(plan)
    }

    /// Resolve a column reference against the bound tables.
    fn resolve_column(
        &self,
        qualifier: Option<&str>,
        name: &str,
        bindings: &[Binding],
    ) -> Result<ColumnRef, OptimizerError> {
        match qualifier {
            Some(q) => {
                let b = bindings
                    .iter()
                    .find(|b| b.binding == q)
                    .ok_or_else(|| OptimizerError::UnknownTable(q.to_string()))?;
                let table = self.catalog.table(&b.table).expect("binding checked");
                if table.column(name).is_none() {
                    return Err(OptimizerError::UnknownColumn(format!("{q}.{name}")));
                }
                Ok(ColumnRef::new(&b.binding, &b.table, name))
            }
            None => {
                let mut matches = Vec::new();
                for b in bindings {
                    let table = self.catalog.table(&b.table).expect("binding checked");
                    if table.column(name).is_some() {
                        matches.push(b);
                    }
                }
                match matches.len() {
                    0 => Err(OptimizerError::UnknownColumn(name.to_string())),
                    1 => Ok(ColumnRef::new(&matches[0].binding, &matches[0].table, name)),
                    _ => Err(OptimizerError::AmbiguousColumn(name.to_string())),
                }
            }
        }
    }

    fn classify(&self, expr: &Expr, bindings: &[Binding]) -> Result<Classified, OptimizerError> {
        // Equi-join: column = column over two different bindings.
        if let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = expr
        {
            if let (
                Expr::Column {
                    qualifier: ql,
                    name: nl,
                },
                Expr::Column {
                    qualifier: qr,
                    name: nr,
                },
            ) = (left.as_ref(), right.as_ref())
            {
                let lc = self.resolve_column(ql.as_deref(), nl, bindings)?;
                let rc = self.resolve_column(qr.as_deref(), nr, bindings)?;
                if lc.binding != rc.binding {
                    return Ok(Classified::Join(JoinPredicate {
                        left: lc,
                        right: rc,
                    }));
                }
            }
        }

        // Single-table predicates.
        if let Some(pred) = self.try_single_table(expr, bindings)? {
            let binding = pred
                .column()
                .map(|c| c.binding.clone())
                .or_else(|| single_binding_of_or(&pred));
            if let Some(binding) = binding {
                return Ok(Classified::TableFilter(binding, pred));
            }
        }

        // Fallback: a residual predicate with a guessed selectivity.
        Ok(Classified::Residual(default_selectivity(expr)))
    }

    /// Try to express `expr` as a single-table [`Predicate`].
    fn try_single_table(
        &self,
        expr: &Expr,
        bindings: &[Binding],
    ) -> Result<Option<Predicate>, OptimizerError> {
        Ok(match expr {
            Expr::Binary { left, op, right } if op.is_comparison() => {
                let (col_expr, lit_expr, flipped) = match (left.as_ref(), right.as_ref()) {
                    (Expr::Column { .. }, Expr::Literal(_)) => {
                        (left.as_ref(), right.as_ref(), false)
                    }
                    (Expr::Literal(_), Expr::Column { .. }) => {
                        (right.as_ref(), left.as_ref(), true)
                    }
                    _ => return Ok(None),
                };
                let Expr::Column { qualifier, name } = col_expr else {
                    return Ok(None);
                };
                let Expr::Literal(lit) = lit_expr else {
                    return Ok(None);
                };
                let column = self.resolve_column(qualifier.as_deref(), name, bindings)?;
                let value = literal_to_f64(lit);
                let op = if flipped { flip_comparison(*op) } else { *op };
                Some(match op {
                    BinaryOp::Eq => Predicate::Equals {
                        column,
                        value: value.into(),
                    },
                    BinaryOp::NotEq => Predicate::Opaque {
                        selectivity_ppm: 900_000,
                    },
                    BinaryOp::Lt | BinaryOp::LtEq => Predicate::Range {
                        column,
                        lo: f64::NEG_INFINITY.into(),
                        hi: value.into(),
                    },
                    BinaryOp::Gt | BinaryOp::GtEq => Predicate::Range {
                        column,
                        lo: value.into(),
                        hi: f64::INFINITY.into(),
                    },
                    BinaryOp::Like => Predicate::Like { column },
                    _ => return Ok(None),
                })
            }
            Expr::Between {
                expr: inner,
                low,
                high,
                negated,
            } => {
                let Expr::Column { qualifier, name } = inner.as_ref() else {
                    return Ok(None);
                };
                if *negated {
                    return Ok(Some(Predicate::Opaque {
                        selectivity_ppm: 700_000,
                    }));
                }
                let (Expr::Literal(lo), Expr::Literal(hi)) = (low.as_ref(), high.as_ref()) else {
                    return Ok(None);
                };
                let column = self.resolve_column(qualifier.as_deref(), name, bindings)?;
                Some(Predicate::Range {
                    column,
                    lo: literal_to_f64(lo).into(),
                    hi: literal_to_f64(hi).into(),
                })
            }
            Expr::InList {
                expr: inner,
                list,
                negated,
            } => {
                let Expr::Column { qualifier, name } = inner.as_ref() else {
                    return Ok(None);
                };
                if *negated {
                    return Ok(Some(Predicate::Opaque {
                        selectivity_ppm: 800_000,
                    }));
                }
                let column = self.resolve_column(qualifier.as_deref(), name, bindings)?;
                Some(Predicate::InList {
                    column,
                    count: list.len() as u32,
                })
            }
            Expr::IsNull {
                expr: inner,
                negated,
            } => {
                let Expr::Column { qualifier, name } = inner.as_ref() else {
                    return Ok(None);
                };
                let column = self.resolve_column(qualifier.as_deref(), name, bindings)?;
                Some(Predicate::IsNull {
                    column,
                    negated: *negated,
                })
            }
            Expr::Binary {
                left,
                op: BinaryOp::Or,
                right,
            } => {
                let l = self.try_single_table(left, bindings)?;
                let r = self.try_single_table(right, bindings)?;
                match (l, r) {
                    (Some(lp), Some(rp)) => {
                        // Only a single-table OR if both sides hit the same binding.
                        let lb = lp
                            .column()
                            .map(|c| c.binding.clone())
                            .or_else(|| single_binding_of_or(&lp));
                        let rb = rp
                            .column()
                            .map(|c| c.binding.clone())
                            .or_else(|| single_binding_of_or(&rp));
                        if lb.is_some() && lb == rb {
                            Some(Predicate::Or(vec![lp, rp]))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            _ => None,
        })
    }
}

/// Result of classifying one conjunct.
enum Classified {
    Join(JoinPredicate),
    TableFilter(String, Predicate),
    Residual(f64),
}

/// The binding an OR predicate applies to, when all arms agree.
fn single_binding_of_or(p: &Predicate) -> Option<String> {
    match p {
        Predicate::Or(parts) => {
            let mut binding: Option<String> = None;
            for part in parts {
                let b = part
                    .column()
                    .map(|c| c.binding.clone())
                    .or_else(|| single_binding_of_or(part))?;
                match &binding {
                    None => binding = Some(b),
                    Some(existing) if *existing == b => {}
                    _ => return None,
                }
            }
            binding
        }
        _ => None,
    }
}

/// Literal → numeric domain used by statistics (strings hash).
fn literal_to_f64(lit: &Literal) -> f64 {
    match lit {
        Literal::Number(n) => *n,
        Literal::String(s) => {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            (h.finish() % 1_000_000) as f64
        }
        Literal::Null => 0.0,
    }
}

/// Flip a comparison when the literal was on the left (`5 < col` ⇒ `col > 5`).
fn flip_comparison(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// Default selectivity guesses for unclassifiable predicates.
fn default_selectivity(expr: &Expr) -> f64 {
    match expr {
        Expr::Binary {
            op: BinaryOp::Eq, ..
        } => 0.05,
        Expr::Binary { op, .. } if op.is_comparison() => 0.3,
        _ => 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use throttledb_catalog::{sales_schema, tpch_schema, SalesScale};
    use throttledb_sqlparse::parse;

    fn bind(sql: &str) -> Result<LogicalPlan, OptimizerError> {
        let cat = tpch_schema(1.0);
        let stmt = parse(sql).expect("parses");
        Binder::new(&cat).bind(&stmt)
    }

    #[test]
    fn binds_single_table_scan_with_filter() {
        let plan = bind("SELECT o_orderkey FROM orders WHERE o_totalprice > 1000").unwrap();
        assert_eq!(plan.table_count(), 1);
        assert_eq!(plan.join_count(), 0);
        // Filter was pushed into the Get.
        let mut pushed = 0;
        plan.walk(&mut |p| {
            if let LogicalOp::Get { predicates, .. } = &p.op {
                pushed = predicates.len();
            }
        });
        assert_eq!(pushed, 1);
    }

    #[test]
    fn binds_explicit_join_with_equi_predicate() {
        let plan =
            bind("SELECT o.o_orderkey FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey")
                .unwrap();
        assert_eq!(plan.table_count(), 2);
        assert_eq!(plan.join_count(), 1);
        let mut join_preds = 0;
        plan.walk(&mut |p| {
            if let LogicalOp::Join { predicates, .. } = &p.op {
                join_preds += predicates.len();
            }
        });
        assert_eq!(join_preds, 1);
    }

    #[test]
    fn binds_implicit_comma_join_from_where() {
        let plan = bind(
            "SELECT o.o_orderkey FROM orders o, customer c \
             WHERE o.o_custkey = c.c_custkey AND c.c_mktsegment = 'BUILDING'",
        )
        .unwrap();
        assert_eq!(plan.join_count(), 1);
        // The segment filter should be pushed to customer's Get.
        let mut customer_filters = 0;
        plan.walk(&mut |p| {
            if let LogicalOp::Get {
                table, predicates, ..
            } = &p.op
            {
                if table == "customer" {
                    customer_filters = predicates.len();
                }
            }
        });
        assert_eq!(customer_filters, 1);
    }

    #[test]
    fn unknown_table_is_an_error() {
        assert!(matches!(
            bind("SELECT a FROM no_such_table"),
            Err(OptimizerError::UnknownTable(_))
        ));
    }

    #[test]
    fn unknown_column_is_an_error() {
        assert!(matches!(
            bind("SELECT o_orderkey FROM orders WHERE bogus_column = 1"),
            Err(OptimizerError::UnknownColumn(_))
        ));
    }

    #[test]
    fn unqualified_ambiguous_column_is_an_error() {
        // `country` exists in both dim_region and dim_supplier in the SALES schema.
        let cat = sales_schema(SalesScale::tiny());
        let stmt =
            parse("SELECT region_name FROM dim_region, dim_supplier WHERE country = 'US'").unwrap();
        assert!(matches!(
            Binder::new(&cat).bind(&stmt),
            Err(OptimizerError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn aggregation_and_order_produce_wrapper_operators() {
        let plan = bind(
            "SELECT c.c_mktsegment, SUM(o.o_totalprice) AS t FROM orders o \
             JOIN customer c ON o.o_custkey = c.c_custkey \
             GROUP BY c.c_mktsegment HAVING SUM(o.o_totalprice) > 5 \
             ORDER BY t DESC LIMIT 10",
        )
        .unwrap();
        let mut names = Vec::new();
        plan.walk(&mut |p| names.push(p.op.name()));
        assert!(names.contains(&"Aggregate"));
        assert!(names.contains(&"Sort"));
        assert!(names.contains(&"Limit"));
        assert!(names.contains(&"Project"));
        // HAVING shows up as a Filter.
        assert!(names.contains(&"Filter"));
    }

    #[test]
    fn sales_query_with_many_joins_binds() {
        let cat = sales_schema(SalesScale::tiny());
        let sql = "SELECT d.calendar_year, SUM(f.net_amount) AS total \
                   FROM fact_sales f \
                   JOIN dim_date d ON f.date_id = d.date_key \
                   JOIN dim_store s ON f.store_id = s.store_key \
                   JOIN dim_product p ON f.product_id = p.product_key \
                   JOIN dim_customer c ON f.customer_id = c.customer_key \
                   JOIN dim_region r ON s.region_id = r.region_key \
                   WHERE d.calendar_year BETWEEN 3 AND 7 AND p.category_id IN (1, 2, 3) \
                   GROUP BY d.calendar_year";
        let stmt = parse(sql).unwrap();
        let plan = Binder::new(&cat).bind(&stmt).unwrap();
        assert_eq!(plan.table_count(), 6);
        assert_eq!(plan.join_count(), 5);
    }

    #[test]
    fn between_and_in_become_typed_predicates() {
        let plan = bind(
            "SELECT o_orderkey FROM orders WHERE o_totalprice BETWEEN 10 AND 20 \
             AND o_orderstatus IN ('a', 'b')",
        )
        .unwrap();
        let mut kinds = Vec::new();
        plan.walk(&mut |p| {
            if let LogicalOp::Get { predicates, .. } = &p.op {
                for pred in predicates {
                    kinds.push(match pred {
                        Predicate::Range { .. } => "range",
                        Predicate::InList { .. } => "in",
                        _ => "other",
                    });
                }
            }
        });
        assert!(kinds.contains(&"range"));
        assert!(kinds.contains(&"in"));
    }

    #[test]
    fn literal_on_left_side_is_flipped() {
        let plan = bind("SELECT o_orderkey FROM orders WHERE 1000 < o_totalprice").unwrap();
        let mut found_range_lo = None;
        plan.walk(&mut |p| {
            if let LogicalOp::Get { predicates, .. } = &p.op {
                for pred in predicates {
                    if let Predicate::Range { lo, .. } = pred {
                        found_range_lo = Some(lo.0);
                    }
                }
            }
        });
        assert_eq!(found_range_lo, Some(1000.0));
    }
}
