//! The optimizer driver: bind → memo → staged exploration → costing.

use crate::binder::Binder;
use crate::cardinality::CardinalityEstimator;
use crate::cost::CostModel;
use crate::error::OptimizerError;
use crate::implementation::{extract_plan, optimize_group, ImplementationContext};
use crate::memo::Memo;
use crate::memory::{sizes, CompilationMemory, GovernorDirective, MemoryGovernor};
use crate::physical::PhysicalPlan;
use crate::rules::{apply_rule, Rule};
use crate::stage::{OptimizationStage, StagePolicy};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use throttledb_catalog::Catalog;
use throttledb_membroker::Clerk;
use throttledb_sqlparse::SelectStatement;

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct OptimizerConfig {
    /// Stage-selection policy (how effort scales with estimated cost).
    pub stage_policy: StagePolicy,
    /// Cost model.
    pub cost_model: CostModel,
}

/// Statistics about one compilation, used by the experiments and by the
/// engine's compile-time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompileStats {
    /// Peak compilation memory in bytes.
    pub peak_memory_bytes: u64,
    /// Stage chosen.
    pub stage: OptimizationStage,
    /// Transformation-rule applications performed.
    pub transformations: u64,
    /// Memo groups at the end of compilation.
    pub memo_groups: usize,
    /// Memo logical expressions at the end of compilation.
    pub memo_exprs: usize,
    /// True when exploration stopped early because the governor demanded the
    /// best plan so far.
    pub finished_best_effort: bool,
}

/// The result of a successful compilation.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// The chosen physical plan.
    pub plan: PhysicalPlan,
    /// Compilation statistics.
    pub stats: CompileStats,
}

/// The query optimizer.
#[derive(Debug)]
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    config: OptimizerConfig,
}

impl<'a> Optimizer<'a> {
    /// Create an optimizer over `catalog` with default configuration.
    pub fn new(catalog: &'a Catalog) -> Self {
        Optimizer {
            catalog,
            config: OptimizerConfig::default(),
        }
    }

    /// Create an optimizer with an explicit configuration.
    pub fn with_config(catalog: &'a Catalog, config: OptimizerConfig) -> Self {
        Optimizer { catalog, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Compile a statement with no throttling and no broker reporting
    /// (the unthrottled baseline, and the convenient entry point for tests).
    pub fn optimize(&self, stmt: &SelectStatement) -> Result<OptimizationOutcome, OptimizerError> {
        self.optimize_governed(stmt, CompilationMemory::unlimited())
    }

    /// Compile a statement, charging compilation memory to `clerk` and
    /// consulting `governor` after every allocation. This is the entry point
    /// the throttled server uses: the governor is the gateway ladder.
    pub fn optimize_with_governor(
        &self,
        stmt: &SelectStatement,
        governor: Box<dyn MemoryGovernor + Send>,
        clerk: Option<Clerk>,
    ) -> Result<OptimizationOutcome, OptimizerError> {
        self.optimize_governed(stmt, CompilationMemory::new(governor, clerk))
    }

    fn optimize_governed(
        &self,
        stmt: &SelectStatement,
        mut mem: CompilationMemory,
    ) -> Result<OptimizationOutcome, OptimizerError> {
        let estimator = CardinalityEstimator::new(self.catalog);
        let binder = Binder::new(self.catalog);
        let initial_plan = binder.bind(stmt)?;
        let table_count = initial_plan.table_count();

        // Fixed per-query overhead: parse tree, binding, statistics loads.
        mem.charge(sizes::QUERY_OVERHEAD_BYTES);
        mem.charge(sizes::PER_TABLE_OVERHEAD_BYTES * table_count as u64);

        // Seed the memo with the initial plan and cost it, so a best-effort
        // plan exists from the earliest possible moment.
        let mut memo = Memo::new();
        let root = memo.insert_plan(&initial_plan, &estimator, &mut mem);
        let ctx = ImplementationContext {
            catalog: self.catalog,
            estimator,
            model: self.config.cost_model,
        };
        optimize_group(&mut memo, root, &ctx, &mut mem);
        let initial_cost = memo
            .group(root)
            .winner
            .as_ref()
            .map(|w| w.total_cost.total())
            .unwrap_or(0.0);

        // Pick the stage ("dynamic optimization").
        let budget = self.config.stage_policy.choose(initial_cost, table_count);

        // Exploration: breadth-first over (expr, rule) pairs until the
        // budget is exhausted, the space is exhausted, or the governor
        // intervenes.
        let mut transformations: u64 = 0;
        let mut best_effort = false;
        let mut aborted: Option<String> = None;

        if budget.transformation_limit > 0 {
            let mut queue: VecDeque<crate::memo::ExprId> = memo.expr_ids().collect();
            'explore: while let Some(expr_id) = queue.pop_front() {
                for rule in Rule::ALL {
                    if transformations >= budget.transformation_limit {
                        break 'explore;
                    }
                    let outcome = apply_rule(rule, &mut memo, expr_id, &estimator, &mut mem);
                    transformations += outcome
                        .attempted
                        .max(u64::from(!outcome.new_exprs.is_empty()));
                    for new_expr in outcome.new_exprs {
                        queue.push_back(new_expr);
                    }
                    match mem.pending_directive() {
                        GovernorDirective::Continue => {}
                        GovernorDirective::FinishWithBestPlan => {
                            best_effort = true;
                            break 'explore;
                        }
                        GovernorDirective::Abort => {
                            aborted = Some("memory governor aborted compilation".to_string());
                            break 'explore;
                        }
                    }
                }
            }
        }

        if let Some(reason) = aborted {
            mem.finish();
            return Err(OptimizerError::Aborted(reason));
        }

        // Final costing pass over everything explored.
        memo.clear_winners();
        optimize_group(&mut memo, root, &ctx, &mut mem);
        let plan = extract_plan(&memo, root).ok_or(OptimizerError::NoPlanAvailable)?;

        let stats = CompileStats {
            peak_memory_bytes: mem.peak_bytes(),
            stage: budget.stage,
            transformations,
            memo_groups: memo.group_count(),
            memo_exprs: memo.expr_count(),
            finished_best_effort: best_effort,
        };
        mem.finish();
        Ok(OptimizationOutcome { plan, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::UnlimitedGovernor;
    use throttledb_catalog::{sales_schema, tpch_schema, SalesScale};
    use throttledb_membroker::{BrokerConfig, MemoryBroker, SubcomponentKind};
    use throttledb_sqlparse::parse;

    fn sales_query(joins: usize) -> String {
        // Join the fact table to `joins` dimensions (up to 19).
        let dims = [
            ("dim_product", "product_id", "product_key"),
            ("dim_customer", "customer_id", "customer_key"),
            ("dim_store", "store_id", "store_key"),
            ("dim_date", "date_id", "date_key"),
            ("dim_promotion", "promotion_id", "promotion_key"),
            ("dim_channel", "channel_id", "channel_key"),
            ("dim_currency", "currency_id", "currency_key"),
            ("dim_salesrep", "salesrep_id", "salesrep_key"),
            ("dim_shipmode", "shipmode_id", "shipmode_key"),
            ("dim_warehouse", "warehouse_id", "warehouse_key"),
            ("dim_region", "region_id", "region_key"),
            ("dim_category", "category_id", "category_key"),
            ("dim_brand", "brand_id", "brand_key"),
            ("dim_supplier", "supplier_id", "supplier_key"),
            ("dim_payment", "payment_id", "payment_key"),
            ("dim_segment", "segment_id", "segment_key"),
            ("dim_campaign", "campaign_id", "campaign_key"),
            ("dim_returnreason", "returnreason_id", "returnreason_key"),
        ];
        let mut sql = String::from("SELECT SUM(f.net_amount) AS total FROM fact_sales f");
        for (table, fk, key) in dims.iter().take(joins) {
            sql.push_str(&format!(" JOIN {table} ON f.{fk} = {table}.{key}"));
        }
        sql.push_str(" WHERE f.quantity > 10 GROUP BY f.channel_id");
        sql
    }

    #[test]
    fn oltp_point_query_compiles_trivially_with_small_memory() {
        let cat = tpch_schema(1.0);
        let opt = Optimizer::new(&cat);
        let stmt = parse("SELECT o_totalprice FROM orders WHERE o_orderkey = 42").unwrap();
        let out = opt.optimize(&stmt).unwrap();
        assert_eq!(out.stats.stage, OptimizationStage::Trivial);
        assert_eq!(out.stats.transformations, 0);
        // Small queries stay well under a megabyte of compile memory.
        assert!(
            out.stats.peak_memory_bytes < 1 << 20,
            "point query used {} bytes",
            out.stats.peak_memory_bytes
        );
        assert_eq!(out.plan.scan_count(), 1);
    }

    #[test]
    fn tpch_style_join_query_uses_quick_or_full_stage() {
        let cat = tpch_schema(1.0);
        let opt = Optimizer::new(&cat);
        let stmt = parse(
            "SELECT c.c_mktsegment, SUM(l.l_extendedprice) FROM lineitem l \
             JOIN orders o ON l.l_orderkey = o.o_orderkey \
             JOIN customer c ON o.o_custkey = c.c_custkey \
             WHERE o.o_orderdate BETWEEN 100 AND 400 \
             GROUP BY c.c_mktsegment",
        )
        .unwrap();
        let out = opt.optimize(&stmt).unwrap();
        assert_ne!(out.stats.stage, OptimizationStage::Trivial);
        assert!(out.stats.transformations > 0);
        assert!(out.stats.memo_exprs > out.plan.operator_count());
        assert_eq!(out.plan.join_count(), 2);
    }

    #[test]
    fn exploration_finds_a_cheaper_join_order_than_the_initial_plan() {
        // Written order joins the two big tables first; a better order
        // filters through the small customer table first. The optimizer
        // should at least not be worse than the initial left-deep plan.
        let cat = tpch_schema(1.0);
        let opt = Optimizer::new(&cat);
        let stmt = parse(
            "SELECT COUNT(*) FROM lineitem l \
             JOIN orders o ON l.l_orderkey = o.o_orderkey \
             JOIN customer c ON o.o_custkey = c.c_custkey \
             WHERE c.c_mktsegment = 'BUILDING'",
        )
        .unwrap();

        // Baseline: trivial-style compile (no exploration) via a zero-budget policy.
        let mut cfg = OptimizerConfig::default();
        cfg.stage_policy.quick_budget = 0;
        cfg.stage_policy.full_budget_per_log_cost = 0.0;
        cfg.stage_policy.full_budget_per_table = 0;
        cfg.stage_policy.full_budget_cap = 0;
        let baseline = Optimizer::with_config(&cat, cfg).optimize(&stmt).unwrap();

        let explored = opt.optimize(&stmt).unwrap();
        assert!(
            explored.plan.total_cost.total() <= baseline.plan.total_cost.total() * 1.0001,
            "exploration must not produce a worse plan: {} vs {}",
            explored.plan.total_cost.total(),
            baseline.plan.total_cost.total()
        );
    }

    #[test]
    fn sales_query_uses_one_to_two_orders_of_magnitude_more_memory_than_tpch() {
        let sales_cat = sales_schema(SalesScale::paper());
        let tpch_cat = tpch_schema(1.0);

        let sales_stmt = parse(&sales_query(16)).unwrap();
        let sales_out = Optimizer::new(&sales_cat).optimize(&sales_stmt).unwrap();

        let tpch_stmt = parse(
            "SELECT c.c_mktsegment, SUM(l.l_extendedprice) FROM lineitem l \
             JOIN orders o ON l.l_orderkey = o.o_orderkey \
             JOIN customer c ON o.o_custkey = c.c_custkey \
             JOIN nation n ON c.c_nationkey = n.n_nationkey \
             JOIN region r ON n.n_regionkey = r.r_regionkey \
             GROUP BY c.c_mktsegment",
        )
        .unwrap();
        let tpch_out = Optimizer::new(&tpch_cat).optimize(&tpch_stmt).unwrap();

        let ratio =
            sales_out.stats.peak_memory_bytes as f64 / tpch_out.stats.peak_memory_bytes as f64;
        assert!(
            ratio >= 10.0,
            "SALES compile memory should be ≥10x TPC-H (paper: 1-2 orders of magnitude), got {ratio:.1}x \
             ({} vs {} bytes)",
            sales_out.stats.peak_memory_bytes,
            tpch_out.stats.peak_memory_bytes
        );
        assert_eq!(sales_out.stats.stage, OptimizationStage::Full);
    }

    #[test]
    fn compile_memory_grows_with_join_count() {
        let cat = sales_schema(SalesScale::paper());
        let opt = Optimizer::new(&cat);
        let small = opt.optimize(&parse(&sales_query(4)).unwrap()).unwrap();
        let large = opt.optimize(&parse(&sales_query(16)).unwrap()).unwrap();
        assert!(
            large.stats.peak_memory_bytes > small.stats.peak_memory_bytes,
            "16-join query should out-consume 4-join query: {} vs {}",
            large.stats.peak_memory_bytes,
            small.stats.peak_memory_bytes
        );
    }

    #[test]
    fn governor_can_demand_best_effort_plan() {
        struct CapGovernor {
            cap: u64,
        }
        impl MemoryGovernor for CapGovernor {
            fn on_allocation(&mut self, used: u64, _peak: u64) -> GovernorDirective {
                if used > self.cap {
                    GovernorDirective::FinishWithBestPlan
                } else {
                    GovernorDirective::Continue
                }
            }
        }
        let cat = sales_schema(SalesScale::paper());
        let opt = Optimizer::new(&cat);
        let stmt = parse(&sales_query(12)).unwrap();
        let unconstrained = opt.optimize(&stmt).unwrap();
        let capped = opt
            .optimize_with_governor(&stmt, Box::new(CapGovernor { cap: 4 << 20 }), None)
            .unwrap();
        assert!(capped.stats.finished_best_effort);
        assert!(!unconstrained.stats.finished_best_effort);
        assert!(capped.stats.peak_memory_bytes < unconstrained.stats.peak_memory_bytes);
        // It still produced a usable plan covering every table.
        assert_eq!(capped.plan.scan_count(), unconstrained.plan.scan_count());
    }

    #[test]
    fn governor_abort_surfaces_as_error() {
        struct AbortGovernor;
        impl MemoryGovernor for AbortGovernor {
            fn on_allocation(&mut self, used: u64, _peak: u64) -> GovernorDirective {
                if used > 1 << 20 {
                    GovernorDirective::Abort
                } else {
                    GovernorDirective::Continue
                }
            }
        }
        let cat = sales_schema(SalesScale::paper());
        let opt = Optimizer::new(&cat);
        let stmt = parse(&sales_query(12)).unwrap();
        let err = opt
            .optimize_with_governor(&stmt, Box::new(AbortGovernor), None)
            .unwrap_err();
        assert!(matches!(err, OptimizerError::Aborted(_)));
    }

    #[test]
    fn broker_clerk_sees_compile_memory_and_is_released_at_the_end() {
        let broker = MemoryBroker::new(BrokerConfig::paper_machine());
        let clerk = broker.register(SubcomponentKind::Compilation);
        let cat = tpch_schema(1.0);
        let opt = Optimizer::new(&cat);
        let stmt =
            parse("SELECT COUNT(*) FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey")
                .unwrap();
        let out = opt
            .optimize_with_governor(&stmt, Box::new(UnlimitedGovernor), Some(clerk.clone()))
            .unwrap();
        assert!(out.stats.peak_memory_bytes > 0);
        assert_eq!(clerk.used_bytes(), 0, "all compile memory must be released");
        assert!(
            clerk.total_allocated() > 0,
            "but the broker saw the allocations"
        );
    }

    #[test]
    fn unknown_table_fails_before_any_exploration() {
        let cat = tpch_schema(1.0);
        let opt = Optimizer::new(&cat);
        let stmt = parse("SELECT x FROM missing_table").unwrap();
        assert!(matches!(
            opt.optimize(&stmt),
            Err(OptimizerError::UnknownTable(_))
        ));
    }

    #[test]
    fn compilation_is_deterministic() {
        let cat = sales_schema(SalesScale::paper());
        let opt = Optimizer::new(&cat);
        let stmt = parse(&sales_query(10)).unwrap();
        let a = opt.optimize(&stmt).unwrap();
        let b = opt.optimize(&stmt).unwrap();
        assert_eq!(a.stats.peak_memory_bytes, b.stats.peak_memory_bytes);
        assert_eq!(a.stats.memo_exprs, b.stats.memo_exprs);
        assert_eq!(a.plan.total_cost.total(), b.plan.total_cost.total());
    }
}
