//! Implementation and costing: turning logical groups into physical winners.
//!
//! This is the "optimize inputs / implement" half of a Cascades optimizer,
//! run as a bottom-up pass over the memo. Every physical alternative
//! considered charges compilation memory, just like logical alternatives do.

use crate::cardinality::CardinalityEstimator;
use crate::cost::{Cost, CostModel};
use crate::logical::LogicalOp;
use crate::memo::{GroupId, Memo, Winner};
use crate::memory::{sizes, CompilationMemory};
use crate::physical::{PhysicalOp, PhysicalPlan};
use throttledb_catalog::Catalog;

/// Context shared by the implementation pass.
pub struct ImplementationContext<'a> {
    /// The catalog (for page counts and index lookups).
    pub catalog: &'a Catalog,
    /// Cardinality estimator.
    pub estimator: CardinalityEstimator<'a>,
    /// Cost model.
    pub model: CostModel,
}

/// Compute winners for `group` and (recursively) everything it depends on.
/// Returns the winner's total cost, or `None` when the group has no
/// implementable expression (cannot happen for binder-produced plans).
pub fn optimize_group(
    memo: &mut Memo,
    group: GroupId,
    ctx: &ImplementationContext<'_>,
    mem: &mut CompilationMemory,
) -> Option<Cost> {
    if let Some(w) = &memo.group(group).winner {
        return Some(w.total_cost);
    }
    let expr_ids = memo.group(group).exprs.clone();
    let mut best: Option<Winner> = None;

    for expr_id in expr_ids {
        let (op, children) = {
            let e = memo.expr(expr_id);
            (e.op.clone(), e.children.clone())
        };
        // Optimize children first.
        let mut child_costs = Vec::with_capacity(children.len());
        let mut ok = true;
        for c in &children {
            match optimize_group(memo, *c, ctx, mem) {
                Some(cost) => child_costs.push(cost),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let child_total: Cost = child_costs.iter().fold(Cost::ZERO, |acc, c| acc + *c);

        for alternative in physical_alternatives(memo, group, &op, &children, ctx) {
            mem.charge(sizes::PHYSICAL_EXPR_BYTES);
            let (phys_op, local_cost, memory_bytes) = alternative;
            let total_cost = local_cost + child_total;
            let better = match &best {
                None => true,
                Some(b) => total_cost.total() < b.total_cost.total(),
            };
            if better {
                best = Some(Winner {
                    op: phys_op,
                    children: children.clone(),
                    local_cost,
                    total_cost,
                    memory_bytes,
                });
            }
        }
    }

    let cost = best.as_ref().map(|w| w.total_cost);
    memo.group_mut(group).winner = best;
    cost
}

/// Generate the physical alternatives for one logical expression.
/// Returns `(operator, local cost, execution memory)` triples.
fn physical_alternatives(
    memo: &Memo,
    group: GroupId,
    op: &LogicalOp,
    children: &[GroupId],
    ctx: &ImplementationContext<'_>,
) -> Vec<(PhysicalOp, Cost, u64)> {
    let model = &ctx.model;
    let out_rows = memo.group(group).rows;
    match op {
        LogicalOp::Get {
            table,
            binding,
            predicates,
        } => {
            let mut alts = Vec::new();
            let (pages, raw_rows) = match ctx.catalog.table(table) {
                Some(t) => (t.total_pages() as f64, t.row_count() as f64),
                None => (1000.0, 100_000.0),
            };
            alts.push((
                PhysicalOp::TableScan {
                    table: table.clone(),
                    binding: binding.clone(),
                    predicates: predicates.clone(),
                },
                model.table_scan(raw_rows, pages),
                0,
            ));
            // An index seek is possible when some predicate's column is the
            // leading key of an index on this table.
            if let Some(t) = ctx.catalog.table(table) {
                for pred in predicates {
                    let Some(col) = pred.column() else { continue };
                    for index in t.indexes_on(&col.column) {
                        alts.push((
                            PhysicalOp::IndexSeek {
                                table: table.clone(),
                                binding: binding.clone(),
                                index: index.name.clone(),
                                predicates: predicates.clone(),
                            },
                            model.index_seek(out_rows, pages),
                            0,
                        ));
                    }
                }
            }
            alts
        }
        LogicalOp::Join { kind, predicates } => {
            let left = memo.group(children[0]);
            let right = memo.group(children[1]);
            let mut alts = Vec::new();
            // Hash join: build on the right child.
            if !predicates.is_empty() {
                alts.push((
                    PhysicalOp::HashJoin {
                        kind: *kind,
                        predicates: predicates.clone(),
                    },
                    model.hash_join(right.rows, left.rows, out_rows),
                    model.hash_join_memory(right.rows, right.row_width),
                ));
            }
            // Nested loops: re-evaluate the right side per left row.
            let right_cost = right
                .winner
                .as_ref()
                .map(|w| w.total_cost.total())
                .unwrap_or(right.rows * model.cpu_per_row);
            alts.push((
                PhysicalOp::NestedLoopJoin {
                    kind: *kind,
                    predicates: predicates.clone(),
                },
                model.nested_loop_join(left.rows, right_cost, out_rows),
                0,
            ));
            alts
        }
        LogicalOp::Aggregate {
            group_by,
            aggregate_count,
        } => {
            let input = memo.group(children[0]);
            vec![(
                PhysicalOp::HashAggregate {
                    group_by: group_by.clone(),
                    aggregate_count: *aggregate_count,
                },
                model.hash_aggregate(input.rows, out_rows),
                model.hash_aggregate_memory(out_rows, memo.group(group).row_width),
            )]
        }
        LogicalOp::Filter { selectivity_ppm } => {
            let input = memo.group(children[0]);
            vec![(
                PhysicalOp::Filter {
                    selectivity_ppm: *selectivity_ppm,
                },
                model.streaming(input.rows),
                0,
            )]
        }
        LogicalOp::Project { column_count } => {
            let input = memo.group(children[0]);
            vec![(
                PhysicalOp::Project {
                    column_count: *column_count,
                },
                model.streaming(input.rows),
                0,
            )]
        }
        LogicalOp::Sort { key_count } => {
            let input = memo.group(children[0]);
            vec![(
                PhysicalOp::Sort {
                    key_count: *key_count,
                },
                model.sort(input.rows),
                model.sort_memory(input.rows, input.row_width),
            )]
        }
        LogicalOp::Limit { count } => {
            let input = memo.group(children[0]);
            vec![(
                PhysicalOp::Limit { count: *count },
                model.streaming(input.rows.min(*count as f64)),
                0,
            )]
        }
    }
}

/// Extract the winner of `group` as a materialized [`PhysicalPlan`] tree.
pub fn extract_plan(memo: &Memo, group: GroupId) -> Option<PhysicalPlan> {
    let g = memo.group(group);
    let w = g.winner.as_ref()?;
    let mut children = Vec::with_capacity(w.children.len());
    for c in &w.children {
        children.push(extract_plan(memo, *c)?);
    }
    Some(PhysicalPlan {
        op: w.op.clone(),
        children,
        est_rows: g.rows,
        est_row_width: g.row_width,
        local_cost: w.local_cost,
        total_cost: w.total_cost,
        memory_bytes: w.memory_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::Binder;
    use throttledb_catalog::tpch_schema;
    use throttledb_sqlparse::parse;

    fn optimize(sql: &str) -> (Memo, GroupId, PhysicalPlan) {
        let cat = tpch_schema(1.0);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        let plan = Binder::new(&cat).bind(&parse(sql).unwrap()).unwrap();
        let root = memo.insert_plan(&plan, &est, &mut mem);
        let ctx = ImplementationContext {
            catalog: &cat,
            estimator: est,
            model: CostModel::default(),
        };
        optimize_group(&mut memo, root, &ctx, &mut mem).expect("optimizable");
        let phys = extract_plan(&memo, root).expect("winner");
        (memo, root, phys)
    }

    #[test]
    fn single_table_query_becomes_a_scan() {
        let (_, _, plan) = optimize("SELECT o_orderkey FROM orders");
        assert_eq!(plan.scan_count(), 1);
        assert_eq!(plan.join_count(), 0);
        assert!(plan.total_cost.total() > 0.0);
    }

    #[test]
    fn selective_predicate_prefers_index_seek() {
        let (_, _, plan) = optimize("SELECT o_orderkey FROM orders WHERE o_orderkey = 12345");
        let mut used_seek = false;
        plan.walk(&mut |p| {
            if matches!(p.op, PhysicalOp::IndexSeek { .. }) {
                used_seek = true;
            }
        });
        assert!(
            used_seek,
            "point lookup on the PK should use an index seek:\n{}",
            plan.display_indented()
        );
    }

    #[test]
    fn unselective_scan_prefers_table_scan() {
        let (_, _, plan) = optimize("SELECT o_orderkey FROM orders WHERE o_totalprice > 1");
        let mut used_scan = false;
        plan.walk(&mut |p| {
            if matches!(p.op, PhysicalOp::TableScan { .. }) {
                used_scan = true;
            }
        });
        assert!(used_scan);
    }

    #[test]
    fn equi_join_uses_hash_join_for_large_tables() {
        let (_, _, plan) = optimize(
            "SELECT o.o_orderkey FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey",
        );
        assert_eq!(plan.join_count(), 1);
        let mut hash = false;
        plan.walk(&mut |p| {
            if matches!(p.op, PhysicalOp::HashJoin { .. }) {
                hash = true;
            }
        });
        assert!(
            hash,
            "large equi-join should hash:\n{}",
            plan.display_indented()
        );
        assert!(plan.total_memory_requirement() > 0);
    }

    #[test]
    fn aggregate_query_contains_hash_aggregate_with_memory() {
        let (_, _, plan) = optimize(
            "SELECT c.c_mktsegment, SUM(o.o_totalprice) FROM orders o \
             JOIN customer c ON o.o_custkey = c.c_custkey GROUP BY c.c_mktsegment",
        );
        let mut agg_mem = 0;
        plan.walk(&mut |p| {
            if matches!(p.op, PhysicalOp::HashAggregate { .. }) {
                agg_mem = p.memory_bytes;
            }
        });
        assert!(agg_mem > 0);
    }

    #[test]
    fn winners_are_cached_per_group() {
        let cat = tpch_schema(1.0);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        let plan = Binder::new(&cat)
            .bind(&parse("SELECT o_orderkey FROM orders").unwrap())
            .unwrap();
        let root = memo.insert_plan(&plan, &est, &mut mem);
        let ctx = ImplementationContext {
            catalog: &cat,
            estimator: est,
            model: CostModel::default(),
        };
        let c1 = optimize_group(&mut memo, root, &ctx, &mut mem).unwrap();
        let used_after_first = mem.used_bytes();
        let c2 = optimize_group(&mut memo, root, &ctx, &mut mem).unwrap();
        assert_eq!(c1.total(), c2.total());
        assert_eq!(
            mem.used_bytes(),
            used_after_first,
            "cached winner should not re-charge"
        );
    }

    #[test]
    fn costing_charges_physical_memory() {
        let cat = tpch_schema(0.1);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        let plan = Binder::new(&cat)
            .bind(&parse("SELECT o_orderkey FROM orders").unwrap())
            .unwrap();
        let root = memo.insert_plan(&plan, &est, &mut mem);
        let before = mem.used_bytes();
        let ctx = ImplementationContext {
            catalog: &cat,
            estimator: est,
            model: CostModel::default(),
        };
        optimize_group(&mut memo, root, &ctx, &mut mem).unwrap();
        assert!(mem.used_bytes() > before);
    }

    #[test]
    fn extract_plan_requires_winners() {
        let cat = tpch_schema(0.1);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        let plan = Binder::new(&cat)
            .bind(&parse("SELECT o_orderkey FROM orders").unwrap())
            .unwrap();
        let root = memo.insert_plan(&plan, &est, &mut mem);
        assert!(extract_plan(&memo, root).is_none());
    }
}
