//! Optimization stages: "dynamic optimization".
//!
//! SQL Server (and therefore the paper's evaluation, §5.2) ties the effort
//! spent optimizing a query to its estimated cost: "the time spent optimizing
//! a query is a function of the estimated cost of the query. Therefore, more
//! expensive queries receive more optimization time." We reproduce that with
//! three stages, each with a budget of transformation-rule applications —
//! the quantity that drives both compile time and compile memory.

use serde::{Deserialize, Serialize};

/// The optimization stage selected for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptimizationStage {
    /// Trivial plan: no exploration at all (point lookups, tiny queries,
    /// the "small diagnostic queries" the first gateway threshold exempts).
    Trivial,
    /// Quick search: a small transformation budget (OLTP / TPC-C-class).
    Quick,
    /// Full search: budget grows with estimated cost, up to a cap
    /// (DSS / SALES-class queries).
    Full,
}

/// The effort budget derived from a stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageBudget {
    /// Selected stage.
    pub stage: OptimizationStage,
    /// Maximum transformation-rule applications.
    pub transformation_limit: u64,
}

/// Parameters of the stage-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StagePolicy {
    /// Initial-plan cost below which the trivial stage is used.
    pub trivial_cost_threshold: f64,
    /// Initial-plan cost below which the quick stage is used.
    pub quick_cost_threshold: f64,
    /// Transformation budget for the quick stage.
    pub quick_budget: u64,
    /// Transformations granted per unit of `ln(cost)` in the full stage.
    pub full_budget_per_log_cost: f64,
    /// Extra transformations granted per table in the query (bigger join
    /// graphs legitimately need more exploration).
    pub full_budget_per_table: u64,
    /// Hard cap on the full-stage budget.
    pub full_budget_cap: u64,
}

impl Default for StagePolicy {
    fn default() -> Self {
        StagePolicy {
            trivial_cost_threshold: 0.05,
            quick_cost_threshold: 50.0,
            quick_budget: 400,
            full_budget_per_log_cost: 900.0,
            full_budget_per_table: 1_500,
            full_budget_cap: 80_000,
        }
    }
}

impl StagePolicy {
    /// Choose a stage and budget for a query whose *initial* (pre-exploration)
    /// plan has estimated cost `initial_cost` and touches `table_count` tables.
    pub fn choose(&self, initial_cost: f64, table_count: usize) -> StageBudget {
        if initial_cost <= self.trivial_cost_threshold && table_count <= 2 {
            return StageBudget {
                stage: OptimizationStage::Trivial,
                transformation_limit: 0,
            };
        }
        if initial_cost <= self.quick_cost_threshold && table_count <= 6 {
            return StageBudget {
                stage: OptimizationStage::Quick,
                transformation_limit: self.quick_budget,
            };
        }
        let from_cost = self.full_budget_per_log_cost * initial_cost.max(1.0).ln();
        let from_tables = self.full_budget_per_table * table_count as u64;
        let budget = (from_cost as u64 + from_tables).min(self.full_budget_cap);
        StageBudget {
            stage: OptimizationStage::Full,
            transformation_limit: budget.max(self.quick_budget),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_lookup_is_trivial() {
        let p = StagePolicy::default();
        let b = p.choose(0.01, 1);
        assert_eq!(b.stage, OptimizationStage::Trivial);
        assert_eq!(b.transformation_limit, 0);
    }

    #[test]
    fn moderate_query_is_quick() {
        let p = StagePolicy::default();
        let b = p.choose(10.0, 3);
        assert_eq!(b.stage, OptimizationStage::Quick);
        assert_eq!(b.transformation_limit, p.quick_budget);
    }

    #[test]
    fn expensive_query_is_full_with_cost_scaled_budget() {
        let p = StagePolicy::default();
        let cheap_dss = p.choose(1_000.0, 8);
        let huge_dss = p.choose(1_000_000.0, 20);
        assert_eq!(cheap_dss.stage, OptimizationStage::Full);
        assert_eq!(huge_dss.stage, OptimizationStage::Full);
        assert!(huge_dss.transformation_limit > cheap_dss.transformation_limit);
        assert!(huge_dss.transformation_limit <= p.full_budget_cap);
    }

    #[test]
    fn budget_is_capped() {
        let p = StagePolicy::default();
        let b = p.choose(1e30, 100);
        assert_eq!(b.transformation_limit, p.full_budget_cap);
    }

    #[test]
    fn many_tables_force_full_even_when_cost_is_moderate() {
        let p = StagePolicy::default();
        let b = p.choose(20.0, 15);
        assert_eq!(b.stage, OptimizationStage::Full);
        assert!(b.transformation_limit >= 15 * p.full_budget_per_table);
    }
}
