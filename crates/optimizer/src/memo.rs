//! The memo: groups of logically equivalent expressions.
//!
//! The memo is where compilation memory goes. Every group and every group
//! expression inserted charges the compilation's
//! [`crate::memory::CompilationMemory`] account, so the
//! number of alternatives explored maps directly to bytes — "the memory
//! consumed during optimization is closely related to the number of
//! considered alternatives."

use crate::cardinality::CardinalityEstimator;
use crate::cost::Cost;
use crate::logical::{LogicalOp, LogicalPlan};
use crate::memory::{sizes, CompilationMemory};
use crate::physical::PhysicalOp;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Identifies a memo group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupId(pub u32);

/// Identifies a logical expression within the memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ExprId(pub u32);

/// A logical expression stored in the memo: an operator over child groups.
#[derive(Debug, Clone)]
pub struct MemoExpr {
    /// This expression's id.
    pub id: ExprId,
    /// The group it belongs to.
    pub group: GroupId,
    /// The operator.
    pub op: LogicalOp,
    /// Child groups, `op.arity()` of them.
    pub children: Vec<GroupId>,
    /// Bitmask of transformation rules already applied to this expression.
    pub rules_applied: u32,
}

/// The best physical implementation found for a group.
#[derive(Debug, Clone)]
pub struct Winner {
    /// The chosen physical operator.
    pub op: PhysicalOp,
    /// Child groups (winners are looked up recursively at extraction).
    pub children: Vec<GroupId>,
    /// Cost of this operator alone.
    pub local_cost: Cost,
    /// Cost of the whole subtree.
    pub total_cost: Cost,
    /// Execution memory this operator needs.
    pub memory_bytes: u64,
}

/// A memo group: the set of logically equivalent expressions plus shared
/// logical properties (cardinality, width, covered bindings) and the winner.
#[derive(Debug, Clone)]
pub struct Group {
    /// Group id.
    pub id: GroupId,
    /// Member logical expressions.
    pub exprs: Vec<ExprId>,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated output row width in bytes.
    pub row_width: u32,
    /// Query bindings (table aliases) covered by this group.
    pub bindings: BTreeSet<String>,
    /// Best implementation found so far, if the group has been optimized.
    pub winner: Option<Winner>,
}

/// The memo structure.
#[derive(Debug, Default)]
pub struct Memo {
    groups: Vec<Group>,
    exprs: Vec<MemoExpr>,
    dedup: HashMap<(LogicalOp, Vec<GroupId>), ExprId>,
}

impl Memo {
    /// An empty memo.
    pub fn new() -> Self {
        Memo::default()
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of logical expressions across all groups.
    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }

    /// Access a group.
    pub fn group(&self, id: GroupId) -> &Group {
        &self.groups[id.0 as usize]
    }

    /// Mutable access to a group.
    pub fn group_mut(&mut self, id: GroupId) -> &mut Group {
        &mut self.groups[id.0 as usize]
    }

    /// Access an expression.
    pub fn expr(&self, id: ExprId) -> &MemoExpr {
        &self.exprs[id.0 as usize]
    }

    /// Mutable access to an expression.
    pub fn expr_mut(&mut self, id: ExprId) -> &mut MemoExpr {
        &mut self.exprs[id.0 as usize]
    }

    /// Iterate all expression ids.
    pub fn expr_ids(&self) -> impl Iterator<Item = ExprId> {
        (0..self.exprs.len() as u32).map(ExprId)
    }

    /// Iterate all group ids.
    pub fn group_ids(&self) -> impl Iterator<Item = GroupId> {
        (0..self.groups.len() as u32).map(GroupId)
    }

    /// Recursively insert a plan tree, creating one group per node (reusing
    /// existing groups when an identical expression already exists).
    /// Returns the root group.
    pub fn insert_plan(
        &mut self,
        plan: &LogicalPlan,
        est: &CardinalityEstimator<'_>,
        mem: &mut CompilationMemory,
    ) -> GroupId {
        let children: Vec<GroupId> = plan
            .children
            .iter()
            .map(|c| self.insert_plan(c, est, mem))
            .collect();
        self.insert_expr(plan.op.clone(), children, est, mem).0
    }

    /// Insert an expression; if an identical one exists, return its group.
    /// Otherwise create a new group for it. Returns the group and, when the
    /// expression was new, its id.
    pub fn insert_expr(
        &mut self,
        op: LogicalOp,
        children: Vec<GroupId>,
        est: &CardinalityEstimator<'_>,
        mem: &mut CompilationMemory,
    ) -> (GroupId, Option<ExprId>) {
        let key = (op.clone(), children.clone());
        if let Some(existing) = self.dedup.get(&key) {
            return (self.exprs[existing.0 as usize].group, None);
        }
        let group_id = GroupId(self.groups.len() as u32);
        let (rows, row_width, bindings) = self.derive_properties(&op, &children, est);
        self.groups.push(Group {
            id: group_id,
            exprs: Vec::new(),
            rows,
            row_width,
            bindings,
            winner: None,
        });
        mem.charge(sizes::GROUP_BYTES);
        let expr_id = self.push_expr(group_id, op, children, mem);
        self.dedup.insert(key, expr_id);
        (group_id, Some(expr_id))
    }

    /// Add an alternative expression to an *existing* group (the result of a
    /// transformation rule). Returns `Some(expr)` if it was new, `None` if an
    /// identical expression already existed anywhere in the memo.
    pub fn add_expr_to_group(
        &mut self,
        group: GroupId,
        op: LogicalOp,
        children: Vec<GroupId>,
        mem: &mut CompilationMemory,
    ) -> Option<ExprId> {
        let key = (op.clone(), children.clone());
        if self.dedup.contains_key(&key) {
            return None;
        }
        let expr_id = self.push_expr(group, op, children, mem);
        self.dedup.insert(key, expr_id);
        Some(expr_id)
    }

    fn push_expr(
        &mut self,
        group: GroupId,
        op: LogicalOp,
        children: Vec<GroupId>,
        mem: &mut CompilationMemory,
    ) -> ExprId {
        let expr_id = ExprId(self.exprs.len() as u32);
        self.exprs.push(MemoExpr {
            id: expr_id,
            group,
            op,
            children,
            rules_applied: 0,
        });
        self.groups[group.0 as usize].exprs.push(expr_id);
        mem.charge(sizes::LOGICAL_EXPR_BYTES);
        expr_id
    }

    /// Derive a new group's logical properties from its defining expression.
    fn derive_properties(
        &self,
        op: &LogicalOp,
        children: &[GroupId],
        est: &CardinalityEstimator<'_>,
    ) -> (f64, u32, BTreeSet<String>) {
        let child_rows: Vec<f64> = children.iter().map(|c| self.group(*c).rows).collect();
        let rows = est.operator_rows(op, &child_rows);
        let (row_width, bindings) = match op {
            LogicalOp::Get { table, binding, .. } => {
                let mut b = BTreeSet::new();
                b.insert(binding.clone());
                (est.table_row_width(table), b)
            }
            LogicalOp::Join { .. } => {
                let left = self.group(children[0]);
                let right = self.group(children[1]);
                let mut b = left.bindings.clone();
                b.extend(right.bindings.iter().cloned());
                (left.row_width + right.row_width, b)
            }
            LogicalOp::Aggregate {
                group_by,
                aggregate_count,
            } => {
                let child = self.group(children[0]);
                (
                    (group_by.len() as u32 + aggregate_count) * 8 + 16,
                    child.bindings.clone(),
                )
            }
            LogicalOp::Project { column_count } => {
                let child = self.group(children[0]);
                (
                    (*column_count * 8 + 8).min(child.row_width.max(8)),
                    child.bindings.clone(),
                )
            }
            _ => {
                let child = self.group(children[0]);
                (child.row_width, child.bindings.clone())
            }
        };
        (rows, row_width, bindings)
    }

    /// Clear all winners (used before a re-costing pass after exploration
    /// added new alternatives).
    pub fn clear_winners(&mut self) {
        for g in &mut self.groups {
            g.winner = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{ColumnRef, JoinPredicate};
    use throttledb_catalog::tpch_schema;
    use throttledb_sqlparse::JoinKind;

    fn get_op(table: &str) -> LogicalOp {
        LogicalOp::Get {
            table: table.into(),
            binding: table.into(),
            predicates: vec![],
        }
    }

    fn join_op(l: &str, lc: &str, r: &str, rc: &str) -> LogicalOp {
        LogicalOp::Join {
            kind: JoinKind::Inner,
            predicates: vec![JoinPredicate {
                left: ColumnRef::new(l, l, lc),
                right: ColumnRef::new(r, r, rc),
            }],
        }
    }

    #[test]
    fn insert_plan_creates_one_group_per_node() {
        let cat = tpch_schema(0.1);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        let plan = LogicalPlan::binary(
            join_op("orders", "o_custkey", "customer", "c_custkey"),
            LogicalPlan::leaf(get_op("orders")),
            LogicalPlan::leaf(get_op("customer")),
        );
        let root = memo.insert_plan(&plan, &est, &mut mem);
        assert_eq!(memo.group_count(), 3);
        assert_eq!(memo.expr_count(), 3);
        assert_eq!(memo.group(root).bindings.len(), 2);
        assert!(mem.used_bytes() >= 3 * sizes::GROUP_BYTES);
    }

    #[test]
    fn duplicate_expressions_are_not_reinserted() {
        let cat = tpch_schema(0.1);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        let (g1, created1) = memo.insert_expr(get_op("orders"), vec![], &est, &mut mem);
        let (g2, created2) = memo.insert_expr(get_op("orders"), vec![], &est, &mut mem);
        assert!(created1.is_some());
        assert!(created2.is_none());
        assert_eq!(g1, g2);
        assert_eq!(memo.expr_count(), 1);
    }

    #[test]
    fn add_expr_to_group_dedups_alternatives() {
        let cat = tpch_schema(0.1);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        let (go, _) = memo.insert_expr(get_op("orders"), vec![], &est, &mut mem);
        let (gc, _) = memo.insert_expr(get_op("customer"), vec![], &est, &mut mem);
        let (gj, _) = memo.insert_expr(
            join_op("orders", "o_custkey", "customer", "c_custkey"),
            vec![go, gc],
            &est,
            &mut mem,
        );
        // The commuted alternative is new...
        let alt = memo.add_expr_to_group(
            gj,
            join_op("customer", "c_custkey", "orders", "o_custkey"),
            vec![gc, go],
            &mut mem,
        );
        assert!(alt.is_some());
        // ...but adding it again is a no-op.
        let again = memo.add_expr_to_group(
            gj,
            join_op("customer", "c_custkey", "orders", "o_custkey"),
            vec![gc, go],
            &mut mem,
        );
        assert!(again.is_none());
        assert_eq!(memo.group(gj).exprs.len(), 2);
        assert_eq!(memo.group_count(), 3, "no extra group for the alternative");
    }

    #[test]
    fn group_properties_reflect_statistics() {
        let cat = tpch_schema(1.0);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        let (go, _) = memo.insert_expr(get_op("orders"), vec![], &est, &mut mem);
        let (gc, _) = memo.insert_expr(get_op("customer"), vec![], &est, &mut mem);
        assert_eq!(memo.group(go).rows, 1_500_000.0);
        assert_eq!(memo.group(gc).rows, 150_000.0);
        let (gj, _) = memo.insert_expr(
            join_op("orders", "o_custkey", "customer", "c_custkey"),
            vec![go, gc],
            &est,
            &mut mem,
        );
        let j = memo.group(gj);
        // FK->PK join keeps the orders cardinality.
        assert!((j.rows - 1_500_000.0).abs() < 1.0);
        assert_eq!(
            j.row_width,
            memo.group(go).row_width + memo.group(gc).row_width
        );
    }

    #[test]
    fn memory_is_charged_per_group_and_expr() {
        let cat = tpch_schema(0.1);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        memo.insert_expr(get_op("orders"), vec![], &est, &mut mem);
        let one = mem.used_bytes();
        assert_eq!(one, sizes::GROUP_BYTES + sizes::LOGICAL_EXPR_BYTES);
        memo.insert_expr(get_op("customer"), vec![], &est, &mut mem);
        assert_eq!(mem.used_bytes(), 2 * one);
    }

    #[test]
    fn clear_winners_resets_all_groups() {
        let cat = tpch_schema(0.1);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        let (g, _) = memo.insert_expr(get_op("orders"), vec![], &est, &mut mem);
        memo.group_mut(g).winner = Some(Winner {
            op: PhysicalOp::TableScan {
                table: "orders".into(),
                binding: "orders".into(),
                predicates: vec![],
            },
            children: vec![],
            local_cost: Cost::ZERO,
            total_cost: Cost::ZERO,
            memory_bytes: 0,
        });
        memo.clear_winners();
        assert!(memo.group(g).winner.is_none());
    }
}
