//! Physical operators and plans.

use crate::cost::Cost;
use crate::logical::{ColumnRef, JoinPredicate, Predicate};
use serde::{Deserialize, Serialize};
use throttledb_sqlparse::JoinKind;

/// A physical operator chosen by the optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhysicalOp {
    /// Full sequential scan of a table, applying pushed-down filters.
    TableScan {
        /// Catalog table name.
        table: String,
        /// Query binding.
        binding: String,
        /// Pushed-down filters.
        predicates: Vec<Predicate>,
    },
    /// Index seek using the named index.
    IndexSeek {
        /// Catalog table name.
        table: String,
        /// Query binding.
        binding: String,
        /// The index used.
        index: String,
        /// Filters applied (the leading one drives the seek).
        predicates: Vec<Predicate>,
    },
    /// Hash join; the **right** child is the build side.
    HashJoin {
        /// Join flavour.
        kind: JoinKind,
        /// Equi-join predicates.
        predicates: Vec<JoinPredicate>,
    },
    /// Nested-loop join; the right child is re-evaluated per left row.
    NestedLoopJoin {
        /// Join flavour.
        kind: JoinKind,
        /// Equi-join predicates (may be empty = cross join).
        predicates: Vec<JoinPredicate>,
    },
    /// Hash-based grouping/aggregation.
    HashAggregate {
        /// Grouping columns.
        group_by: Vec<ColumnRef>,
        /// Number of aggregate expressions.
        aggregate_count: u32,
    },
    /// Residual filter.
    Filter {
        /// Combined selectivity in millionths.
        selectivity_ppm: u32,
    },
    /// Projection.
    Project {
        /// Number of projected columns.
        column_count: u32,
    },
    /// In-memory sort.
    Sort {
        /// Number of sort keys.
        key_count: u32,
    },
    /// Row-count limit.
    Limit {
        /// Maximum rows.
        count: u64,
    },
}

impl PhysicalOp {
    /// Short operator name for EXPLAIN-style output.
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::TableScan { .. } => "TableScan",
            PhysicalOp::IndexSeek { .. } => "IndexSeek",
            PhysicalOp::HashJoin { .. } => "HashJoin",
            PhysicalOp::NestedLoopJoin { .. } => "NestedLoopJoin",
            PhysicalOp::HashAggregate { .. } => "HashAggregate",
            PhysicalOp::Filter { .. } => "Filter",
            PhysicalOp::Project { .. } => "Project",
            PhysicalOp::Sort { .. } => "Sort",
            PhysicalOp::Limit { .. } => "Limit",
        }
    }

    /// True for operators that need an execution memory grant (hash tables
    /// and sort runs).
    pub fn is_memory_consuming(&self) -> bool {
        matches!(
            self,
            PhysicalOp::HashJoin { .. }
                | PhysicalOp::HashAggregate { .. }
                | PhysicalOp::Sort { .. }
        )
    }
}

/// A physical plan tree with per-node estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalPlan {
    /// The operator at this node.
    pub op: PhysicalOp,
    /// Children (0, 1 or 2).
    pub children: Vec<PhysicalPlan>,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated output row width in bytes.
    pub est_row_width: u32,
    /// Cost of this operator alone (children not included).
    pub local_cost: Cost,
    /// Cost of the whole subtree.
    pub total_cost: Cost,
    /// Execution memory this operator needs (hash table / sort buffer).
    pub memory_bytes: u64,
}

impl PhysicalPlan {
    /// Number of operators in the plan.
    pub fn operator_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| c.operator_count())
            .sum::<usize>()
    }

    /// Sum of execution memory grants needed across the plan. The paper's
    /// workloads are hash-heavy ("almost every complex execution operation is
    /// performed via hashing"), so the grant is dominated by hash tables that
    /// can be live simultaneously in a pipeline; we sum them, which matches a
    /// conservative grant calculation.
    pub fn total_memory_requirement(&self) -> u64 {
        self.memory_bytes
            + self
                .children
                .iter()
                .map(|c| c.total_memory_requirement())
                .sum::<u64>()
    }

    /// Number of base-table access operators.
    pub fn scan_count(&self) -> usize {
        let own = usize::from(matches!(
            self.op,
            PhysicalOp::TableScan { .. } | PhysicalOp::IndexSeek { .. }
        ));
        own + self.children.iter().map(|c| c.scan_count()).sum::<usize>()
    }

    /// Number of join operators.
    pub fn join_count(&self) -> usize {
        let own = usize::from(matches!(
            self.op,
            PhysicalOp::HashJoin { .. } | PhysicalOp::NestedLoopJoin { .. }
        ));
        own + self.children.iter().map(|c| c.join_count()).sum::<usize>()
    }

    /// Tables read by the plan (catalog names, with duplicates).
    pub fn accessed_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |p| match &p.op {
            PhysicalOp::TableScan { table, .. } | PhysicalOp::IndexSeek { table, .. } => {
                out.push(table.clone());
            }
            _ => {}
        });
        out
    }

    /// Depth-first visit.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a PhysicalPlan)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    /// EXPLAIN-style indented rendering.
    pub fn display_indented(&self) -> String {
        fn rec(plan: &PhysicalPlan, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "{} (rows={:.0}, cost={:.3}, mem={}B)\n",
                plan.op.name(),
                plan.est_rows,
                plan.total_cost.total(),
                plan.memory_bytes
            ));
            for c in &plan.children {
                rec(c, depth + 1, out);
            }
        }
        let mut s = String::new();
        rec(self, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(table: &str, rows: f64) -> PhysicalPlan {
        PhysicalPlan {
            op: PhysicalOp::TableScan {
                table: table.into(),
                binding: table.into(),
                predicates: vec![],
            },
            children: vec![],
            est_rows: rows,
            est_row_width: 50,
            local_cost: Cost::new(1.0, 2.0),
            total_cost: Cost::new(1.0, 2.0),
            memory_bytes: 0,
        }
    }

    fn hash_join(left: PhysicalPlan, right: PhysicalPlan) -> PhysicalPlan {
        let rows = left.est_rows.max(right.est_rows);
        let total = Cost::new(0.5, 0.0) + left.total_cost + right.total_cost;
        PhysicalPlan {
            op: PhysicalOp::HashJoin {
                kind: JoinKind::Inner,
                predicates: vec![],
            },
            est_rows: rows,
            est_row_width: left.est_row_width + right.est_row_width,
            local_cost: Cost::new(0.5, 0.0),
            total_cost: total,
            memory_bytes: 1 << 20,
            children: vec![left, right],
        }
    }

    #[test]
    fn counts_and_memory_aggregate_over_tree() {
        let plan = hash_join(hash_join(scan("a", 100.0), scan("b", 10.0)), scan("c", 5.0));
        assert_eq!(plan.operator_count(), 5);
        assert_eq!(plan.scan_count(), 3);
        assert_eq!(plan.join_count(), 2);
        assert_eq!(plan.total_memory_requirement(), 2 << 20);
        assert_eq!(plan.accessed_tables(), vec!["a", "b", "c"]);
    }

    #[test]
    fn memory_consumers_flagged() {
        assert!(PhysicalOp::HashJoin {
            kind: JoinKind::Inner,
            predicates: vec![]
        }
        .is_memory_consuming());
        assert!(PhysicalOp::Sort { key_count: 1 }.is_memory_consuming());
        assert!(!PhysicalOp::Limit { count: 1 }.is_memory_consuming());
        assert!(!PhysicalOp::TableScan {
            table: "t".into(),
            binding: "t".into(),
            predicates: vec![]
        }
        .is_memory_consuming());
    }

    #[test]
    fn display_contains_operators_and_rows() {
        let plan = hash_join(scan("fact", 1000.0), scan("dim", 10.0));
        let s = plan.display_indented();
        assert!(s.contains("HashJoin"));
        assert!(s.contains("TableScan"));
        assert!(s.contains("rows=1000"));
    }

    #[test]
    fn total_cost_includes_children() {
        let plan = hash_join(scan("a", 1.0), scan("b", 1.0));
        assert!((plan.total_cost.total() - (0.5 + 3.0 + 3.0)).abs() < 1e-9);
    }
}
