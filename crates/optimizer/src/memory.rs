//! Byte-accurate compilation memory accounting and the governor hook.
//!
//! This module is the seam between the optimizer and the paper's throttling
//! mechanism. The optimizer charges every allocation of memo structures to a
//! [`CompilationMemory`] account; after each charge the installed
//! [`MemoryGovernor`] is consulted. Gateways (in `throttledb-core`) implement
//! the governor: when the compilation's memory crosses a monitor threshold
//! they acquire the corresponding gateway — blocking the compilation if the
//! gateway is full — and on timeout or predicted exhaustion they direct the
//! optimizer to finish with the best plan found so far or abort.

use throttledb_membroker::Clerk;

/// What the governor wants the optimizer to do after a memory change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GovernorDirective {
    /// Keep optimizing normally.
    Continue,
    /// Stop exploring and return the best complete plan found so far
    /// (§4.1: "we can return the best plan from the set of already explored
    /// plans instead of simply returning out-of-memory errors").
    FinishWithBestPlan,
    /// Abort the compilation with an error (a gateway timeout in the paper;
    /// surfaces as [`crate::OptimizerError::Aborted`]).
    Abort,
}

/// Observer of a single compilation's memory usage.
///
/// Implementations may block inside [`MemoryGovernor::on_allocation`] — that
/// is how the threaded gateway ladder slows a compilation down without the
/// optimizer knowing anything about gateways ("the only perceptible
/// difference ... is that the thread sometimes receives less time for its
/// work").
pub trait MemoryGovernor {
    /// Called after the compilation's live bytes change to `used_bytes`.
    /// `peak_bytes` is the high-water mark so far.
    fn on_allocation(&mut self, used_bytes: u64, peak_bytes: u64) -> GovernorDirective;

    /// Called once when the compilation finishes (successfully or not) with
    /// the final peak. Gateways release in reverse order here.
    fn on_completion(&mut self, peak_bytes: u64) {
        let _ = peak_bytes;
    }
}

/// A governor that never throttles: the unthrottled baseline configuration
/// in the paper's experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct UnlimitedGovernor;

impl MemoryGovernor for UnlimitedGovernor {
    fn on_allocation(&mut self, _used: u64, _peak: u64) -> GovernorDirective {
        GovernorDirective::Continue
    }
}

/// Byte-accurate account of one compilation's memory.
///
/// The account optionally forwards usage to a broker [`Clerk`] so that the
/// Memory Broker sees compilation memory in aggregate across all concurrent
/// compilations.
pub struct CompilationMemory {
    used: u64,
    peak: u64,
    clerk: Option<Clerk>,
    governor: Box<dyn MemoryGovernor + Send>,
    /// The directive that ended normal operation, if any. Once set, it is
    /// sticky: further charges keep returning it.
    pending_directive: GovernorDirective,
}

impl std::fmt::Debug for CompilationMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompilationMemory")
            .field("used", &self.used)
            .field("peak", &self.peak)
            .field("has_clerk", &self.clerk.is_some())
            .field("pending_directive", &self.pending_directive)
            .finish()
    }
}

impl CompilationMemory {
    /// An account governed by `governor`, optionally reporting to `clerk`.
    pub fn new(governor: Box<dyn MemoryGovernor + Send>, clerk: Option<Clerk>) -> Self {
        CompilationMemory {
            used: 0,
            peak: 0,
            clerk,
            governor,
            pending_directive: GovernorDirective::Continue,
        }
    }

    /// An ungoverned account (unthrottled baseline, unit tests).
    pub fn unlimited() -> Self {
        CompilationMemory::new(Box::new(UnlimitedGovernor), None)
    }

    /// Live bytes charged to this compilation.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// High-water mark of live bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Charge `bytes` to the compilation and consult the governor.
    pub fn charge(&mut self, bytes: u64) -> GovernorDirective {
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        if let Some(clerk) = &self.clerk {
            clerk.allocate(bytes);
        }
        if self.pending_directive != GovernorDirective::Continue {
            return self.pending_directive;
        }
        let directive = self.governor.on_allocation(self.used, self.peak);
        if directive != GovernorDirective::Continue {
            self.pending_directive = directive;
        }
        directive
    }

    /// Release `bytes` (e.g. transient rule bindings freed after use).
    pub fn release(&mut self, bytes: u64) {
        debug_assert!(
            self.used >= bytes,
            "compilation released more than it charged"
        );
        let bytes = bytes.min(self.used);
        self.used -= bytes;
        if let Some(clerk) = &self.clerk {
            clerk.free(bytes);
        }
    }

    /// The sticky directive, if the governor has ended normal operation.
    pub fn pending_directive(&self) -> GovernorDirective {
        self.pending_directive
    }

    /// Finish the compilation: releases all remaining live bytes from the
    /// broker clerk and notifies the governor (which releases gateways).
    /// Returns the peak usage.
    pub fn finish(&mut self) -> u64 {
        if let Some(clerk) = &self.clerk {
            clerk.free(self.used);
        }
        self.used = 0;
        self.governor.on_completion(self.peak);
        self.peak
    }
}

impl Drop for CompilationMemory {
    fn drop(&mut self) {
        // Make sure broker accounting and gateway holds never leak even if
        // the optimizer unwinds on an error path.
        if self.used > 0 || self.peak > 0 {
            if let Some(clerk) = &self.clerk {
                clerk.free(self.used);
            }
            self.used = 0;
        }
    }
}

/// Approximate sizes, in bytes, of the optimizer's internal structures.
/// These follow the magnitude of a production optimizer's memo objects
/// (a few KB per group expression once operator arguments, required
/// properties, rule state and cost vectors are included) so that the
/// *absolute* compile-memory numbers land in the paper's range: tens to
/// hundreds of MB for 15–20-join DSS queries, a few MB for TPC-H-like ones.
pub mod sizes {
    /// A memo group (logical properties, statistics, winner slots).
    pub const GROUP_BYTES: u64 = 1_536;
    /// A logical group expression (operator + child refs + rule mask).
    pub const LOGICAL_EXPR_BYTES: u64 = 2_048;
    /// A physical group expression (operator + cost vector + properties).
    pub const PHYSICAL_EXPR_BYTES: u64 = 1_280;
    /// Transient working memory charged while a transformation rule binds
    /// and fires (released afterwards).
    pub const RULE_BINDING_BYTES: u64 = 4_096;
    /// Per-query fixed overhead: parse tree copy, binding structures,
    /// statistics snapshots loaded for referenced tables.
    pub const QUERY_OVERHEAD_BYTES: u64 = 65_536;
    /// Extra overhead per referenced table (statistics snapshot, column
    /// metadata).
    pub const PER_TABLE_OVERHEAD_BYTES: u64 = 24_576;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use throttledb_membroker::{BrokerConfig, MemoryBroker, SubcomponentKind};

    struct ThresholdGovernor {
        finish_at: u64,
        abort_at: u64,
        calls: Arc<AtomicU64>,
    }

    impl MemoryGovernor for ThresholdGovernor {
        fn on_allocation(&mut self, used: u64, _peak: u64) -> GovernorDirective {
            self.calls.fetch_add(1, Ordering::Relaxed);
            if used >= self.abort_at {
                GovernorDirective::Abort
            } else if used >= self.finish_at {
                GovernorDirective::FinishWithBestPlan
            } else {
                GovernorDirective::Continue
            }
        }
    }

    #[test]
    fn unlimited_account_tracks_used_and_peak() {
        let mut m = CompilationMemory::unlimited();
        assert_eq!(m.charge(1000), GovernorDirective::Continue);
        assert_eq!(m.charge(500), GovernorDirective::Continue);
        m.release(700);
        assert_eq!(m.used_bytes(), 800);
        assert_eq!(m.peak_bytes(), 1500);
        assert_eq!(m.finish(), 1500);
        assert_eq!(m.used_bytes(), 0);
    }

    #[test]
    fn governor_is_consulted_on_every_charge() {
        let calls = Arc::new(AtomicU64::new(0));
        let mut m = CompilationMemory::new(
            Box::new(ThresholdGovernor {
                finish_at: u64::MAX,
                abort_at: u64::MAX,
                calls: calls.clone(),
            }),
            None,
        );
        for _ in 0..5 {
            m.charge(10);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn directives_are_sticky() {
        let calls = Arc::new(AtomicU64::new(0));
        let mut m = CompilationMemory::new(
            Box::new(ThresholdGovernor {
                finish_at: 100,
                abort_at: u64::MAX,
                calls: calls.clone(),
            }),
            None,
        );
        assert_eq!(m.charge(50), GovernorDirective::Continue);
        assert_eq!(m.charge(60), GovernorDirective::FinishWithBestPlan);
        // Further charges keep reporting the sticky directive without
        // re-consulting the governor.
        assert_eq!(m.charge(10), GovernorDirective::FinishWithBestPlan);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(m.pending_directive(), GovernorDirective::FinishWithBestPlan);
    }

    #[test]
    fn abort_directive_reported() {
        let mut m = CompilationMemory::new(
            Box::new(ThresholdGovernor {
                finish_at: u64::MAX,
                abort_at: 100,
                calls: Arc::new(AtomicU64::new(0)),
            }),
            None,
        );
        assert_eq!(m.charge(150), GovernorDirective::Abort);
    }

    #[test]
    fn clerk_sees_allocations_and_finish_releases_them() {
        let broker = MemoryBroker::new(BrokerConfig::with_total_memory(1 << 30));
        let clerk = broker.register(SubcomponentKind::Compilation);
        let mut m = CompilationMemory::new(Box::new(UnlimitedGovernor), Some(clerk.clone()));
        m.charge(10_000);
        m.charge(5_000);
        assert_eq!(clerk.used_bytes(), 15_000);
        m.release(5_000);
        assert_eq!(clerk.used_bytes(), 10_000);
        m.finish();
        assert_eq!(clerk.used_bytes(), 0);
    }

    #[test]
    fn drop_releases_clerk_bytes() {
        let broker = MemoryBroker::new(BrokerConfig::with_total_memory(1 << 30));
        let clerk = broker.register(SubcomponentKind::Compilation);
        {
            let mut m = CompilationMemory::new(Box::new(UnlimitedGovernor), Some(clerk.clone()));
            m.charge(42_000);
            // dropped without finish(), e.g. on an error path
        }
        assert_eq!(clerk.used_bytes(), 0);
    }

    #[test]
    fn release_saturates_in_release_builds() {
        let mut m = CompilationMemory::unlimited();
        m.charge(10);
        #[cfg(not(debug_assertions))]
        {
            m.release(100);
            assert_eq!(m.used_bytes(), 0);
        }
        #[cfg(debug_assertions)]
        {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.release(100)));
            assert!(r.is_err());
        }
    }
}
