//! The logical algebra: resolved operators the memo explores.
//!
//! The binder lowers a parsed [`SelectStatement`](throttledb_sqlparse::SelectStatement)
//! into a tree of [`LogicalOp`]s with *resolved* column references and
//! *classified* predicates (single-table filters pushed into `Get`,
//! equi-join conditions attached to `Join`). Keeping predicates in this
//! simplified, resolved form lets the cardinality estimator work directly
//! from catalog statistics without re-walking SQL expressions.

use serde::{Deserialize, Serialize};
use std::fmt;
pub use throttledb_sqlparse::JoinKind;

/// An f64 wrapper with total equality/hashing, so operators containing
/// literals can live in the memo's hash-based duplicate detection.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OrderedF64(pub f64);

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for OrderedF64 {}
impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}
impl From<f64> for OrderedF64 {
    fn from(v: f64) -> Self {
        OrderedF64(v)
    }
}

/// A fully resolved column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// The binding name used in the query (alias or table name).
    pub binding: String,
    /// The underlying catalog table name.
    pub table: String,
    /// The column name.
    pub column: String,
}

impl ColumnRef {
    /// Construct a column reference.
    pub fn new(binding: &str, table: &str, column: &str) -> Self {
        ColumnRef {
            binding: binding.to_string(),
            table: table.to_string(),
            column: column.to_string(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.binding, self.column)
    }
}

/// A resolved single-table predicate in a shape the cardinality estimator
/// understands.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// `col = literal`.
    Equals {
        /// Filtered column.
        column: ColumnRef,
        /// Literal value (strings are hashed to a number by the binder).
        value: OrderedF64,
    },
    /// `col` restricted to `[lo, hi]` (from `<`, `>`, `BETWEEN`, ...).
    Range {
        /// Filtered column.
        column: ColumnRef,
        /// Inclusive lower bound.
        lo: OrderedF64,
        /// Inclusive upper bound.
        hi: OrderedF64,
    },
    /// `col IN (...)` with `count` list members.
    InList {
        /// Filtered column.
        column: ColumnRef,
        /// Number of IN-list members.
        count: u32,
    },
    /// `col LIKE pattern` — fixed selectivity.
    Like {
        /// Filtered column.
        column: ColumnRef,
    },
    /// `col IS NULL` / `IS NOT NULL`.
    IsNull {
        /// Filtered column.
        column: ColumnRef,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// A disjunction of predicates over the same table.
    Or(Vec<Predicate>),
    /// Anything the binder could not classify; carries a guessed selectivity
    /// (stored ×1e6 to stay hashable).
    Opaque {
        /// Guessed selectivity in millionths.
        selectivity_ppm: u32,
    },
}

impl Predicate {
    /// The column this predicate filters, when it has a single target.
    pub fn column(&self) -> Option<&ColumnRef> {
        match self {
            Predicate::Equals { column, .. }
            | Predicate::Range { column, .. }
            | Predicate::InList { column, .. }
            | Predicate::Like { column }
            | Predicate::IsNull { column, .. } => Some(column),
            Predicate::Or(_) | Predicate::Opaque { .. } => None,
        }
    }
}

/// An equi-join condition `left = right` between two bindings.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinPredicate {
    /// Column from the left input.
    pub left: ColumnRef,
    /// Column from the right input.
    pub right: ColumnRef,
}

impl JoinPredicate {
    /// Flip the sides (used by the join-commutativity rule).
    pub fn flipped(&self) -> JoinPredicate {
        JoinPredicate {
            left: self.right.clone(),
            right: self.left.clone(),
        }
    }
}

impl fmt::Display for JoinPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.left, self.right)
    }
}

/// A logical operator. Children are kept outside the operator (in the plan
/// tree or in memo group references), so the same operator value can be
/// shared by both representations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicalOp {
    /// Scan of a base table with pushed-down filters. Leaf.
    Get {
        /// Catalog table name.
        table: String,
        /// Binding name (alias) in the query.
        binding: String,
        /// Filters applying only to this table.
        predicates: Vec<Predicate>,
    },
    /// Join of two inputs.
    Join {
        /// Inner/left/right.
        kind: JoinKind,
        /// Equi-join conditions.
        predicates: Vec<JoinPredicate>,
    },
    /// Residual filter (predicates that reference multiple tables but are
    /// not equi-joins, or HAVING applied above an aggregate).
    Filter {
        /// Unclassified predicates with their guessed combined selectivity
        /// in millionths.
        selectivity_ppm: u32,
    },
    /// Group-by aggregation.
    Aggregate {
        /// Grouping columns.
        group_by: Vec<ColumnRef>,
        /// Number of aggregate expressions computed.
        aggregate_count: u32,
    },
    /// Projection (column pruning); only the width matters to the model.
    Project {
        /// Number of projected expressions.
        column_count: u32,
    },
    /// Sort for ORDER BY.
    Sort {
        /// Number of sort keys.
        key_count: u32,
    },
    /// LIMIT.
    Limit {
        /// Maximum rows returned.
        count: u64,
    },
}

impl LogicalOp {
    /// Number of children this operator expects.
    pub fn arity(&self) -> usize {
        match self {
            LogicalOp::Get { .. } => 0,
            LogicalOp::Join { .. } => 2,
            LogicalOp::Filter { .. }
            | LogicalOp::Aggregate { .. }
            | LogicalOp::Project { .. }
            | LogicalOp::Sort { .. }
            | LogicalOp::Limit { .. } => 1,
        }
    }

    /// True for join operators (the target of the reordering rules).
    pub fn is_join(&self) -> bool {
        matches!(self, LogicalOp::Join { .. })
    }

    /// Short name for debugging output.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalOp::Get { .. } => "Get",
            LogicalOp::Join { .. } => "Join",
            LogicalOp::Filter { .. } => "Filter",
            LogicalOp::Aggregate { .. } => "Aggregate",
            LogicalOp::Project { .. } => "Project",
            LogicalOp::Sort { .. } => "Sort",
            LogicalOp::Limit { .. } => "Limit",
        }
    }
}

/// A logical plan tree (binder output, memo input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalPlan {
    /// The operator at this node.
    pub op: LogicalOp,
    /// Child plans, `op.arity()` of them.
    pub children: Vec<LogicalPlan>,
}

impl LogicalPlan {
    /// Create a leaf plan node.
    pub fn leaf(op: LogicalOp) -> Self {
        debug_assert_eq!(op.arity(), 0);
        LogicalPlan {
            op,
            children: Vec::new(),
        }
    }

    /// Create a unary plan node.
    pub fn unary(op: LogicalOp, child: LogicalPlan) -> Self {
        debug_assert_eq!(op.arity(), 1);
        LogicalPlan {
            op,
            children: vec![child],
        }
    }

    /// Create a binary plan node.
    pub fn binary(op: LogicalOp, left: LogicalPlan, right: LogicalPlan) -> Self {
        debug_assert_eq!(op.arity(), 2);
        LogicalPlan {
            op,
            children: vec![left, right],
        }
    }

    /// Total number of operator nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Number of `Get` leaves (base tables).
    pub fn table_count(&self) -> usize {
        match &self.op {
            LogicalOp::Get { .. } => 1,
            _ => self.children.iter().map(|c| c.table_count()).sum(),
        }
    }

    /// Number of join operators in the tree.
    pub fn join_count(&self) -> usize {
        let own = usize::from(self.op.is_join());
        own + self.children.iter().map(|c| c.join_count()).sum::<usize>()
    }

    /// Depth-first visit.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a LogicalPlan)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    /// Render an indented tree (for debugging and EXPLAIN-style output).
    pub fn display_indented(&self) -> String {
        fn rec(plan: &LogicalPlan, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            match &plan.op {
                LogicalOp::Get {
                    table,
                    binding,
                    predicates,
                } => {
                    out.push_str(&format!(
                        "Get {table} as {binding} [{} filters]\n",
                        predicates.len()
                    ));
                }
                LogicalOp::Join { kind, predicates } => {
                    out.push_str(&format!(
                        "Join {kind:?} on {} predicate(s)\n",
                        predicates.len()
                    ));
                }
                other => out.push_str(&format!("{}\n", other.name())),
            }
            for c in &plan.children {
                rec(c, depth + 1, out);
            }
        }
        let mut s = String::new();
        rec(self, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(table: &str) -> LogicalPlan {
        LogicalPlan::leaf(LogicalOp::Get {
            table: table.to_string(),
            binding: table.to_string(),
            predicates: vec![],
        })
    }

    fn join(left: LogicalPlan, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::binary(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                predicates: vec![JoinPredicate {
                    left: ColumnRef::new("a", "a", "k"),
                    right: ColumnRef::new("b", "b", "k"),
                }],
            },
            left,
            right,
        )
    }

    #[test]
    fn arity_matches_structure() {
        assert_eq!(
            LogicalOp::Get {
                table: "t".into(),
                binding: "t".into(),
                predicates: vec![]
            }
            .arity(),
            0
        );
        assert_eq!(LogicalOp::Limit { count: 1 }.arity(), 1);
        assert_eq!(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                predicates: vec![]
            }
            .arity(),
            2
        );
    }

    #[test]
    fn counts_over_a_small_tree() {
        let plan = LogicalPlan::unary(
            LogicalOp::Aggregate {
                group_by: vec![],
                aggregate_count: 1,
            },
            join(join(get("a"), get("b")), get("c")),
        );
        assert_eq!(plan.table_count(), 3);
        assert_eq!(plan.join_count(), 2);
        assert_eq!(plan.node_count(), 6);
    }

    #[test]
    fn join_predicate_flip_swaps_sides() {
        let p = JoinPredicate {
            left: ColumnRef::new("f", "fact", "k"),
            right: ColumnRef::new("d", "dim", "key"),
        };
        let q = p.flipped();
        assert_eq!(q.left, p.right);
        assert_eq!(q.right, p.left);
        assert_eq!(q.flipped(), p);
    }

    #[test]
    fn ordered_f64_equality_by_bits() {
        assert_eq!(OrderedF64(1.5), OrderedF64(1.5));
        assert_ne!(OrderedF64(1.5), OrderedF64(2.5));
        let nan1 = OrderedF64(f64::NAN);
        let nan2 = OrderedF64(f64::NAN);
        assert_eq!(nan1, nan2);
    }

    #[test]
    fn predicate_column_extraction() {
        let c = ColumnRef::new("f", "fact", "amount");
        let p = Predicate::Equals {
            column: c.clone(),
            value: 5.0.into(),
        };
        assert_eq!(p.column(), Some(&c));
        assert_eq!(
            Predicate::Opaque {
                selectivity_ppm: 100
            }
            .column(),
            None
        );
    }

    #[test]
    fn display_indented_shows_structure() {
        let plan = join(get("fact"), get("dim"));
        let s = plan.display_indented();
        assert!(s.contains("Join"));
        assert!(s.contains("Get fact"));
        assert!(s.contains("  Get dim"));
    }

    #[test]
    fn walk_visits_all_nodes() {
        let plan = join(get("a"), join(get("b"), get("c")));
        let mut names = Vec::new();
        plan.walk(&mut |p| names.push(p.op.name()));
        assert_eq!(names, vec!["Join", "Get", "Join", "Get", "Get"]);
    }
}
