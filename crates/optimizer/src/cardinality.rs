//! Cardinality estimation from catalog statistics.

use crate::logical::{ColumnRef, JoinPredicate, LogicalOp, Predicate};
use throttledb_catalog::Catalog;

/// Minimum row estimate — never let cardinalities collapse to zero, the cost
/// model divides by them.
const MIN_ROWS: f64 = 1.0;

/// Estimates operator output cardinalities against a catalog.
#[derive(Debug, Clone, Copy)]
pub struct CardinalityEstimator<'a> {
    catalog: &'a Catalog,
}

impl<'a> CardinalityEstimator<'a> {
    /// Create an estimator over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        CardinalityEstimator { catalog }
    }

    /// Number of distinct values of a column (falls back to 10% of rows).
    pub fn distinct_values(&self, column: &ColumnRef) -> f64 {
        match self.catalog.table(&column.table) {
            Some(t) => t.statistics.distinct_or_default(&column.column) as f64,
            None => 100.0,
        }
    }

    /// Base row count of a table.
    pub fn table_rows(&self, table: &str) -> f64 {
        self.catalog
            .table(table)
            .map(|t| t.row_count() as f64)
            .unwrap_or(1000.0)
            .max(MIN_ROWS)
    }

    /// Average row width of a table in bytes.
    pub fn table_row_width(&self, table: &str) -> u32 {
        self.catalog
            .table(table)
            .map(|t| t.avg_row_bytes())
            .unwrap_or(64)
    }

    /// Selectivity of one single-table predicate.
    pub fn predicate_selectivity(&self, pred: &Predicate) -> f64 {
        let sel = match pred {
            Predicate::Equals { column, value } => {
                match self
                    .catalog
                    .table(&column.table)
                    .and_then(|t| t.statistics.column(&column.column))
                {
                    Some(stats) => {
                        if stats.histogram.is_empty() {
                            stats.eq_selectivity()
                        } else {
                            // Locate the bucket containing the literal and
                            // spread its rows evenly over its distinct values.
                            let total: u64 = stats.histogram.iter().map(|b| b.rows).sum();
                            stats
                                .histogram
                                .iter()
                                .find(|b| b.lo <= value.0 && value.0 <= b.hi)
                                .map(|b| {
                                    (b.rows as f64 / total.max(1) as f64) / b.distinct.max(1) as f64
                                })
                                .unwrap_or_else(|| stats.eq_selectivity())
                        }
                    }
                    None => 0.01,
                }
            }
            Predicate::Range { column, lo, hi } => {
                match self
                    .catalog
                    .table(&column.table)
                    .and_then(|t| t.statistics.column(&column.column))
                {
                    Some(stats) => stats.range_selectivity(lo.0, hi.0),
                    None => 0.3,
                }
            }
            Predicate::InList { column, count } => {
                let eq = match self
                    .catalog
                    .table(&column.table)
                    .and_then(|t| t.statistics.column(&column.column))
                {
                    Some(stats) => stats.eq_selectivity(),
                    None => 0.01,
                };
                (eq * *count as f64).min(1.0)
            }
            Predicate::Like { .. } => 0.1,
            Predicate::IsNull { column, negated } => {
                let null_fraction = self
                    .catalog
                    .table(&column.table)
                    .and_then(|t| t.statistics.column(&column.column))
                    .map(|s| s.null_fraction)
                    .unwrap_or(0.05);
                if *negated {
                    1.0 - null_fraction
                } else {
                    null_fraction.max(0.001)
                }
            }
            Predicate::Or(parts) => {
                // Independence assumption: 1 - ∏(1 - s_i).
                let mut keep = 1.0;
                for p in parts {
                    keep *= 1.0 - self.predicate_selectivity(p);
                }
                1.0 - keep
            }
            Predicate::Opaque { selectivity_ppm } => *selectivity_ppm as f64 / 1_000_000.0,
        };
        sel.clamp(1e-9, 1.0)
    }

    /// Output rows of a `Get` (scan with pushed-down filters).
    pub fn get_rows(&self, table: &str, predicates: &[Predicate]) -> f64 {
        let mut rows = self.table_rows(table);
        for p in predicates {
            rows *= self.predicate_selectivity(p);
        }
        rows.max(MIN_ROWS)
    }

    /// Output rows of a join given child cardinalities.
    ///
    /// Per equi-join predicate the classic `|L|·|R| / max(ndv(l), ndv(r))`
    /// formula; with no predicate it is a cross product.
    pub fn join_rows(&self, left_rows: f64, right_rows: f64, predicates: &[JoinPredicate]) -> f64 {
        let mut rows = left_rows * right_rows;
        for p in predicates {
            let ndv = self
                .distinct_values(&p.left)
                .max(self.distinct_values(&p.right))
                .max(1.0);
            rows /= ndv;
        }
        rows.max(MIN_ROWS)
    }

    /// Output rows of a group-by aggregation.
    pub fn aggregate_rows(&self, input_rows: f64, group_by: &[ColumnRef]) -> f64 {
        if group_by.is_empty() {
            return 1.0;
        }
        let mut groups = 1.0;
        for c in group_by {
            groups *= self.distinct_values(c).max(1.0);
        }
        groups.min(input_rows).max(MIN_ROWS)
    }

    /// Output rows for any logical operator given its children's rows.
    pub fn operator_rows(&self, op: &LogicalOp, child_rows: &[f64]) -> f64 {
        match op {
            LogicalOp::Get {
                table, predicates, ..
            } => self.get_rows(table, predicates),
            LogicalOp::Join { predicates, .. } => {
                self.join_rows(child_rows[0], child_rows[1], predicates)
            }
            LogicalOp::Filter { selectivity_ppm } => {
                (child_rows[0] * (*selectivity_ppm as f64 / 1_000_000.0)).max(MIN_ROWS)
            }
            LogicalOp::Aggregate { group_by, .. } => self.aggregate_rows(child_rows[0], group_by),
            LogicalOp::Project { .. } => child_rows[0],
            LogicalOp::Sort { .. } => child_rows[0],
            LogicalOp::Limit { count } => (child_rows[0]).min(*count as f64).max(MIN_ROWS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::OrderedF64;
    use throttledb_catalog::tpch_schema;

    fn est(catalog: &Catalog) -> CardinalityEstimator<'_> {
        CardinalityEstimator::new(catalog)
    }

    fn col(table: &str, column: &str) -> ColumnRef {
        ColumnRef::new(table, table, column)
    }

    #[test]
    fn table_rows_come_from_catalog() {
        let cat = tpch_schema(1.0);
        let e = est(&cat);
        assert_eq!(e.table_rows("orders"), 1_500_000.0);
        assert_eq!(e.table_rows("nonexistent"), 1000.0);
    }

    #[test]
    fn equality_selectivity_uses_ndv() {
        let cat = tpch_schema(1.0);
        let e = est(&cat);
        // c_mktsegment has 5 distinct values -> rows/5.
        let rows = e.get_rows(
            "customer",
            &[Predicate::Equals {
                column: col("customer", "c_mktsegment"),
                value: OrderedF64(2.0),
            }],
        );
        let expected = 150_000.0 / 5.0;
        assert!(
            (rows - expected).abs() / expected < 0.5,
            "rows {rows} expected ~{expected}"
        );
    }

    #[test]
    fn range_selectivity_shrinks_rows() {
        let cat = tpch_schema(1.0);
        let e = est(&cat);
        let all = e.table_rows("orders");
        let filtered = e.get_rows(
            "orders",
            &[Predicate::Range {
                column: col("orders", "o_orderdate"),
                lo: OrderedF64(0.0),
                hi: OrderedF64(255.0), // ~10% of a 7-year domain
            }],
        );
        assert!(filtered < all * 0.2);
        assert!(filtered > all * 0.01);
    }

    #[test]
    fn in_list_scales_with_member_count() {
        let cat = tpch_schema(1.0);
        let e = est(&cat);
        let one = e.get_rows(
            "part",
            &[Predicate::InList {
                column: col("part", "p_size"),
                count: 1,
            }],
        );
        let five = e.get_rows(
            "part",
            &[Predicate::InList {
                column: col("part", "p_size"),
                count: 5,
            }],
        );
        assert!((five / one - 5.0).abs() < 0.1);
    }

    #[test]
    fn fk_pk_join_returns_fact_side_rows() {
        let cat = tpch_schema(1.0);
        let e = est(&cat);
        let orders = e.table_rows("orders");
        let customers = e.table_rows("customer");
        let joined = e.join_rows(
            orders,
            customers,
            &[JoinPredicate {
                left: col("orders", "o_custkey"),
                right: col("customer", "c_custkey"),
            }],
        );
        // FK->PK join keeps roughly the fact-side cardinality.
        assert!(
            (joined - orders).abs() / orders < 0.01,
            "joined {joined} orders {orders}"
        );
    }

    #[test]
    fn cross_join_multiplies() {
        let cat = tpch_schema(1.0);
        let e = est(&cat);
        assert_eq!(e.join_rows(100.0, 50.0, &[]), 5000.0);
    }

    #[test]
    fn aggregate_rows_bounded_by_input_and_groups() {
        let cat = tpch_schema(1.0);
        let e = est(&cat);
        // Grouping by a 3-value column cannot produce more than 3 rows.
        let g = e.aggregate_rows(1_000_000.0, &[col("lineitem", "l_returnflag")]);
        assert!(g <= 3.0 + 1e-9);
        // Global aggregate returns one row.
        assert_eq!(e.aggregate_rows(500.0, &[]), 1.0);
        // Grouping by a high-NDV column is capped by input rows.
        let g = e.aggregate_rows(10.0, &[col("orders", "o_orderkey")]);
        assert!(g <= 10.0);
    }

    #[test]
    fn or_combines_via_independence() {
        let cat = tpch_schema(1.0);
        let e = est(&cat);
        let p = Predicate::Or(vec![
            Predicate::Opaque {
                selectivity_ppm: 100_000,
            },
            Predicate::Opaque {
                selectivity_ppm: 100_000,
            },
        ]);
        let s = e.predicate_selectivity(&p);
        assert!((s - 0.19).abs() < 1e-9);
    }

    #[test]
    fn operator_rows_dispatches() {
        let cat = tpch_schema(1.0);
        let e = est(&cat);
        assert_eq!(
            e.operator_rows(&LogicalOp::Limit { count: 10 }, &[500.0]),
            10.0
        );
        assert_eq!(
            e.operator_rows(&LogicalOp::Project { column_count: 3 }, &[500.0]),
            500.0
        );
        let filtered = e.operator_rows(
            &LogicalOp::Filter {
                selectivity_ppm: 500_000,
            },
            &[500.0],
        );
        assert_eq!(filtered, 250.0);
    }

    #[test]
    fn selectivities_stay_in_unit_interval() {
        let cat = tpch_schema(1.0);
        let e = est(&cat);
        let preds = vec![
            Predicate::Like {
                column: col("part", "p_type"),
            },
            Predicate::IsNull {
                column: col("part", "p_size"),
                negated: false,
            },
            Predicate::IsNull {
                column: col("part", "p_size"),
                negated: true,
            },
            Predicate::Opaque {
                selectivity_ppm: 2_000_000,
            }, // over-range input
        ];
        for p in preds {
            let s = e.predicate_selectivity(&p);
            assert!(
                (0.0..=1.0).contains(&s),
                "selectivity {s} out of range for {p:?}"
            );
        }
    }
}
