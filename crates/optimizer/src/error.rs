//! Optimizer errors.

use std::fmt;

/// Errors returned by binding or optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimizerError {
    /// A table referenced by the query does not exist in the catalog.
    UnknownTable(String),
    /// A column could not be resolved against any bound table.
    UnknownColumn(String),
    /// A column name is ambiguous between two bound tables.
    AmbiguousColumn(String),
    /// The governor aborted the compilation (e.g. a gateway timeout).
    Aborted(String),
    /// The governor demanded a best-effort plan but exploration had not yet
    /// produced any complete physical plan.
    NoPlanAvailable,
    /// The query uses a feature the engine does not support.
    Unsupported(String),
}

impl fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            OptimizerError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            OptimizerError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            OptimizerError::Aborted(why) => write!(f, "compilation aborted: {why}"),
            OptimizerError::NoPlanAvailable => {
                write!(f, "compilation interrupted before any plan was available")
            }
            OptimizerError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for OptimizerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_subject() {
        assert!(OptimizerError::UnknownTable("foo".into())
            .to_string()
            .contains("foo"));
        assert!(OptimizerError::UnknownColumn("bar".into())
            .to_string()
            .contains("bar"));
        assert!(OptimizerError::Aborted("timeout".into())
            .to_string()
            .contains("timeout"));
        assert!(OptimizerError::NoPlanAvailable
            .to_string()
            .contains("interrupted"));
    }
}
