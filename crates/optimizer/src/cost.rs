//! The cost model.
//!
//! Costs are expressed in abstract "optimizer seconds" roughly calibrated to
//! the paper's evaluation machine (8×700 MHz CPUs, single RAID-0 array):
//! sequential I/O ≈ 60 MB/s, random page reads ≈ 5 ms, and a per-row CPU
//! charge. The absolute values matter less than the relative ones — they
//! drive join-order and join-algorithm choices, the optimization *stage*
//! (and therefore compile memory), the simulated execution time, and the
//! execution memory grant.

use serde::{Deserialize, Serialize};
use std::ops::Add;

/// Cost components of a (sub)plan.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Cost {
    /// CPU seconds.
    pub cpu: f64,
    /// I/O seconds.
    pub io: f64,
}

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost { cpu: 0.0, io: 0.0 };

    /// Construct from components.
    pub fn new(cpu: f64, io: f64) -> Self {
        Cost { cpu, io }
    }

    /// Combined scalar used to compare plans.
    pub fn total(&self) -> f64 {
        self.cpu + self.io
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            cpu: self.cpu + rhs.cpu,
            io: self.io + rhs.io,
        }
    }
}

/// Tunable constants of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Seconds of CPU to process one row through one operator.
    pub cpu_per_row: f64,
    /// Extra CPU per row for hashing (build or probe).
    pub cpu_per_hash: f64,
    /// Extra CPU per row comparison in sorts (multiplied by log2 n).
    pub cpu_per_compare: f64,
    /// Seconds to sequentially read one 8 KiB page.
    pub io_seq_page: f64,
    /// Seconds for one random page read (index seek).
    pub io_random_page: f64,
    /// Bytes of execution memory per hash-table entry beyond the row itself.
    pub hash_entry_overhead: u64,
    /// Bytes of execution memory per sort-run entry beyond the row itself.
    pub sort_entry_overhead: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_per_row: 1.2e-7,
            cpu_per_hash: 2.5e-7,
            cpu_per_compare: 0.4e-7,
            io_seq_page: 8_192.0 / 60.0e6, // 60 MB/s sequential
            io_random_page: 5.0e-3,        // 5 ms random read
            hash_entry_overhead: 48,
            sort_entry_overhead: 24,
        }
    }
}

impl CostModel {
    /// Cost of a full sequential scan of `pages` pages producing `rows` rows.
    pub fn table_scan(&self, rows: f64, pages: f64) -> Cost {
        Cost::new(rows * self.cpu_per_row, pages * self.io_seq_page)
    }

    /// Cost of an index seek returning `output_rows` rows out of a table
    /// with `table_rows` rows (random I/O per qualifying row, capped by the
    /// table's page count — repeated hits land in the buffer pool).
    pub fn index_seek(&self, output_rows: f64, table_pages: f64) -> Cost {
        let page_reads = output_rows.min(table_pages).max(1.0);
        Cost::new(
            output_rows * (self.cpu_per_row + self.cpu_per_compare * 20.0),
            page_reads * self.io_random_page,
        )
    }

    /// Cost of a hash join: build a table over `build_rows`, probe with
    /// `probe_rows`, emitting `output_rows`.
    pub fn hash_join(&self, build_rows: f64, probe_rows: f64, output_rows: f64) -> Cost {
        Cost::new(
            build_rows * self.cpu_per_hash
                + probe_rows * self.cpu_per_hash
                + output_rows * self.cpu_per_row,
            0.0,
        )
    }

    /// Cost of a nested-loop join where the inner side costs
    /// `inner_cost_total` to produce once and is re-evaluated per outer row.
    pub fn nested_loop_join(
        &self,
        outer_rows: f64,
        inner_cost_total: f64,
        output_rows: f64,
    ) -> Cost {
        Cost::new(
            outer_rows * self.cpu_per_row + output_rows * self.cpu_per_row,
            // Re-scanning the inner side is charged as CPU+IO folded into one
            // number; keep it in the CPU bucket to avoid double counting I/O
            // already paid by the child (the child cost is added separately
            // exactly once by the caller; the repeats are charged here).
            0.0,
        ) + Cost::new(outer_rows.max(1.0).log2().max(1.0) * inner_cost_total, 0.0)
    }

    /// Cost of a hash aggregate over `input_rows` producing `groups` groups.
    pub fn hash_aggregate(&self, input_rows: f64, groups: f64) -> Cost {
        Cost::new(
            input_rows * self.cpu_per_hash + groups * self.cpu_per_row,
            0.0,
        )
    }

    /// Cost of sorting `rows` rows.
    pub fn sort(&self, rows: f64) -> Cost {
        let n = rows.max(2.0);
        Cost::new(
            n * n.log2() * self.cpu_per_compare + n * self.cpu_per_row,
            0.0,
        )
    }

    /// Cost of a streaming operator (filter/project/limit) over `rows` rows.
    pub fn streaming(&self, rows: f64) -> Cost {
        Cost::new(rows * self.cpu_per_row, 0.0)
    }

    /// Execution memory (bytes) a hash join's build side needs.
    pub fn hash_join_memory(&self, build_rows: f64, build_row_width: u32) -> u64 {
        (build_rows.max(1.0) * (build_row_width as f64 + self.hash_entry_overhead as f64)) as u64
    }

    /// Execution memory (bytes) a hash aggregate needs.
    pub fn hash_aggregate_memory(&self, groups: f64, row_width: u32) -> u64 {
        (groups.max(1.0) * (row_width as f64 + self.hash_entry_overhead as f64)) as u64
    }

    /// Execution memory (bytes) a sort needs.
    pub fn sort_memory(&self, rows: f64, row_width: u32) -> u64 {
        (rows.max(1.0) * (row_width as f64 + self.sort_entry_overhead as f64)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn cost_addition_and_total() {
        let a = Cost::new(1.0, 2.0);
        let b = Cost::new(0.5, 0.25);
        let c = a + b;
        assert_eq!(c.cpu, 1.5);
        assert_eq!(c.io, 2.25);
        assert_eq!(c.total(), 3.75);
        assert_eq!(Cost::ZERO.total(), 0.0);
    }

    #[test]
    fn big_scans_cost_more_than_small_scans() {
        let small = m().table_scan(1_000.0, 100.0);
        let big = m().table_scan(1_000_000.0, 100_000.0);
        assert!(big.total() > 100.0 * small.total());
    }

    #[test]
    fn index_seek_beats_scan_for_selective_predicates() {
        let model = m();
        // 1M-row, 100k-page table, predicate returns 100 rows.
        let seek = model.index_seek(100.0, 100_000.0);
        let scan = model.table_scan(1_000_000.0, 100_000.0);
        assert!(seek.total() < scan.total() / 10.0);
    }

    #[test]
    fn scan_beats_index_seek_for_unselective_predicates() {
        let model = m();
        let seek = model.index_seek(500_000.0, 100_000.0);
        let scan = model.table_scan(1_000_000.0, 100_000.0);
        assert!(scan.total() < seek.total());
    }

    #[test]
    fn hash_join_beats_nested_loops_for_large_inputs() {
        let model = m();
        let hj = model.hash_join(1_000_000.0, 5_000_000.0, 5_000_000.0);
        let inner_cost = model.table_scan(1_000_000.0, 50_000.0).total();
        let nl = model.nested_loop_join(5_000_000.0, inner_cost, 5_000_000.0);
        assert!(hj.total() < nl.total() / 10.0);
    }

    #[test]
    fn nested_loops_fine_for_tiny_inputs() {
        let model = m();
        let inner_cost = model.index_seek(1.0, 100.0).total();
        let nl = model.nested_loop_join(10.0, inner_cost, 10.0);
        assert!(
            nl.total() < 1.0,
            "tiny NL join should be cheap, got {}",
            nl.total()
        );
    }

    #[test]
    fn memory_estimates_scale_with_rows_and_width() {
        let model = m();
        let small = model.hash_join_memory(1_000.0, 50);
        let big = model.hash_join_memory(1_000_000.0, 50);
        assert_eq!(big / small, 1000);
        assert!(model.sort_memory(1_000.0, 100) > model.sort_memory(1_000.0, 10));
        assert!(model.hash_aggregate_memory(10.0, 40) < model.hash_aggregate_memory(10_000.0, 40));
    }

    #[test]
    fn sort_is_superlinear() {
        let model = m();
        let s1 = model.sort(10_000.0).total();
        let s2 = model.sort(100_000.0).total();
        assert!(s2 > 10.0 * s1);
    }
}
