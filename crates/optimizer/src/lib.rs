//! # throttledb-optimizer
//!
//! A Cascades-style, memo-based query optimizer built from scratch for the
//! `throttledb` reproduction of *"Managing Query Compilation Memory
//! Consumption to Improve DBMS Throughput"* (CIDR 2007).
//!
//! The paper's subject is the **memory consumed while optimizing**: "many
//! modern optimizers consider a number of functionally equivalent
//! alternatives ... this entire process uses memory to store the different
//! alternatives for the duration of the optimization process. The memory
//! consumed during optimization is closely related to the number of
//! considered alternatives." This crate therefore makes that memory a
//! first-class, byte-accurate quantity:
//!
//! * every memo group, group expression, rule binding and physical
//!   alternative is charged to a [`memory::CompilationMemory`] account;
//! * the account can forward its running total to a
//!   [`throttledb_membroker::Clerk`], so the Memory Broker sees compilation
//!   alongside the buffer pool and execution grants;
//! * a [`memory::MemoryGovernor`] callback observes every change and can
//!   pause (in threaded deployments, by blocking inside the callback), demand
//!   the *best plan so far*, or abort the compilation — which is exactly the
//!   hook the gateway ladder in `throttledb-core` plugs into.
//!
//! Optimization is *staged* ("dynamic optimization" in the paper's terms): a
//! cheap query gets a trivial or quick pass, an expensive DSS query gets a
//! full exploration whose transformation budget grows with its estimated
//! cost — so SALES-style 15–20-join queries naturally consume one to two
//! orders of magnitude more compilation memory than TPC-H-style queries, as
//! §5.1 reports.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binder;
pub mod cardinality;
pub mod cost;
pub mod error;
pub mod implementation;
pub mod logical;
pub mod memo;
pub mod memory;
pub mod physical;
pub mod rules;
pub mod search;
pub mod stage;

pub use binder::Binder;
pub use error::OptimizerError;
pub use memory::{CompilationMemory, GovernorDirective, MemoryGovernor, UnlimitedGovernor};
pub use physical::{PhysicalOp, PhysicalPlan};
pub use search::{OptimizationOutcome, Optimizer, OptimizerConfig};
pub use stage::OptimizationStage;
