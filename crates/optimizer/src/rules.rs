//! Transformation rules: the generators of alternatives (and therefore of
//! compilation memory).
//!
//! Two rules are enough to enumerate the bushy join-order space when applied
//! to a fixed point: **join commutativity** and **left associativity**
//! (`(A ⋈ B) ⋈ C → A ⋈ (B ⋈ C)`). Both are restricted to inner equi-joins
//! and never introduce cross products — matching the pruning every
//! production optimizer applies. The number of rule applications is bounded
//! by the stage budget in [`crate::search`], which is how "dynamic
//! optimization" limits effort (and memory) for cheap queries.

use crate::cardinality::CardinalityEstimator;
use crate::logical::{JoinPredicate, LogicalOp};
use crate::memo::{ExprId, GroupId, Memo};
use crate::memory::{sizes, CompilationMemory};
use throttledb_sqlparse::JoinKind;

/// The transformation rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `A ⋈ B → B ⋈ A`.
    JoinCommute,
    /// `(A ⋈ B) ⋈ C → A ⋈ (B ⋈ C)`.
    JoinAssociateLeft,
}

impl Rule {
    /// All rules, in application order.
    pub const ALL: [Rule; 2] = [Rule::JoinCommute, Rule::JoinAssociateLeft];

    /// Bit used in [`crate::memo::MemoExpr::rules_applied`].
    pub fn mask(self) -> u32 {
        match self {
            Rule::JoinCommute => 1 << 0,
            Rule::JoinAssociateLeft => 1 << 1,
        }
    }

    /// Human-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::JoinCommute => "JoinCommute",
            Rule::JoinAssociateLeft => "JoinAssociateLeft",
        }
    }
}

/// Result of applying one rule to one expression.
#[derive(Debug, Default)]
pub struct RuleOutcome {
    /// Newly created expressions (already inserted into the memo).
    pub new_exprs: Vec<ExprId>,
    /// Number of substitute expressions generated, including duplicates that
    /// the memo rejected. This is the "transformations attempted" count the
    /// stage budget limits.
    pub attempted: u64,
}

/// Apply `rule` to `expr_id`, inserting any new alternatives into the memo.
///
/// Transient rule-binding memory is charged and released around the
/// application, as a production optimizer's rule bindings would be.
pub fn apply_rule(
    rule: Rule,
    memo: &mut Memo,
    expr_id: ExprId,
    est: &CardinalityEstimator<'_>,
    mem: &mut CompilationMemory,
) -> RuleOutcome {
    // Mark applied regardless of outcome so the search never retries.
    {
        let expr = memo.expr_mut(expr_id);
        if expr.rules_applied & rule.mask() != 0 {
            return RuleOutcome::default();
        }
        expr.rules_applied |= rule.mask();
    }

    mem.charge(sizes::RULE_BINDING_BYTES);
    let outcome = match rule {
        Rule::JoinCommute => apply_commute(memo, expr_id, mem),
        Rule::JoinAssociateLeft => apply_associate_left(memo, expr_id, est, mem),
    };
    mem.release(sizes::RULE_BINDING_BYTES);
    outcome
}

/// True when the expression is an inner join with at least one equi-predicate.
fn as_inner_join(memo: &Memo, expr_id: ExprId) -> Option<(Vec<JoinPredicate>, GroupId, GroupId)> {
    let expr = memo.expr(expr_id);
    match &expr.op {
        LogicalOp::Join {
            kind: JoinKind::Inner,
            predicates,
        } if !predicates.is_empty() => {
            Some((predicates.clone(), expr.children[0], expr.children[1]))
        }
        _ => None,
    }
}

fn apply_commute(memo: &mut Memo, expr_id: ExprId, mem: &mut CompilationMemory) -> RuleOutcome {
    let mut outcome = RuleOutcome::default();
    let Some((predicates, left, right)) = as_inner_join(memo, expr_id) else {
        return outcome;
    };
    let group = memo.expr(expr_id).group;
    let flipped: Vec<JoinPredicate> = predicates.iter().map(JoinPredicate::flipped).collect();
    outcome.attempted += 1;
    if let Some(new_expr) = memo.add_expr_to_group(
        group,
        LogicalOp::Join {
            kind: JoinKind::Inner,
            predicates: flipped,
        },
        vec![right, left],
        mem,
    ) {
        // The commuted form has, by construction, the same children swapped;
        // applying commute to it again would just regenerate the original.
        memo.expr_mut(new_expr).rules_applied |= Rule::JoinCommute.mask();
        outcome.new_exprs.push(new_expr);
    }
    outcome
}

fn apply_associate_left(
    memo: &mut Memo,
    expr_id: ExprId,
    est: &CardinalityEstimator<'_>,
    mem: &mut CompilationMemory,
) -> RuleOutcome {
    let mut outcome = RuleOutcome::default();
    let Some((top_preds, left_group, right_group)) = as_inner_join(memo, expr_id) else {
        return outcome;
    };
    let top_group = memo.expr(expr_id).group;

    // For every inner-join expression (A ⋈ B) in the left child group,
    // produce A ⋈ (B ⋈ C) where C is the right child.
    let left_exprs: Vec<ExprId> = memo.group(left_group).exprs.clone();
    for inner_id in left_exprs {
        let Some((inner_preds, a_group, b_group)) = as_inner_join(memo, inner_id) else {
            continue;
        };
        let a_bindings = memo.group(a_group).bindings.clone();
        let b_bindings = memo.group(b_group).bindings.clone();

        // Split the top predicates: those touching B go into the new inner
        // join (B ⋈ C); those touching only A stay at the new top join.
        let mut bc_preds: Vec<JoinPredicate> = Vec::new();
        let mut top_remaining: Vec<JoinPredicate> = Vec::new();
        for p in &top_preds {
            // Top preds connect (A∪B) with C; the left column is on the A∪B side.
            let left_binding = &p.left.binding;
            if b_bindings.contains(left_binding) {
                bc_preds.push(p.clone());
            } else if a_bindings.contains(left_binding) {
                top_remaining.push(p.clone());
            } else {
                // Orientation was flipped; check the right side.
                if b_bindings.contains(&p.right.binding) {
                    bc_preds.push(p.flipped());
                } else {
                    top_remaining.push(p.clone());
                }
            }
        }
        // Refuse to create a cross product for (B ⋈ C).
        if bc_preds.is_empty() {
            continue;
        }
        // The new top join connects A with (B ⋈ C) through the old inner
        // predicates (A–B) plus any remaining top predicates (A–C).
        let mut new_top_preds = inner_preds.clone();
        new_top_preds.extend(top_remaining);
        if new_top_preds.is_empty() {
            continue;
        }

        outcome.attempted += 1;
        // Create (or find) the group for (B ⋈ C).
        let (bc_group, bc_expr) = memo.insert_expr(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                predicates: bc_preds,
            },
            vec![b_group, right_group],
            est,
            mem,
        );
        if let Some(bc_expr) = bc_expr {
            // The intermediate join is itself a new expression that further
            // rules (commute, associate) must get a chance to expand.
            outcome.new_exprs.push(bc_expr);
        }
        // Add A ⋈ (B ⋈ C) as an alternative of the top group.
        if let Some(new_expr) = memo.add_expr_to_group(
            top_group,
            LogicalOp::Join {
                kind: JoinKind::Inner,
                predicates: new_top_preds,
            },
            vec![a_group, bc_group],
            mem,
        ) {
            outcome.new_exprs.push(new_expr);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::Binder;
    use crate::logical::LogicalPlan;
    use throttledb_catalog::{tpch_schema, Catalog};
    use throttledb_sqlparse::parse;

    fn bind(catalog: &Catalog, sql: &str) -> LogicalPlan {
        Binder::new(catalog).bind(&parse(sql).unwrap()).unwrap()
    }

    /// Find the topmost join group in a freshly inserted plan.
    fn top_join_expr(memo: &Memo) -> ExprId {
        memo.expr_ids()
            .filter(|e| memo.expr(*e).op.is_join())
            .last()
            .expect("plan contains a join")
    }

    #[test]
    fn commute_adds_flipped_alternative() {
        let cat = tpch_schema(0.1);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        let plan = bind(
            &cat,
            "SELECT o.o_orderkey FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey",
        );
        memo.insert_plan(&plan, &est, &mut mem);
        let join = top_join_expr(&memo);
        let group = memo.expr(join).group;
        let before = memo.group(group).exprs.len();
        let out = apply_rule(Rule::JoinCommute, &mut memo, join, &est, &mut mem);
        assert_eq!(out.new_exprs.len(), 1);
        assert_eq!(memo.group(group).exprs.len(), before + 1);
        // Children are swapped in the new expression.
        let new = memo.expr(out.new_exprs[0]);
        let old = memo.expr(join);
        assert_eq!(new.children[0], old.children[1]);
        assert_eq!(new.children[1], old.children[0]);
    }

    #[test]
    fn commute_is_applied_at_most_once_per_expr() {
        let cat = tpch_schema(0.1);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        let plan = bind(
            &cat,
            "SELECT o.o_orderkey FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey",
        );
        memo.insert_plan(&plan, &est, &mut mem);
        let join = top_join_expr(&memo);
        let first = apply_rule(Rule::JoinCommute, &mut memo, join, &est, &mut mem);
        let second = apply_rule(Rule::JoinCommute, &mut memo, join, &est, &mut mem);
        assert_eq!(first.new_exprs.len(), 1);
        assert!(second.new_exprs.is_empty());
        // And the commuted expression never regenerates the original.
        let third = apply_rule(
            Rule::JoinCommute,
            &mut memo,
            first.new_exprs[0],
            &est,
            &mut mem,
        );
        assert!(third.new_exprs.is_empty());
    }

    #[test]
    fn commute_ignores_non_joins() {
        let cat = tpch_schema(0.1);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        let plan = bind(&cat, "SELECT o_orderkey FROM orders");
        memo.insert_plan(&plan, &est, &mut mem);
        let get = memo
            .expr_ids()
            .find(|e| matches!(memo.expr(*e).op, LogicalOp::Get { .. }))
            .unwrap();
        let out = apply_rule(Rule::JoinCommute, &mut memo, get, &est, &mut mem);
        assert!(out.new_exprs.is_empty());
    }

    #[test]
    fn associate_left_creates_new_intermediate_group() {
        let cat = tpch_schema(0.1);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        // ((lineitem ⋈ orders) ⋈ customer) — associating gives
        // lineitem ⋈ (orders ⋈ customer).
        let plan = bind(
            &cat,
            "SELECT l.l_id FROM lineitem l \
             JOIN orders o ON l.l_orderkey = o.o_orderkey \
             JOIN customer c ON o.o_custkey = c.c_custkey",
        );
        memo.insert_plan(&plan, &est, &mut mem);
        let top = top_join_expr(&memo);
        let groups_before = memo.group_count();
        let out = apply_rule(Rule::JoinAssociateLeft, &mut memo, top, &est, &mut mem);
        // Two new expressions: the intermediate (orders ⋈ customer) join and
        // the re-associated alternative in the top group.
        assert_eq!(out.new_exprs.len(), 2);
        assert_eq!(
            memo.group_count(),
            groups_before + 1,
            "a new (orders ⋈ customer) group"
        );
        // The re-associated alternative lives in the same group as the original top join.
        let top_group = memo.expr(top).group;
        assert!(out
            .new_exprs
            .iter()
            .any(|e| memo.expr(*e).group == top_group));
        // The intermediate join lives in its own (new) group.
        assert!(out
            .new_exprs
            .iter()
            .any(|e| memo.expr(*e).group != top_group));
    }

    #[test]
    fn associate_left_refuses_cross_products() {
        let cat = tpch_schema(0.1);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        // customer joins orders, then lineitem joins on the *orders* key:
        // associating would pair lineitem with customer directly -> cross
        // product -> must be refused... construct the case where the top
        // predicate touches only A (customer side).
        let plan = bind(
            &cat,
            "SELECT c.c_custkey FROM customer c \
             JOIN orders o ON c.c_custkey = o.o_custkey \
             JOIN nation n ON c.c_nationkey = n.n_nationkey",
        );
        memo.insert_plan(&plan, &est, &mut mem);
        let top = top_join_expr(&memo);
        let groups_before = memo.group_count();
        let out = apply_rule(Rule::JoinAssociateLeft, &mut memo, top, &est, &mut mem);
        // The only association would build (orders ⋈ nation) with no
        // predicate — a cross product — so nothing should be generated.
        assert!(out.new_exprs.is_empty());
        assert_eq!(memo.group_count(), groups_before);
    }

    #[test]
    fn rule_masks_are_distinct() {
        assert_ne!(Rule::JoinCommute.mask(), Rule::JoinAssociateLeft.mask());
        assert_eq!(Rule::ALL.len(), 2);
        assert_eq!(Rule::JoinCommute.name(), "JoinCommute");
    }

    #[test]
    fn transient_rule_memory_is_released() {
        let cat = tpch_schema(0.1);
        let est = CardinalityEstimator::new(&cat);
        let mut mem = CompilationMemory::unlimited();
        let mut memo = Memo::new();
        let plan = bind(
            &cat,
            "SELECT o.o_orderkey FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey",
        );
        memo.insert_plan(&plan, &est, &mut mem);
        let before_used = mem.used_bytes();
        let join = top_join_expr(&memo);
        apply_rule(Rule::JoinCommute, &mut memo, join, &est, &mut mem);
        // Live memory grew only by the new expression, not the binding scratch.
        assert_eq!(mem.used_bytes(), before_used + sizes::LOGICAL_EXPR_BYTES);
        // But the peak saw the transient binding.
        assert!(mem.peak_bytes() >= before_used + sizes::RULE_BINDING_BYTES);
    }
}
