//! Satellite tests for the broker's prediction machinery: the
//! `TrendEstimator` on rising, flat and falling sample series, and the
//! pressure/notification thresholds of the full `MemoryBroker` loop.

use throttledb_membroker::trend::TrendEstimator;
use throttledb_membroker::{
    BrokerConfig, MemoryBroker, NotificationKind, PressureLevel, SubcomponentKind,
};
use throttledb_sim::{SimDuration, SimTime};

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

fn t(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

#[test]
fn rising_series_predicts_above_current_proportionally_to_horizon() {
    let mut e = TrendEstimator::new(16);
    // 2 MB/s ramp, the shape of a DSS compilation filling its memo.
    for s in 0..10 {
        e.record(t(s), s * 2 * MB);
    }
    let current = 9 * 2 * MB;
    let short = e.predict(SimDuration::from_secs(5));
    let long = e.predict(SimDuration::from_secs(20));
    assert!(short > current, "rising trend must predict growth");
    assert!(long > short, "longer horizon must predict more");
    // Slope is exactly 2 MB/s, so 5 s ahead is current + ~10 MB.
    let expected = current + 10 * MB;
    let err = short.abs_diff(expected);
    assert!(
        err < MB / 4,
        "prediction {short} should be within 256 KiB of {expected}"
    );
}

#[test]
fn flat_series_predicts_current_even_with_noise() {
    let mut e = TrendEstimator::new(16);
    // Flat 100 MB with ±1 MB of sampling noise: the fitted slope is tiny and
    // the clamp keeps the prediction at current usage, not below.
    let noise: [i64; 8] = [0, 1, -1, 0, 1, -1, 1, -1];
    for (s, n) in noise.iter().enumerate() {
        e.record(t(s as u64), (100 * MB as i64 + n * MB as i64) as u64);
    }
    let (_, current) = e.latest().unwrap();
    let p = e.predict(SimDuration::from_secs(60));
    assert!(
        p >= current && p < current + 30 * MB,
        "flat series must predict ~current ({current}), got {p}"
    );
}

#[test]
fn falling_series_never_predicts_below_current() {
    let mut e = TrendEstimator::new(16);
    // A shrinking buffer pool: the broker must stay conservative and not
    // bank on memory coming back on its own.
    for s in 0..10 {
        e.record(t(s), (500 - 40 * s) * MB);
    }
    assert!(e.slope_bytes_per_sec() < 0.0);
    let (_, current) = e.latest().unwrap();
    for horizon in [1u64, 10, 100] {
        assert_eq!(
            e.predict(SimDuration::from_secs(horizon)),
            current,
            "downward trend clamps to current at every horizon"
        );
    }
}

#[test]
fn trend_window_forgets_an_old_spike() {
    let mut e = TrendEstimator::new(4);
    // A spike far in the past followed by a long flat tail: once the spike
    // leaves the window the prediction must settle back to the flat level.
    e.record(t(0), 800 * MB);
    for s in 1..10 {
        e.record(t(s), 50 * MB);
    }
    assert_eq!(e.len(), 4);
    assert_eq!(
        e.predict(SimDuration::from_secs(30)),
        50 * MB,
        "old spike must age out of the sliding window"
    );
}

#[test]
fn pressure_rises_with_utilization_and_notifications_follow() {
    // 1 GiB machine; thresholds default to medium/high fractions of the
    // brokered (post-reserve) budget.
    let broker = MemoryBroker::new(BrokerConfig::with_total_memory(GB));
    let pool = broker.register(SubcomponentKind::BufferPool);
    let compile = broker.register(SubcomponentKind::Compilation);

    // Far below the medium threshold: no pressure, and every decision (if
    // any) says Grow — "the system behaves as if the Memory Broker was not
    // there".
    pool.allocate(100 * MB);
    let decisions = broker.recalculate(t(1));
    assert_eq!(broker.pressure(), PressureLevel::Low);
    assert!(decisions
        .iter()
        .all(|d| d.notification.kind == NotificationKind::Grow));

    // Push past the high-pressure threshold: the broker must constrain and
    // at least one over-target clerk must be told to stop growing.
    pool.allocate(700 * MB);
    compile.allocate(150 * MB);
    broker.recalculate(t(2));
    compile.allocate(60 * MB);
    let decisions = broker.recalculate(t(3));
    assert_eq!(broker.pressure(), PressureLevel::High);
    assert!(broker.pressure().is_constrained());
    assert!(
        decisions
            .iter()
            .any(|d| d.notification.kind != NotificationKind::Grow),
        "under high pressure someone must be told Steady or Shrink: {decisions:?}"
    );

    // Shrink notifications must carry a target and a positive release size.
    for d in &decisions {
        if d.notification.kind == NotificationKind::Shrink {
            assert!(d.notification.target_bytes.is_some());
            assert!(d.notification.release_needed() > 0);
            assert!(!d.notification.may_allocate());
        }
    }
}

#[test]
fn releasing_memory_drops_pressure_back_to_low() {
    let broker = MemoryBroker::new(BrokerConfig::with_total_memory(GB));
    let pool = broker.register(SubcomponentKind::BufferPool);
    pool.allocate(850 * MB);
    broker.recalculate(t(1));
    assert!(broker.pressure().is_constrained());

    pool.free(800 * MB);
    broker.recalculate(t(2));
    assert_eq!(
        broker.pressure(),
        PressureLevel::Low,
        "pressure must clear once memory is returned"
    );
}

#[test]
fn predicted_growth_raises_pressure_before_usage_does() {
    // The paper's broker acts on *predicted* usage: a compilation ramping
    // fast should draw notifications even though current usage alone is
    // still below the high threshold.
    let broker = MemoryBroker::new(BrokerConfig::with_total_memory(GB));
    let pool = broker.register(SubcomponentKind::BufferPool);
    let compile = broker.register(SubcomponentKind::Compilation);
    pool.allocate(500 * MB);
    // Ramp compilation hard: +60 MB per second.
    let mut decisions = Vec::new();
    for s in 0..5u64 {
        compile.allocate(60 * MB);
        decisions = broker.recalculate(t(s + 1));
    }
    let compile_note = decisions
        .iter()
        .map(|d| &d.notification)
        .find(|n| n.kind_of_component == SubcomponentKind::Compilation)
        .expect("a decision for the ramping compilation clerk");
    assert!(
        compile_note.predicted_bytes > compile_note.current_bytes,
        "trend must predict continued growth: {compile_note:?}"
    );
}
