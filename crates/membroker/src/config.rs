//! Broker configuration.

use serde::{Deserialize, Serialize};
use throttledb_sim::SimDuration;

/// Configuration of the [`MemoryBroker`](crate::MemoryBroker).
///
/// The defaults model the paper's evaluation machine: 4 GB of physical
/// memory, a small slice of which is reserved for fixed overheads (executable
/// images, thread stacks, connection buffers) and therefore never handed to
/// the brokered subcomponents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrokerConfig {
    /// Total physical memory on the machine, in bytes.
    pub total_memory_bytes: u64,
    /// Fraction of `total_memory_bytes` withheld for non-brokered overheads.
    pub reserved_fraction: f64,
    /// How far into the future usage is predicted when deciding whether the
    /// system *will* exceed physical memory ("the broker ... predicts future
    /// memory usage by identifying trends").
    pub prediction_horizon: SimDuration,
    /// Number of recent usage samples kept per clerk for trend fitting.
    pub trend_window: usize,
    /// Utilization (of brokered memory) above which the broker reports
    /// [`PressureLevel::Medium`](crate::PressureLevel::Medium).
    pub medium_pressure_utilization: f64,
    /// Utilization above which the broker reports
    /// [`PressureLevel::High`](crate::PressureLevel::High).
    pub high_pressure_utilization: f64,
    /// A clerk is never asked to shrink below this floor, so tiny but
    /// essential consumers (e.g. the plan cache skeleton) survive pressure.
    pub min_target_bytes: u64,
    /// Hysteresis applied to targets: a clerk already below
    /// `target * (1 + hysteresis)` is told to hold steady rather than shrink.
    pub target_hysteresis: f64,
}

impl BrokerConfig {
    /// Configuration for a machine with `total_memory_bytes` of RAM and
    /// default policy parameters.
    pub fn with_total_memory(total_memory_bytes: u64) -> Self {
        BrokerConfig {
            total_memory_bytes,
            ..Default::default()
        }
    }

    /// The paper's evaluation machine: 8 CPUs, 4 GB of physical memory.
    pub fn paper_machine() -> Self {
        BrokerConfig::with_total_memory(4 * (1 << 30))
    }

    /// Bytes the broker is willing to hand out across all clerks.
    pub fn brokered_bytes(&self) -> u64 {
        let reserved = (self.total_memory_bytes as f64 * self.reserved_fraction) as u64;
        self.total_memory_bytes.saturating_sub(reserved)
    }

    /// Panics if the configuration is internally inconsistent. Call once at
    /// construction; all fields are plain data so later mutation is the
    /// caller's responsibility.
    pub fn validate(&self) {
        assert!(self.total_memory_bytes > 0, "total memory must be positive");
        assert!(
            (0.0..1.0).contains(&self.reserved_fraction),
            "reserved_fraction must be in [0,1)"
        );
        assert!(
            self.trend_window >= 2,
            "trend window needs at least 2 samples"
        );
        assert!(
            self.medium_pressure_utilization < self.high_pressure_utilization,
            "medium pressure threshold must be below high"
        );
        assert!(
            self.high_pressure_utilization <= 1.5,
            "high pressure threshold unreasonably large"
        );
        assert!(
            (0.0..1.0).contains(&self.target_hysteresis),
            "target_hysteresis must be in [0,1)"
        );
    }
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            total_memory_bytes: 4 * (1 << 30),
            reserved_fraction: 0.05,
            prediction_horizon: SimDuration::from_secs(10),
            trend_window: 16,
            medium_pressure_utilization: 0.80,
            high_pressure_utilization: 0.95,
            min_target_bytes: 4 << 20,
            target_hysteresis: 0.05,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        BrokerConfig::default().validate();
        BrokerConfig::paper_machine().validate();
    }

    #[test]
    fn paper_machine_is_4gb() {
        assert_eq!(
            BrokerConfig::paper_machine().total_memory_bytes,
            4 * (1 << 30)
        );
    }

    #[test]
    fn brokered_bytes_excludes_reservation() {
        let cfg = BrokerConfig {
            total_memory_bytes: 1000,
            reserved_fraction: 0.1,
            ..Default::default()
        };
        assert_eq!(cfg.brokered_bytes(), 900);
    }

    #[test]
    #[should_panic(expected = "total memory")]
    fn zero_memory_rejected() {
        BrokerConfig {
            total_memory_bytes: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "medium pressure")]
    fn inverted_pressure_thresholds_rejected() {
        BrokerConfig {
            medium_pressure_utilization: 0.9,
            high_pressure_utilization: 0.8,
            ..Default::default()
        }
        .validate();
    }
}
