//! The Memory Broker itself.

use crate::accounting::ClerkAccount;
use crate::clerk::{Clerk, ClerkId, SubcomponentKind};
use crate::config::BrokerConfig;
use crate::notification::{Notification, NotificationKind};
use crate::pressure::PressureLevel;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use throttledb_sim::SimTime;

/// One broker verdict for one clerk, produced by [`MemoryBroker::recalculate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrokerDecision {
    /// The notification delivered to the clerk.
    pub notification: Notification,
}

/// Point-in-time view of one clerk for reporting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClerkSnapshot {
    /// Clerk identity.
    pub id: ClerkId,
    /// Subcomponent kind.
    pub kind: SubcomponentKind,
    /// Human-readable name.
    pub name: String,
    /// Live bytes.
    pub used_bytes: u64,
    /// Current target (None = unconstrained).
    pub target_bytes: Option<u64>,
    /// Last verdict sent.
    pub last_verdict: Option<NotificationKind>,
}

/// Point-in-time view of the whole broker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrokerSnapshot {
    /// Total physical memory configured.
    pub total_memory_bytes: u64,
    /// Bytes the broker is willing to distribute.
    pub brokered_bytes: u64,
    /// Sum of live usage across clerks.
    pub used_bytes: u64,
    /// Current pressure classification.
    pub pressure: PressureLevel,
    /// Per-clerk details.
    pub clerks: Vec<ClerkSnapshot>,
}

/// The central memory accountant (§3 of the paper).
///
/// Thread-safe: clerks report allocations lock-free; `recalculate` takes a
/// short internal lock. In the discrete-event engine the broker is driven on
/// a virtual-time schedule; in the threaded examples it can be called from a
/// housekeeping thread.
#[derive(Debug)]
pub struct MemoryBroker {
    config: BrokerConfig,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    accounts: Vec<ClerkAccount>,
    recalculations: u64,
}

impl MemoryBroker {
    /// Create a broker with the given configuration.
    pub fn new(config: BrokerConfig) -> Arc<Self> {
        config.validate();
        Arc::new(MemoryBroker {
            config,
            inner: Mutex::new(Inner::default()),
        })
    }

    /// The configuration this broker was built with.
    pub fn config(&self) -> &BrokerConfig {
        &self.config
    }

    /// Register a new subcomponent clerk.
    pub fn register(&self, kind: SubcomponentKind) -> Clerk {
        let mut inner = self.inner.lock();
        let id = ClerkId(inner.accounts.len() as u32);
        let clerk = Clerk::new(id, kind);
        inner
            .accounts
            .push(ClerkAccount::new(clerk.clone(), self.config.trend_window));
        clerk
    }

    /// Sum of live usage across all clerks.
    pub fn used_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.accounts.iter().map(|a| a.clerk().used_bytes()).sum()
    }

    /// Live usage for one subcomponent kind (summed over its clerks).
    pub fn used_by_kind(&self, kind: SubcomponentKind) -> u64 {
        let inner = self.inner.lock();
        inner
            .accounts
            .iter()
            .filter(|a| a.clerk().kind() == kind)
            .map(|a| a.clerk().used_bytes())
            .sum()
    }

    /// Trend-predicted near-future usage for one subcomponent kind, summed
    /// over its clerks: each clerk's usage extrapolated
    /// [`BrokerConfig::prediction_horizon`](crate::config::BrokerConfig)
    /// ahead along the trend sampled by the last
    /// [`MemoryBroker::recalculate`] (live usage when no trend exists yet).
    ///
    /// The engine's PID admission policy divides this by
    /// [`MemoryBroker::target_for_kind`] to obtain the predicted-pressure
    /// signal it servos on.
    pub fn predicted_by_kind(&self, kind: SubcomponentKind) -> u64 {
        let horizon = self.config.prediction_horizon;
        let inner = self.inner.lock();
        inner
            .accounts
            .iter()
            .filter(|a| a.clerk().kind() == kind)
            .map(|a| a.predict(horizon))
            .sum()
    }

    /// Bytes still available before hitting the brokered limit (saturating).
    pub fn available_bytes(&self) -> u64 {
        self.config
            .brokered_bytes()
            .saturating_sub(self.used_bytes())
    }

    /// Current pressure based on live usage (no prediction).
    pub fn pressure(&self) -> PressureLevel {
        let brokered = self.config.brokered_bytes().max(1);
        let utilization = self.used_bytes() as f64 / brokered as f64;
        PressureLevel::from_utilization(
            utilization,
            self.config.medium_pressure_utilization,
            self.config.high_pressure_utilization,
        )
    }

    /// The memory target for a subcomponent kind: the sum of installed
    /// targets for its clerks when the system is constrained, or the kind's
    /// entitlement share of brokered memory when it is not.
    ///
    /// `throttledb-core` uses the value for [`SubcomponentKind::Compilation`]
    /// to compute the *dynamic gateway thresholds* described in §4.1.
    pub fn target_for_kind(&self, kind: SubcomponentKind) -> u64 {
        let inner = self.inner.lock();
        let installed: u64 = inner
            .accounts
            .iter()
            .filter(|a| a.clerk().kind() == kind)
            .filter_map(|a| a.clerk().target_bytes())
            .sum();
        if installed > 0 {
            installed
        } else {
            (self.config.brokered_bytes() as f64 * kind.entitlement_weight()) as u64
        }
    }

    /// Number of times `recalculate` has run.
    pub fn recalculations(&self) -> u64 {
        self.inner.lock().recalculations
    }

    /// Sample every clerk, predict near-future usage, and return one verdict
    /// per clerk. Targets are installed on the clerks so subcomponents that
    /// poll (rather than receive notifications) see the same numbers.
    pub fn recalculate(&self, now: SimTime) -> Vec<BrokerDecision> {
        let mut inner = self.inner.lock();
        inner.recalculations += 1;
        let horizon = self.config.prediction_horizon;
        let brokered = self.config.brokered_bytes();

        // Pass 1: sample usage and predictions.
        let mut current = Vec::with_capacity(inner.accounts.len());
        let mut predicted = Vec::with_capacity(inner.accounts.len());
        for account in inner.accounts.iter_mut() {
            current.push(account.sample(now));
            predicted.push(account.predict(horizon));
        }
        let predicted_total: u64 = predicted.iter().sum();

        // Unconstrained: clear targets, everyone may grow. "If the system is
        // not using all available physical memory, no action is taken."
        if predicted_total <= brokered {
            let mut out = Vec::with_capacity(inner.accounts.len());
            for (i, account) in inner.accounts.iter_mut().enumerate() {
                account.clerk().install_target(None);
                account.set_verdict(NotificationKind::Grow);
                out.push(BrokerDecision {
                    notification: Notification {
                        clerk: account.clerk().id(),
                        kind_of_component: account.clerk().kind(),
                        kind: NotificationKind::Grow,
                        current_bytes: current[i],
                        predicted_bytes: predicted[i],
                        target_bytes: None,
                    },
                });
            }
            return out;
        }

        // Constrained: compute per-clerk targets by water-filling the
        // brokered bytes across squeezable clerks according to their
        // entitlement weights; unsqueezable (Fixed) clerks keep their demand.
        let demands: Vec<u64> = current
            .iter()
            .zip(predicted.iter())
            .map(|(c, p)| (*c).max(*p))
            .collect();
        let targets = compute_targets(
            &inner
                .accounts
                .iter()
                .map(|a| a.clerk().kind())
                .collect::<Vec<_>>(),
            &demands,
            brokered,
            self.config.min_target_bytes,
        );

        let hysteresis = self.config.target_hysteresis;
        let mut out = Vec::with_capacity(inner.accounts.len());
        for (i, account) in inner.accounts.iter_mut().enumerate() {
            let kind = account.clerk().kind();
            let target = targets[i];
            let verdict = if !kind.is_squeezable() {
                NotificationKind::Steady
            } else if current[i] as f64 > target as f64 * (1.0 + hysteresis) {
                NotificationKind::Shrink
            } else if predicted[i] <= target && (current[i] as f64) < target as f64 * 0.90 {
                NotificationKind::Grow
            } else {
                NotificationKind::Steady
            };
            account.clerk().install_target(Some(target));
            account.set_verdict(verdict);
            out.push(BrokerDecision {
                notification: Notification {
                    clerk: account.clerk().id(),
                    kind_of_component: kind,
                    kind: verdict,
                    current_bytes: current[i],
                    predicted_bytes: predicted[i],
                    target_bytes: Some(target),
                },
            });
        }
        out
    }

    /// A point-in-time view of the broker for reports and figures.
    pub fn snapshot(&self) -> BrokerSnapshot {
        let pressure = self.pressure();
        let inner = self.inner.lock();
        let clerks: Vec<ClerkSnapshot> = inner
            .accounts
            .iter()
            .map(|a| ClerkSnapshot {
                id: a.clerk().id(),
                kind: a.clerk().kind(),
                name: a.clerk().name(),
                used_bytes: a.clerk().used_bytes(),
                target_bytes: a.clerk().target_bytes(),
                last_verdict: a.last_verdict(),
            })
            .collect();
        BrokerSnapshot {
            total_memory_bytes: self.config.total_memory_bytes,
            brokered_bytes: self.config.brokered_bytes(),
            used_bytes: clerks.iter().map(|c| c.used_bytes).sum(),
            pressure,
            clerks,
        }
    }
}

/// Water-fill `brokered` bytes across clerks.
///
/// * `Fixed` clerks are satisfied first at their full demand.
/// * The remainder is divided among squeezable clerks proportionally to
///   their [`SubcomponentKind::entitlement_weight`]; any clerk whose demand
///   is below its share is granted its demand and the slack is redistributed
///   to the still-unsatisfied clerks (classic water-filling), iterating until
///   a fixed point.
/// * Every target is at least `min_target` (even if that oversubscribes a
///   pathologically tiny machine — the broker is advisory, not an allocator).
fn compute_targets(
    kinds: &[SubcomponentKind],
    demands: &[u64],
    brokered: u64,
    min_target: u64,
) -> Vec<u64> {
    debug_assert_eq!(kinds.len(), demands.len());
    let n = kinds.len();
    let mut targets = vec![0u64; n];
    let mut remaining = brokered;

    // Fixed clerks first.
    for i in 0..n {
        if !kinds[i].is_squeezable() {
            targets[i] = demands[i];
            remaining = remaining.saturating_sub(demands[i]);
        }
    }

    // Water-fill the rest.
    let mut unsatisfied: Vec<usize> = (0..n).filter(|&i| kinds[i].is_squeezable()).collect();
    let mut settled = vec![false; n];
    loop {
        let weight_sum: f64 = unsatisfied
            .iter()
            .map(|&i| kinds[i].entitlement_weight())
            .sum();
        if unsatisfied.is_empty() || weight_sum <= f64::EPSILON {
            break;
        }
        let mut progressed = false;
        let mut next_round = Vec::new();
        let pool = remaining;
        for &i in &unsatisfied {
            let share = (pool as f64 * kinds[i].entitlement_weight() / weight_sum) as u64;
            if demands[i] <= share {
                // Fully satisfied below its share; grant demand, release slack.
                targets[i] = demands[i];
                settled[i] = true;
                remaining = remaining.saturating_sub(demands[i]);
                progressed = true;
            } else {
                next_round.push(i);
            }
        }
        if !progressed {
            // Everyone left wants more than their share: cap them at it.
            let pool = remaining;
            for &i in &next_round {
                let share = (pool as f64 * kinds[i].entitlement_weight() / weight_sum) as u64;
                targets[i] = share;
                settled[i] = true;
            }
            break;
        }
        unsatisfied = next_round;
    }

    for i in 0..n {
        if kinds[i].is_squeezable() && !settled[i] && targets[i] == 0 {
            // Degenerate case (no weights left): give the minimum.
            targets[i] = min_target;
        }
        if kinds[i].is_squeezable() {
            targets[i] = targets[i].max(min_target);
        }
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const MB: u64 = 1 << 20;
    const GB: u64 = 1 << 30;

    fn broker(total: u64) -> Arc<MemoryBroker> {
        MemoryBroker::new(BrokerConfig::with_total_memory(total))
    }

    #[test]
    fn unconstrained_system_gets_grow_and_no_targets() {
        let b = broker(4 * GB);
        let pool = b.register(SubcomponentKind::BufferPool);
        let compile = b.register(SubcomponentKind::Compilation);
        pool.allocate(100 * MB);
        compile.allocate(10 * MB);
        let decisions = b.recalculate(SimTime::from_secs(1));
        assert_eq!(decisions.len(), 2);
        for d in &decisions {
            assert_eq!(d.notification.kind, NotificationKind::Grow);
            assert_eq!(d.notification.target_bytes, None);
        }
        assert_eq!(pool.target_bytes(), None);
        assert_eq!(b.pressure(), PressureLevel::Low);
    }

    #[test]
    fn oversubscription_produces_shrink_for_the_hog() {
        let b = broker(GB);
        let pool = b.register(SubcomponentKind::BufferPool);
        let compile = b.register(SubcomponentKind::Compilation);
        let exec = b.register(SubcomponentKind::Execution);
        pool.allocate(800 * MB);
        compile.allocate(300 * MB);
        exec.allocate(100 * MB);
        let decisions = b.recalculate(SimTime::from_secs(1));
        // Compilation is far above its 15% entitlement of ~1 GB: must shrink.
        let comp_decision = decisions
            .iter()
            .find(|d| d.notification.kind_of_component == SubcomponentKind::Compilation)
            .unwrap();
        assert_eq!(comp_decision.notification.kind, NotificationKind::Shrink);
        assert!(comp_decision.notification.release_needed() > 0);
        assert!(compile.target_bytes().is_some());
        assert_eq!(b.pressure(), PressureLevel::High);
    }

    #[test]
    fn growth_trend_triggers_constraint_before_limit_is_hit() {
        let b = broker(GB);
        let pool = b.register(SubcomponentKind::BufferPool);
        let compile = b.register(SubcomponentKind::Compilation);
        pool.allocate(700 * MB);
        // Compilation grows 50 MB/s; at 200 MB now, predicted 10 s out is
        // ~700 MB which blows the 1 GB budget even though current total fits.
        for s in 1..=4u64 {
            compile.allocate(50 * MB);
            b.recalculate(SimTime::from_secs(s));
        }
        let decisions = b.recalculate(SimTime::from_secs(5));
        let comp = decisions
            .iter()
            .find(|d| d.notification.kind_of_component == SubcomponentKind::Compilation)
            .unwrap();
        assert!(comp.notification.predicted_bytes > comp.notification.current_bytes);
        assert!(
            comp.notification.target_bytes.is_some(),
            "should be constrained"
        );
    }

    #[test]
    fn targets_clear_when_pressure_subsides() {
        let b = broker(512 * MB);
        let pool = b.register(SubcomponentKind::BufferPool);
        let compile = b.register(SubcomponentKind::Compilation);
        pool.allocate(400 * MB);
        compile.allocate(300 * MB);
        b.recalculate(SimTime::from_secs(1));
        assert!(compile.target_bytes().is_some());
        // Memory is released; next recalculation should clear targets.
        pool.free(380 * MB);
        compile.free(290 * MB);
        // Let the shrinking trend settle over a few samples.
        b.recalculate(SimTime::from_secs(2));
        let decisions = b.recalculate(SimTime::from_secs(3));
        for d in &decisions {
            assert_eq!(d.notification.kind, NotificationKind::Grow);
        }
        assert_eq!(compile.target_bytes(), None);
    }

    #[test]
    fn fixed_clerks_are_never_asked_to_shrink() {
        let b = broker(256 * MB);
        let fixed = b.register(SubcomponentKind::Fixed);
        let pool = b.register(SubcomponentKind::BufferPool);
        fixed.allocate(64 * MB);
        pool.allocate(512 * MB);
        let decisions = b.recalculate(SimTime::from_secs(1));
        let fx = decisions
            .iter()
            .find(|d| d.notification.kind_of_component == SubcomponentKind::Fixed)
            .unwrap();
        assert_ne!(fx.notification.kind, NotificationKind::Shrink);
    }

    #[test]
    fn target_for_kind_falls_back_to_entitlement() {
        let b = broker(GB);
        let _c = b.register(SubcomponentKind::Compilation);
        let t = b.target_for_kind(SubcomponentKind::Compilation);
        let brokered = b.config().brokered_bytes();
        let expected = (brokered as f64 * 0.15) as u64;
        assert_eq!(t, expected);
    }

    #[test]
    fn target_for_kind_uses_installed_targets_under_pressure() {
        let b = broker(512 * MB);
        let pool = b.register(SubcomponentKind::BufferPool);
        let compile = b.register(SubcomponentKind::Compilation);
        pool.allocate(400 * MB);
        compile.allocate(400 * MB);
        b.recalculate(SimTime::from_secs(1));
        let t = b.target_for_kind(SubcomponentKind::Compilation);
        assert_eq!(Some(t), compile.target_bytes());
    }

    #[test]
    fn predicted_by_kind_extrapolates_the_sampled_trend() {
        let b = broker(4 * GB);
        let compile = b.register(SubcomponentKind::Compilation);
        let _pool = b.register(SubcomponentKind::BufferPool);
        // With no samples yet, prediction falls back to live usage.
        compile.allocate(100 * MB);
        assert_eq!(b.predicted_by_kind(SubcomponentKind::Compilation), 100 * MB);
        // Grow 50 MB/s across recalculations: the prediction must run ahead
        // of live usage along the trend.
        for s in 1..=4u64 {
            b.recalculate(SimTime::from_secs(s));
            compile.allocate(50 * MB);
        }
        let live = b.used_by_kind(SubcomponentKind::Compilation);
        let predicted = b.predicted_by_kind(SubcomponentKind::Compilation);
        assert!(
            predicted > live,
            "prediction {predicted} should exceed live {live} on a growth trend"
        );
        // Other kinds are excluded from the sum.
        assert_eq!(b.predicted_by_kind(SubcomponentKind::Execution), 0);
    }

    #[test]
    fn snapshot_reports_all_clerks() {
        let b = broker(GB);
        let pool = b.register(SubcomponentKind::BufferPool);
        pool.set_name("main pool");
        pool.allocate(10 * MB);
        let snap = b.snapshot();
        assert_eq!(snap.total_memory_bytes, GB);
        assert_eq!(snap.clerks.len(), 1);
        assert_eq!(snap.clerks[0].name, "main pool");
        assert_eq!(snap.used_bytes, 10 * MB);
    }

    #[test]
    fn available_bytes_saturates() {
        let b = broker(64 * MB);
        let pool = b.register(SubcomponentKind::BufferPool);
        pool.allocate(10 * GB);
        assert_eq!(b.available_bytes(), 0);
    }

    #[test]
    fn recalculations_counter_increments() {
        let b = broker(GB);
        b.recalculate(SimTime::from_secs(1));
        b.recalculate(SimTime::from_secs(2));
        assert_eq!(b.recalculations(), 2);
    }

    #[test]
    fn compute_targets_water_fills_slack() {
        // Buffer pool demands little, compilation demands a lot: the pool's
        // slack should flow to compilation rather than being wasted.
        let kinds = vec![SubcomponentKind::BufferPool, SubcomponentKind::Compilation];
        let demands = vec![100 * MB, 900 * MB];
        let targets = compute_targets(&kinds, &demands, 1000 * MB, MB);
        assert_eq!(targets[0], 100 * MB);
        assert!(
            targets[1] >= 800 * MB,
            "compilation should receive the slack: {targets:?}"
        );
        assert!(targets[1] <= 900 * MB);
    }

    #[test]
    fn compute_targets_respects_min_target() {
        let kinds = vec![SubcomponentKind::BufferPool, SubcomponentKind::PlanCache];
        let demands = vec![10_000 * MB, 10 * MB];
        let targets = compute_targets(&kinds, &demands, 100 * MB, 4 * MB);
        assert!(targets[1] >= 4 * MB);
    }

    proptest! {
        #[test]
        fn prop_targets_never_exceed_demand_for_satisfied_clerks(
            demands in proptest::collection::vec(0u64..4_000_000_000u64, 2..6),
            brokered in 1_000_000u64..4_000_000_000u64,
        ) {
            let kinds: Vec<SubcomponentKind> = demands
                .iter()
                .enumerate()
                .map(|(i, _)| match i % 4 {
                    0 => SubcomponentKind::BufferPool,
                    1 => SubcomponentKind::Compilation,
                    2 => SubcomponentKind::Execution,
                    _ => SubcomponentKind::PlanCache,
                })
                .collect();
            let min_target = 1024;
            let targets = compute_targets(&kinds, &demands, brokered, min_target);
            prop_assert_eq!(targets.len(), demands.len());
            for (i, t) in targets.iter().enumerate() {
                // A target is either capped at the clerk's demand (satisfied)
                // or at/above the configured floor (squeezed).
                prop_assert!(*t <= demands[i].max(min_target) || *t >= min_target);
                prop_assert!(*t >= min_target.min(demands[i]) || *t >= min_target);
            }
            // Total granted to squeezed clerks never exceeds brokered plus the
            // min-target floors (the floors may oversubscribe a tiny machine).
            let total: u64 = targets.iter().sum();
            let floor_allowance = min_target * demands.len() as u64;
            prop_assert!(total <= brokered + floor_allowance + demands.iter().sum::<u64>() / 1_000_000,
                "total {} brokered {}", total, brokered);
        }

        #[test]
        fn prop_recalculate_is_deterministic(
            allocs in proptest::collection::vec(0u64..500_000_000u64, 1..8),
        ) {
            let run = |allocs: &[u64]| {
                let b = broker(GB);
                let clerks: Vec<_> = allocs
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        b.register(match i % 3 {
                            0 => SubcomponentKind::BufferPool,
                            1 => SubcomponentKind::Compilation,
                            _ => SubcomponentKind::Execution,
                        })
                    })
                    .collect();
                for (c, a) in clerks.iter().zip(allocs.iter()) {
                    c.allocate(*a);
                }
                b.recalculate(SimTime::from_secs(1))
                    .iter()
                    .map(|d| (d.notification.kind, d.notification.target_bytes))
                    .collect::<Vec<_>>()
            };
            prop_assert_eq!(run(&allocs), run(&allocs));
        }
    }
}
