//! Per-clerk accounting kept inside the broker.
//!
//! The broker holds one [`ClerkAccount`] per registered clerk: the clerk
//! handle itself (for reading live usage and installing targets), the trend
//! estimator fed on every recalculation, and the last verdict sent so that
//! reports can show notification churn.

use crate::clerk::Clerk;
use crate::notification::NotificationKind;
use crate::trend::TrendEstimator;
use throttledb_sim::{SimDuration, SimTime};

/// Broker-side record for one registered clerk.
#[derive(Debug, Clone)]
pub struct ClerkAccount {
    clerk: Clerk,
    trend: TrendEstimator,
    last_verdict: Option<NotificationKind>,
    verdict_changes: u64,
}

impl ClerkAccount {
    /// Create an account tracking `clerk` with a trend window of
    /// `trend_window` samples.
    pub fn new(clerk: Clerk, trend_window: usize) -> Self {
        ClerkAccount {
            clerk,
            trend: TrendEstimator::new(trend_window),
            last_verdict: None,
            verdict_changes: 0,
        }
    }

    /// The clerk handle.
    pub fn clerk(&self) -> &Clerk {
        &self.clerk
    }

    /// Record a usage sample at `now` and return the live usage observed.
    pub fn sample(&mut self, now: SimTime) -> u64 {
        let used = self.clerk.used_bytes();
        self.trend.record(now, used);
        used
    }

    /// Predicted usage `horizon` into the future given the recorded trend.
    pub fn predict(&self, horizon: SimDuration) -> u64 {
        // If no sample was ever recorded, fall back to the live value so a
        // clerk that registered between recalculations is still accounted.
        if self.trend.is_empty() {
            self.clerk.used_bytes()
        } else {
            self.trend.predict(horizon)
        }
    }

    /// Estimated allocation rate in bytes/second.
    pub fn allocation_rate(&self) -> f64 {
        self.trend.slope_bytes_per_sec()
    }

    /// Record the verdict sent to this clerk, tracking changes for reports.
    pub fn set_verdict(&mut self, verdict: NotificationKind) {
        if self.last_verdict != Some(verdict) {
            self.verdict_changes += 1;
        }
        self.last_verdict = Some(verdict);
    }

    /// The last verdict sent, if any.
    pub fn last_verdict(&self) -> Option<NotificationKind> {
        self.last_verdict
    }

    /// How many times the verdict has changed — a proxy for the "wild
    /// swings" the paper says the broker is meant to dampen.
    pub fn verdict_changes(&self) -> u64 {
        self.verdict_changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clerk::{ClerkId, SubcomponentKind};

    fn account() -> ClerkAccount {
        ClerkAccount::new(Clerk::new(ClerkId(0), SubcomponentKind::Compilation), 8)
    }

    #[test]
    fn sample_reads_live_usage() {
        let mut a = account();
        a.clerk().allocate(500);
        assert_eq!(a.sample(SimTime::from_secs(1)), 500);
        a.clerk().allocate(500);
        assert_eq!(a.sample(SimTime::from_secs(2)), 1000);
    }

    #[test]
    fn predict_without_samples_uses_live_value() {
        let a = account();
        a.clerk().allocate(750);
        assert_eq!(a.predict(SimDuration::from_secs(10)), 750);
    }

    #[test]
    fn predict_extrapolates_growth() {
        let mut a = account();
        for s in 1..=5u64 {
            a.clerk().allocate(1000);
            a.sample(SimTime::from_secs(s));
        }
        // Growing 1000 bytes/second; prediction 10 s out should far exceed
        // the current 5000 bytes.
        assert!(a.predict(SimDuration::from_secs(10)) > 10_000);
        assert!(a.allocation_rate() > 900.0);
    }

    #[test]
    fn verdict_changes_are_counted() {
        let mut a = account();
        assert_eq!(a.last_verdict(), None);
        a.set_verdict(NotificationKind::Grow);
        a.set_verdict(NotificationKind::Grow);
        a.set_verdict(NotificationKind::Shrink);
        a.set_verdict(NotificationKind::Grow);
        assert_eq!(a.verdict_changes(), 3);
        assert_eq!(a.last_verdict(), Some(NotificationKind::Grow));
    }
}
