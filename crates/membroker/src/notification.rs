//! Notifications sent from the broker to subcomponents.
//!
//! The paper: "The broker also sends notifications to each subcomponent with
//! its predicted and target memory numbers and informs that subcomponent
//! whether it can continue to consume memory, whether it can safely allocate
//! at its current rate, or whether it needs to release memory."

use crate::clerk::{ClerkId, SubcomponentKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three verdicts a subcomponent can receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NotificationKind {
    /// Memory is plentiful: the subcomponent may grow freely.
    Grow,
    /// The subcomponent may keep allocating at its current rate, but should
    /// not accelerate; it is at or near its target.
    Steady,
    /// The subcomponent is above its target and should release memory.
    Shrink,
}

impl fmt::Display for NotificationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NotificationKind::Grow => "grow",
            NotificationKind::Steady => "steady",
            NotificationKind::Shrink => "shrink",
        };
        f.write_str(s)
    }
}

/// A full notification: verdict plus the numbers it was derived from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Notification {
    /// Which clerk this notification is for.
    pub clerk: ClerkId,
    /// Subcomponent kind (duplicated for convenience in logs/figures).
    pub kind_of_component: SubcomponentKind,
    /// The verdict.
    pub kind: NotificationKind,
    /// Live bytes at decision time.
    pub current_bytes: u64,
    /// Predicted bytes at the broker's prediction horizon.
    pub predicted_bytes: u64,
    /// The target the broker wants this clerk at, if the system is
    /// constrained. `None` means unconstrained.
    pub target_bytes: Option<u64>,
}

impl Notification {
    /// Bytes that must be released to reach the target (0 when unconstrained
    /// or already below target).
    pub fn release_needed(&self) -> u64 {
        match self.target_bytes {
            Some(t) => self.current_bytes.saturating_sub(t),
            None => 0,
        }
    }

    /// True when the subcomponent is allowed to allocate more right now.
    pub fn may_allocate(&self) -> bool {
        !matches!(self.kind, NotificationKind::Shrink)
    }

    /// Translate the broker's verdict into the resource-governor layer's
    /// common [`AdmissionDecision`](throttledb_governor::AdmissionDecision)
    /// vocabulary, answering "may this subcomponent grow by `bytes`?":
    ///
    /// * *grow* admits the allocation in full;
    /// * *steady* admits it degraded — the subcomponent may allocate at its
    ///   current rate but only up to its remaining headroom below the
    ///   target (the whole request when unconstrained); with no headroom
    ///   left the request is rejected rather than "admitted" at zero bytes;
    /// * *shrink* rejects it — the subcomponent is above target and should
    ///   be releasing memory, not allocating.
    pub fn admission(&self, bytes: u64) -> throttledb_governor::AdmissionDecision {
        use throttledb_governor::AdmissionDecision;
        match self.kind {
            NotificationKind::Grow => AdmissionDecision::Admit { units: bytes },
            NotificationKind::Steady => {
                let headroom = match self.target_bytes {
                    Some(target) => target.saturating_sub(self.current_bytes),
                    None => bytes,
                };
                let units = bytes.min(headroom);
                if units == 0 {
                    // At (or above) target with nothing to hand out: a
                    // zero-byte "degraded admission" would read as admitted.
                    AdmissionDecision::Reject
                } else {
                    AdmissionDecision::Degrade { units }
                }
            }
            NotificationKind::Shrink => AdmissionDecision::Reject,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(kind: NotificationKind, current: u64, target: Option<u64>) -> Notification {
        Notification {
            clerk: ClerkId(1),
            kind_of_component: SubcomponentKind::Compilation,
            kind,
            current_bytes: current,
            predicted_bytes: current,
            target_bytes: target,
        }
    }

    #[test]
    fn release_needed_is_gap_to_target() {
        let n = base(NotificationKind::Shrink, 1000, Some(600));
        assert_eq!(n.release_needed(), 400);
        let n = base(NotificationKind::Steady, 500, Some(600));
        assert_eq!(n.release_needed(), 0);
        let n = base(NotificationKind::Grow, 500, None);
        assert_eq!(n.release_needed(), 0);
    }

    #[test]
    fn may_allocate_only_blocked_by_shrink() {
        assert!(base(NotificationKind::Grow, 0, None).may_allocate());
        assert!(base(NotificationKind::Steady, 0, None).may_allocate());
        assert!(!base(NotificationKind::Shrink, 0, Some(0)).may_allocate());
    }

    #[test]
    fn verdicts_translate_into_the_governor_vocabulary() {
        use throttledb_governor::AdmissionDecision;
        let grow = base(NotificationKind::Grow, 100, None);
        assert_eq!(grow.admission(50), AdmissionDecision::Admit { units: 50 });
        // Steady with a target: degraded to the remaining headroom.
        let steady = base(NotificationKind::Steady, 400, Some(600));
        assert_eq!(
            steady.admission(500),
            AdmissionDecision::Degrade { units: 200 }
        );
        // Steady without a target: degraded but whole.
        let steady_free = base(NotificationKind::Steady, 400, None);
        assert_eq!(
            steady_free.admission(500),
            AdmissionDecision::Degrade { units: 500 }
        );
        let shrink = base(NotificationKind::Shrink, 1000, Some(600));
        assert_eq!(shrink.admission(1), AdmissionDecision::Reject);
        // Steady at (or above) target: no headroom means reject, never a
        // zero-byte degraded admission.
        let steady_full = base(NotificationKind::Steady, 600, Some(600));
        assert_eq!(steady_full.admission(500), AdmissionDecision::Reject);
    }

    #[test]
    fn kinds_display() {
        assert_eq!(NotificationKind::Grow.to_string(), "grow");
        assert_eq!(NotificationKind::Steady.to_string(), "steady");
        assert_eq!(NotificationKind::Shrink.to_string(), "shrink");
    }
}
