//! Clerks: the per-subcomponent handles through which memory is reported.
//!
//! Every DBMS subcomponent that consumes significant memory owns a [`Clerk`].
//! Allocations and frees are reported in bytes; the clerk maintains the
//! subcomponent's live total and feeds the broker's accounting. Clerks are
//! cheap to clone (they share state behind an `Arc`) so a subcomponent can
//! hand copies to its internal workers.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies a registered clerk within one broker instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClerkId(pub(crate) u32);

impl ClerkId {
    /// The raw index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClerkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clerk#{}", self.0)
    }
}

/// The DBMS subcomponents the paper reasons about, plus an escape hatch.
///
/// The kind determines the default brokering policy:
/// * **shrink priority** — which consumers are asked to give memory back
///   first when the machine is oversubscribed (caches first, then
///   compilation, then execution, buffer pool last since it backs every data
///   access), and
/// * **entitlement weight** — how the brokered memory is split when everyone
///   wants more than exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubcomponentKind {
    /// The database page buffer pool (§2.1, §3).
    BufferPool,
    /// Query execution memory grants (hashes and sorts).
    Execution,
    /// Query compilation / optimization memory — the paper's focus.
    Compilation,
    /// The compiled plan cache.
    PlanCache,
    /// Any other cache that can shrink on demand.
    OtherCache,
    /// Fixed overheads that the broker tracks but never squeezes.
    Fixed,
}

impl SubcomponentKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [SubcomponentKind; 6] = [
        SubcomponentKind::BufferPool,
        SubcomponentKind::Execution,
        SubcomponentKind::Compilation,
        SubcomponentKind::PlanCache,
        SubcomponentKind::OtherCache,
        SubcomponentKind::Fixed,
    ];

    /// Lower numbers shrink first when the broker needs memory back.
    pub fn shrink_priority(self) -> u8 {
        match self {
            SubcomponentKind::OtherCache => 0,
            SubcomponentKind::PlanCache => 1,
            SubcomponentKind::Compilation => 2,
            SubcomponentKind::BufferPool => 3,
            SubcomponentKind::Execution => 4,
            SubcomponentKind::Fixed => u8::MAX,
        }
    }

    /// Relative share of brokered memory this kind is entitled to when the
    /// sum of demands exceeds physical memory. These mirror the relative
    /// values the paper implies: the buffer pool and execution dominate,
    /// compilation is entitled to a sizable-but-bounded slice, caches less.
    pub fn entitlement_weight(self) -> f64 {
        match self {
            SubcomponentKind::BufferPool => 0.45,
            SubcomponentKind::Execution => 0.25,
            SubcomponentKind::Compilation => 0.15,
            SubcomponentKind::PlanCache => 0.10,
            SubcomponentKind::OtherCache => 0.05,
            SubcomponentKind::Fixed => 0.0,
        }
    }

    /// True when the broker may ask this consumer to release memory.
    pub fn is_squeezable(self) -> bool {
        !matches!(self, SubcomponentKind::Fixed)
    }

    /// Short label used in reports and figures.
    pub fn label(self) -> &'static str {
        match self {
            SubcomponentKind::BufferPool => "buffer-pool",
            SubcomponentKind::Execution => "execution",
            SubcomponentKind::Compilation => "compilation",
            SubcomponentKind::PlanCache => "plan-cache",
            SubcomponentKind::OtherCache => "other-cache",
            SubcomponentKind::Fixed => "fixed",
        }
    }
}

impl fmt::Display for SubcomponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Shared state between a clerk and the broker.
#[derive(Debug)]
pub(crate) struct ClerkShared {
    pub(crate) id: ClerkId,
    pub(crate) kind: SubcomponentKind,
    /// Live bytes currently allocated by the subcomponent.
    pub(crate) used: AtomicU64,
    /// Monotonic totals for reporting.
    pub(crate) total_allocated: AtomicU64,
    pub(crate) total_freed: AtomicU64,
    /// Latest notification target installed by the broker (0 = no target).
    pub(crate) current_target: AtomicU64,
    /// Human-readable name, defaults to the kind label.
    pub(crate) name: Mutex<String>,
}

/// A handle used by one subcomponent to report its memory use.
///
/// Cloning is cheap and clones share the same accounting.
#[derive(Debug, Clone)]
pub struct Clerk {
    pub(crate) shared: Arc<ClerkShared>,
}

impl Clerk {
    pub(crate) fn new(id: ClerkId, kind: SubcomponentKind) -> Self {
        Clerk {
            shared: Arc::new(ClerkShared {
                id,
                kind,
                used: AtomicU64::new(0),
                total_allocated: AtomicU64::new(0),
                total_freed: AtomicU64::new(0),
                current_target: AtomicU64::new(0),
                name: Mutex::new(kind.label().to_string()),
            }),
        }
    }

    /// This clerk's identifier.
    pub fn id(&self) -> ClerkId {
        self.shared.id
    }

    /// The subcomponent kind this clerk reports for.
    pub fn kind(&self) -> SubcomponentKind {
        self.shared.kind
    }

    /// Set a human-readable name (shown in broker snapshots).
    pub fn set_name(&self, name: impl Into<String>) {
        *self.shared.name.lock() = name.into();
    }

    /// The human-readable name.
    pub fn name(&self) -> String {
        self.shared.name.lock().clone()
    }

    /// Report that `bytes` were allocated.
    pub fn allocate(&self, bytes: u64) {
        self.shared.used.fetch_add(bytes, Ordering::Relaxed);
        self.shared
            .total_allocated
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Report that `bytes` were freed. Freeing more than is live is a
    /// subcomponent accounting bug; the count saturates at zero and the
    /// excess is ignored (debug builds assert).
    pub fn free(&self, bytes: u64) {
        self.shared.total_freed.fetch_add(bytes, Ordering::Relaxed);
        let mut cur = self.shared.used.load(Ordering::Relaxed);
        loop {
            debug_assert!(
                cur >= bytes,
                "clerk {} freed more than allocated",
                self.shared.id
            );
            let next = cur.saturating_sub(bytes);
            match self.shared.used.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Live bytes currently reported by this subcomponent.
    pub fn used_bytes(&self) -> u64 {
        self.shared.used.load(Ordering::Relaxed)
    }

    /// Total bytes ever reported allocated.
    pub fn total_allocated(&self) -> u64 {
        self.shared.total_allocated.load(Ordering::Relaxed)
    }

    /// Total bytes ever reported freed.
    pub fn total_freed(&self) -> u64 {
        self.shared.total_freed.load(Ordering::Relaxed)
    }

    /// The most recent target installed by the broker, if any.
    ///
    /// A target of `None` means the broker has not constrained this clerk
    /// (the "system behaves as if the Memory Broker was not there" case).
    pub fn target_bytes(&self) -> Option<u64> {
        match self.shared.current_target.load(Ordering::Relaxed) {
            0 => None,
            t => Some(t),
        }
    }

    /// Convenience: how far above its target this clerk currently is.
    pub fn over_target_bytes(&self) -> u64 {
        match self.target_bytes() {
            Some(t) => self.used_bytes().saturating_sub(t),
            None => 0,
        }
    }

    pub(crate) fn install_target(&self, target: Option<u64>) {
        self.shared
            .current_target
            .store(target.unwrap_or(0), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clerk(kind: SubcomponentKind) -> Clerk {
        Clerk::new(ClerkId(0), kind)
    }

    #[test]
    fn allocate_and_free_track_live_bytes() {
        let c = clerk(SubcomponentKind::Compilation);
        c.allocate(100);
        c.allocate(50);
        assert_eq!(c.used_bytes(), 150);
        c.free(60);
        assert_eq!(c.used_bytes(), 90);
        assert_eq!(c.total_allocated(), 150);
        assert_eq!(c.total_freed(), 60);
    }

    #[test]
    fn clones_share_accounting() {
        let c = clerk(SubcomponentKind::Execution);
        let c2 = c.clone();
        c.allocate(10);
        c2.allocate(20);
        assert_eq!(c.used_bytes(), 30);
        assert_eq!(c2.used_bytes(), 30);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "freed more than allocated"))]
    fn over_free_is_detected_in_debug() {
        let c = clerk(SubcomponentKind::PlanCache);
        c.allocate(5);
        c.free(10);
        // In release builds we saturate instead.
        #[cfg(not(debug_assertions))]
        {
            assert_eq!(c.used_bytes(), 0);
            panic!("freed more than allocated"); // keep the test shape identical
        }
    }

    #[test]
    fn targets_default_to_none() {
        let c = clerk(SubcomponentKind::BufferPool);
        assert_eq!(c.target_bytes(), None);
        assert_eq!(c.over_target_bytes(), 0);
        c.install_target(Some(1000));
        c.allocate(1500);
        assert_eq!(c.target_bytes(), Some(1000));
        assert_eq!(c.over_target_bytes(), 500);
        c.install_target(None);
        assert_eq!(c.target_bytes(), None);
    }

    #[test]
    fn shrink_priority_orders_caches_first() {
        assert!(
            SubcomponentKind::OtherCache.shrink_priority()
                < SubcomponentKind::Compilation.shrink_priority()
        );
        assert!(
            SubcomponentKind::Compilation.shrink_priority()
                < SubcomponentKind::Execution.shrink_priority()
        );
        assert!(!SubcomponentKind::Fixed.is_squeezable());
    }

    #[test]
    fn entitlement_weights_sum_to_one() {
        let sum: f64 = SubcomponentKind::ALL
            .iter()
            .map(|k| k.entitlement_weight())
            .sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights sum to {sum}");
    }

    #[test]
    fn names_default_to_kind_label() {
        let c = clerk(SubcomponentKind::Compilation);
        assert_eq!(c.name(), "compilation");
        c.set_name("optimizer pool 3");
        assert_eq!(c.name(), "optimizer pool 3");
        assert_eq!(format!("{}", c.kind()), "compilation");
        assert_eq!(format!("{}", c.id()), "clerk#0");
    }
}
