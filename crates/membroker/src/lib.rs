//! # throttledb-membroker
//!
//! The **Memory Broker** described in §3 of *"Managing Query Compilation
//! Memory Consumption to Improve DBMS Throughput"* (Baryshnikov et al.,
//! CIDR 2007).
//!
//! The broker is the central accountant for physical memory inside the DBMS.
//! Each memory-consuming subcomponent — the database page buffer pool, query
//! execution (memory grants), query compilation, the compiled-plan cache —
//! registers a [`Clerk`] and reports every allocation and free through it.
//! Periodically (or whenever a component asks), the broker:
//!
//! 1. sums current usage across clerks,
//! 2. **predicts** near-future usage per clerk by fitting a trend to recent
//!    samples ([`trend::TrendEstimator`]),
//! 3. if the predicted total would exceed available physical memory, computes
//!    a per-clerk **target** and emits a [`Notification`] telling the clerk
//!    whether it may keep growing, should hold its allocation rate, or must
//!    shrink toward the target,
//! 4. otherwise stays silent — "if the system is not using all available
//!    physical memory, no action is taken and the system behaves as if the
//!    Memory Broker was not there."
//!
//! The broker never forcibly reclaims memory: as in the paper, it is an
//! *indirect communication channel*, and relies on subcomponents making
//! intelligent decisions about the value of optional allocations.
//!
//! ## Quick example
//!
//! ```
//! use throttledb_membroker::{MemoryBroker, BrokerConfig, SubcomponentKind, NotificationKind};
//! use throttledb_sim::SimTime;
//!
//! // A 1 GiB machine.
//! let broker = MemoryBroker::new(BrokerConfig::with_total_memory(1 << 30));
//! let buffer_pool = broker.register(SubcomponentKind::BufferPool);
//! let compilation = broker.register(SubcomponentKind::Compilation);
//!
//! // The buffer pool grabs 900 MiB, compilation starts ramping up.
//! buffer_pool.allocate(900 << 20);
//! compilation.allocate(50 << 20);
//! let _ = broker.recalculate(SimTime::from_secs(1));
//! compilation.allocate(120 << 20);
//! let decisions = broker.recalculate(SimTime::from_secs(2));
//!
//! // Under pressure the broker hands out targets instead of staying silent.
//! assert!(decisions.iter().any(|d| d.notification.kind != NotificationKind::Grow));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accounting;
pub mod broker;
pub mod clerk;
pub mod config;
pub mod notification;
pub mod pressure;
pub mod trend;

pub use broker::{BrokerDecision, BrokerSnapshot, ClerkSnapshot, MemoryBroker};
pub use clerk::{Clerk, ClerkId, SubcomponentKind};
pub use config::BrokerConfig;
pub use notification::{Notification, NotificationKind};
pub use pressure::PressureLevel;
