//! Trend estimation over recent memory-usage samples.
//!
//! The paper's broker "monitors the total memory usage of each subcomponent
//! and predicts future memory usage by identifying trends". We implement the
//! prediction as an ordinary least-squares line fit over a sliding window of
//! `(time, bytes)` samples, extrapolated to a configurable horizon. The fit
//! is clamped to be non-negative and to never predict *below* the current
//! usage when the trend is downward-but-noisy — a consumer that is flat
//! should be predicted flat, not shrinking, so the broker stays conservative.

use std::collections::VecDeque;
use throttledb_sim::{SimDuration, SimTime};

/// A sliding-window least-squares estimator of a clerk's memory usage.
#[derive(Debug, Clone)]
pub struct TrendEstimator {
    window: usize,
    samples: VecDeque<(SimTime, u64)>,
}

impl TrendEstimator {
    /// Create an estimator keeping the most recent `window` samples.
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "trend window must keep at least two samples");
        TrendEstimator {
            window,
            samples: VecDeque::with_capacity(window),
        }
    }

    /// Record a usage sample. Samples must arrive in non-decreasing time
    /// order (the broker samples on its own recalculation schedule).
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        if let Some((last, _)) = self.samples.back() {
            debug_assert!(*last <= at, "trend samples must be time-ordered");
        }
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back((at, bytes));
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<(SimTime, u64)> {
        self.samples.back().copied()
    }

    /// Estimated allocation rate in bytes per second (the slope of the
    /// fitted line). Returns 0.0 with fewer than two samples.
    pub fn slope_bytes_per_sec(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        // Least squares over (t_i, y_i) with t in seconds relative to the
        // first sample to keep the numbers well-conditioned.
        let t0 = self.samples.front().expect("non-empty").0;
        let n = self.samples.len() as f64;
        let mut sum_t = 0.0;
        let mut sum_y = 0.0;
        let mut sum_tt = 0.0;
        let mut sum_ty = 0.0;
        for (t, y) in &self.samples {
            let x = t.saturating_since(t0).as_secs_f64();
            let y = *y as f64;
            sum_t += x;
            sum_y += y;
            sum_tt += x * x;
            sum_ty += x * y;
        }
        let denom = n * sum_tt - sum_t * sum_t;
        if denom.abs() < 1e-12 {
            // All samples at the same instant: no usable slope.
            return 0.0;
        }
        (n * sum_ty - sum_t * sum_y) / denom
    }

    /// Predict usage `horizon` after the latest sample.
    ///
    /// The prediction is `max(current, fit(now + horizon))` clamped at zero:
    /// the broker should react to growth early but should not assume memory
    /// will come back on its own.
    pub fn predict(&self, horizon: SimDuration) -> u64 {
        let Some((_, current)) = self.latest() else {
            return 0;
        };
        let slope = self.slope_bytes_per_sec();
        if slope <= 0.0 {
            return current;
        }
        let extra = slope * horizon.as_secs_f64();
        let predicted = current as f64 + extra;
        predicted.max(current as f64).min(u64::MAX as f64) as u64
    }

    /// Forget all samples (used when a subcomponent resets, e.g. the plan
    /// cache is flushed).
    pub fn reset(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn empty_estimator_predicts_zero() {
        let e = TrendEstimator::new(8);
        assert!(e.is_empty());
        assert_eq!(e.predict(SimDuration::from_secs(10)), 0);
        assert_eq!(e.slope_bytes_per_sec(), 0.0);
    }

    #[test]
    fn single_sample_predicts_current() {
        let mut e = TrendEstimator::new(8);
        e.record(t(1), 500);
        assert_eq!(e.predict(SimDuration::from_secs(100)), 500);
    }

    #[test]
    fn linear_growth_is_extrapolated() {
        let mut e = TrendEstimator::new(8);
        // 100 bytes per second.
        for s in 0..5 {
            e.record(t(s), s * 100);
        }
        let slope = e.slope_bytes_per_sec();
        assert!((slope - 100.0).abs() < 1e-6, "slope {slope}");
        // Latest usage is 400; 10 seconds ahead should be ~1400.
        let p = e.predict(SimDuration::from_secs(10));
        assert!((1350..=1450).contains(&p), "prediction {p}");
    }

    #[test]
    fn shrinking_usage_predicts_current_not_lower() {
        let mut e = TrendEstimator::new(8);
        for s in 0..5 {
            e.record(t(s), 1000 - s * 100);
        }
        assert!(e.slope_bytes_per_sec() < 0.0);
        assert_eq!(e.predict(SimDuration::from_secs(10)), 600);
    }

    #[test]
    fn window_drops_old_samples() {
        let mut e = TrendEstimator::new(3);
        // Old history is flat, recent history grows steeply; with a window of
        // 3 the prediction should follow the steep recent slope.
        for s in 0..10 {
            e.record(t(s), 100);
        }
        e.record(t(10), 1000);
        e.record(t(11), 2000);
        e.record(t(12), 3000);
        assert_eq!(e.len(), 3);
        let p = e.predict(SimDuration::from_secs(1));
        assert!(
            p >= 3900,
            "window should expose the steep recent trend, got {p}"
        );
    }

    #[test]
    fn simultaneous_samples_do_not_divide_by_zero() {
        let mut e = TrendEstimator::new(4);
        e.record(t(5), 100);
        e.record(t(5), 300);
        assert_eq!(e.slope_bytes_per_sec(), 0.0);
        assert_eq!(e.predict(SimDuration::from_secs(5)), 300);
    }

    #[test]
    fn reset_clears_history() {
        let mut e = TrendEstimator::new(4);
        e.record(t(1), 100);
        e.reset();
        assert!(e.is_empty());
        assert_eq!(e.predict(SimDuration::from_secs(1)), 0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_window_rejected() {
        let _ = TrendEstimator::new(1);
    }
}
