//! System-wide memory pressure levels.
//!
//! The broker exposes a coarse pressure signal that other policies key off —
//! in particular the dynamic gateway thresholds of
//! `throttledb-core` ("the monitor memory thresholds for the larger gateways
//! \[are\] dynamic ... based on the broker memory target").

use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse classification of how close total brokered usage is to the
/// physical memory limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PressureLevel {
    /// Plenty of headroom; the broker takes no action.
    Low,
    /// Usage (or predicted usage) is approaching the limit; consumers should
    /// moderate optional allocations.
    Medium,
    /// Usage is at or beyond the limit; shrink notifications are being sent.
    High,
}

impl PressureLevel {
    /// Classify a utilization ratio (`used / brokered`) given the two
    /// configured thresholds.
    pub fn from_utilization(utilization: f64, medium_at: f64, high_at: f64) -> Self {
        debug_assert!(medium_at < high_at);
        if utilization >= high_at {
            PressureLevel::High
        } else if utilization >= medium_at {
            PressureLevel::Medium
        } else {
            PressureLevel::Low
        }
    }

    /// True when any throttling/shrinking behaviour should be active.
    pub fn is_constrained(self) -> bool {
        !matches!(self, PressureLevel::Low)
    }
}

impl fmt::Display for PressureLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PressureLevel::Low => "low",
            PressureLevel::Medium => "medium",
            PressureLevel::High => "high",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_respects_thresholds() {
        assert_eq!(
            PressureLevel::from_utilization(0.10, 0.8, 0.95),
            PressureLevel::Low
        );
        assert_eq!(
            PressureLevel::from_utilization(0.80, 0.8, 0.95),
            PressureLevel::Medium
        );
        assert_eq!(
            PressureLevel::from_utilization(0.94, 0.8, 0.95),
            PressureLevel::Medium
        );
        assert_eq!(
            PressureLevel::from_utilization(0.95, 0.8, 0.95),
            PressureLevel::High
        );
        assert_eq!(
            PressureLevel::from_utilization(1.50, 0.8, 0.95),
            PressureLevel::High
        );
    }

    #[test]
    fn ordering_is_low_to_high() {
        assert!(PressureLevel::Low < PressureLevel::Medium);
        assert!(PressureLevel::Medium < PressureLevel::High);
    }

    #[test]
    fn constrained_excludes_low() {
        assert!(!PressureLevel::Low.is_constrained());
        assert!(PressureLevel::Medium.is_constrained());
        assert!(PressureLevel::High.is_constrained());
    }

    #[test]
    fn display_labels() {
        assert_eq!(PressureLevel::Low.to_string(), "low");
        assert_eq!(PressureLevel::Medium.to_string(), "medium");
        assert_eq!(PressureLevel::High.to_string(), "high");
    }
}
