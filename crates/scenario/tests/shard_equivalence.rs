//! Differential determinism harness for the sharded arrival plane.
//!
//! Every property case builds one randomized small scenario — a phase
//! schedule over mixed workload blends and client counts, a randomized set
//! of open-loop arrival sources (Poisson / MMPP / bounded-Pareto /
//! diurnal), optionally a mid-run fault window, and a random seed — then
//! runs it three times: single-threaded, at `--shards 2`, and at
//! `--shards 4`. The recorded trace, the per-phase reports, the arrival
//! digest and every determinism-bearing counter must be byte-identical
//! across the three runs.
//!
//! This is the tentpole's contract stated as a property: the shard count
//! is a wall-clock knob, never a semantics knob. The single-threaded run
//! is the oracle; any divergence in event ordering, sequence-number
//! assignment, RNG stream consumption or shed accounting shows up as a
//! trace or digest mismatch here before it could reach a golden file.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use throttledb_engine::{ArrivalSourceConfig, ServerConfig, WorkloadProfiles};
use throttledb_scenario::{FaultPlan, Phase, Scenario, ScenarioOutcome, ScenarioRunner};
use throttledb_sim::{ArrivalProcess, SimDuration};
use throttledb_workload::WorkloadMix;

use throttledb_engine::FaultKind;

/// The shared base machine: the paper's quick profile, no warm-up
/// exclusion, one workload class. Every generated scenario starts here so
/// one characterization pass (the expensive part — real optimizer
/// compilations) covers all cases.
fn base_config(seed: u64) -> ServerConfig {
    let mut base = ServerConfig::quick(1, true);
    base.warmup = SimDuration::ZERO;
    base.seed = seed;
    base
}

fn profiles() -> Arc<WorkloadProfiles> {
    static PROFILES: OnceLock<Arc<WorkloadProfiles>> = OnceLock::new();
    PROFILES
        .get_or_init(|| Arc::new(WorkloadProfiles::characterize_full(&base_config(2007))))
        .clone()
}

/// Decode one arrival-source knob tuple into a source config. The knobs
/// span all four arrival-process families at rates that keep a case fast
/// while still crossing the concurrency cap (small `max_in_flight` forces
/// shed traffic through the sharded bulk-shed path).
fn source(index: usize, kind: u8, rate: u32, cap: u32) -> ArrivalSourceConfig {
    let process = match kind {
        0 => ArrivalProcess::Poisson {
            rate_per_sec: 0.5 + rate as f64,
        },
        1 => ArrivalProcess::Mmpp {
            calm_rate_per_sec: 0.2 + rate as f64 * 0.2,
            burst_rate_per_sec: 2.0 + rate as f64 * 2.0,
            mean_calm_secs: 20.0,
            mean_burst_secs: 5.0,
        },
        2 => ArrivalProcess::BoundedPareto {
            alpha: 1.5,
            min_secs: 0.2,
            max_secs: 60.0,
        },
        _ => ArrivalProcess::Diurnal {
            base_rate_per_sec: 0.5 + rate as f64 * 0.3,
            amplitude: 0.8,
            period_secs: 45.0,
        },
    };
    ArrivalSourceConfig {
        name: format!("src-{index}"),
        process,
        class: 0,
        max_in_flight: cap,
        modeled_clients: 1_000,
    }
}

/// Build the scenario a case describes. Called once per compared run so
/// each run owns an identical, independently constructed scenario.
fn build(
    seed: u64,
    phase_knobs: &[(u8, u32, u64)],
    source_knobs: &[(u8, u32, u32)],
    fault_knob: u8,
) -> Scenario {
    let mut base = base_config(seed);
    base.arrivals = source_knobs
        .iter()
        .enumerate()
        .map(|(i, &(kind, rate, cap))| source(i, kind, rate, cap))
        .collect();
    let mixes = [
        WorkloadMix::default(),
        WorkloadMix::sales_only(),
        WorkloadMix::new(0.2, 0.4, 0.4),
    ];
    // A scenario must drive *some* load; when the generator picks neither
    // sources nor clients, deterministically give the first phase one
    // client (every compared run rebuilds the same scenario, so the fixup
    // cannot skew the differential).
    let idle = source_knobs.is_empty() && phase_knobs.iter().all(|&(_, clients, _)| clients == 0);
    let phases: Vec<Phase> = phase_knobs
        .iter()
        .enumerate()
        .map(|(i, &(mix, clients, secs))| {
            let clients = if idle && i == 0 { 1 } else { clients };
            Phase::steady(
                format!("p{i}"),
                SimDuration::from_secs(secs),
                clients,
                mixes[mix as usize],
            )
        })
        .collect();
    let mut scenario = Scenario::new(
        "shard_equivalence",
        "randomized differential scenario",
        base,
        phases,
    )
    .with_seed(seed);
    // Fault windows sit well inside the shortest possible schedule (one
    // 45 s phase), so the plan always validates.
    let fault = match fault_knob {
        0 => Some(FaultKind::CompileStall { multiplier: 4.0 }),
        1 => Some(FaultKind::SlotLoss { slots: 4 }),
        2 => Some(FaultKind::ClientSurge { extra_clients: 3 }),
        _ => None,
    };
    if let Some(kind) = fault {
        scenario = scenario.with_faults(FaultPlan::new().with(
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
            kind,
        ));
    }
    scenario
}

fn run(scenario: Scenario, shards: u32) -> ScenarioOutcome {
    ScenarioRunner::new(scenario)
        .record_trace(true)
        .with_profiles(profiles())
        .with_shards(shards)
        .run()
}

/// Assert two outcomes are indistinguishable: trace bytes, phase reports,
/// the arrival digest, and every counter a sweep cell would publish.
fn assert_equivalent(oracle: &ScenarioOutcome, sharded: &ScenarioOutcome, shards: u32) {
    let tag = format!("shards={shards}");
    assert_eq!(oracle.phases, sharded.phases, "{tag}: phase reports");
    assert_eq!(
        oracle.trace.as_ref().expect("recording on").encode(),
        sharded.trace.as_ref().expect("recording on").encode(),
        "{tag}: trace bytes"
    );
    let (a, b) = (&oracle.metrics, &sharded.metrics);
    assert_eq!(a.arrival_digest, b.arrival_digest, "{tag}: arrival digest");
    assert_eq!(a.arrivals, b.arrivals, "{tag}: arrivals");
    assert_eq!(a.arrivals_admitted, b.arrivals_admitted, "{tag}: admitted");
    assert_eq!(a.arrivals_shed, b.arrivals_shed, "{tag}: shed");
    assert_eq!(a.completed.total(), b.completed.total(), "{tag}: completed");
    assert_eq!(a.failed.total(), b.failed.total(), "{tag}: failed");
    assert_eq!(
        a.events_dispatched, b.events_dispatched,
        "{tag}: events dispatched"
    );
    assert_eq!(
        a.peak_queue_depth, b.peak_queue_depth,
        "{tag}: peak queue depth"
    );
}

proptest! {
    #[test]
    fn sharded_runs_are_byte_identical_to_single_threaded(
        seed in 0u64..1_000_000,
        phase_knobs in proptest::collection::vec((0u8..3, 0u32..5, 45u64..90), 1..3),
        source_knobs in proptest::collection::vec((0u8..4, 0u32..4, 1u32..9), 0..3),
        fault_knob in 0u8..8,
    ) {
        let oracle = run(build(seed, &phase_knobs, &source_knobs, fault_knob), 1);
        for shards in [2u32, 4] {
            let sharded = run(build(seed, &phase_knobs, &source_knobs, fault_knob), shards);
            assert_equivalent(&oracle, &sharded, shards);
        }
    }
}
