//! Cross-format trace contracts:
//!
//! * arbitrary event streams — not just streams the engine can produce —
//!   survive a v2 encode/decode round trip bit-exactly (property test);
//! * every committed v1 golden trace transcodes v1 → v2 → v1
//!   byte-identically, so the binary plane is provably lossless against
//!   the files reviewers actually diff;
//! * recording through a streaming [`TraceSink`] yields exactly the same
//!   event stream as the buffered recorder, so `--trace-v2` runs are
//!   interchangeable with `--trace` runs.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use throttledb_engine::{
    BreakerState, FailureKind, ServerConfig, TraceEvent, TraceSink, WorkloadProfiles,
};
use throttledb_scenario::{
    replay_v2, transcode_v1_to_v2, transcode_v2_to_v1, Phase, Scenario, ScenarioRunner, Trace,
    TraceReaderV2, TraceWriterV2,
};
use throttledb_sim::{SimDuration, SimTime};
use throttledb_workload::WorkloadMix;

/// Map a generated operation tuple onto one of the 14 event kinds. The
/// fields deliberately include extreme values (u64::MAX deltas, classes
/// past the 2-bit fold, non-monotone times) so every escape path of the
/// codec gets exercised.
fn build_event(kind: u8, at: u64, a: u64, b: u64, c: u64) -> TraceEvent {
    let at = SimTime::from_micros(at);
    match kind % 14 {
        0 => TraceEvent::PhaseStart {
            at,
            // A tiny name alphabet forces both the inline-string and the
            // interned-reference encodings.
            name: format!("phase {}", a % 3),
            clients: b as u32,
        },
        1 => TraceEvent::Submitted {
            at,
            query: a,
            client: b as u32,
            class: (c % 7) as usize,
        },
        2 => TraceEvent::GatewayBlocked {
            at,
            query: a,
            level: (b % 9) as usize,
        },
        3 => TraceEvent::BestEffort { at, query: a },
        4 => TraceEvent::GrantQueued {
            at,
            query: a,
            bytes: b.wrapping_mul(c),
        },
        5 => TraceEvent::ExecStarted {
            at,
            query: a,
            bytes: b,
        },
        6 => TraceEvent::Completed { at, query: a },
        7 => TraceEvent::Failed {
            at,
            query: a,
            kind: match b % 3 {
                0 => FailureKind::OutOfMemory,
                1 => FailureKind::CompileTimeout,
                _ => FailureKind::GrantTimeout,
            },
        },
        8 => TraceEvent::CompilePeak {
            at,
            bytes: a.wrapping_mul(b),
        },
        9 => TraceEvent::FaultInjected {
            at,
            fault: a as u32,
        },
        10 => TraceEvent::FaultCleared {
            at,
            fault: a as u32,
        },
        11 => TraceEvent::Shed { at, query: a },
        12 => TraceEvent::BreakerTransition {
            at,
            class: a as usize,
            state: match b % 3 {
                0 => BreakerState::Closed,
                1 => BreakerState::Open,
                _ => BreakerState::HalfOpen,
            },
        },
        _ => TraceEvent::End { at },
    }
}

proptest! {
    /// Any event stream — monotone or not, engine-producible or not —
    /// round-trips through the v2 frame codec bit-exactly, and two
    /// encodes of the same stream produce the same digest.
    #[test]
    fn prop_arbitrary_event_streams_round_trip_through_v2(
        ops in proptest::collection::vec(
            (0u8..14, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..300),
            1..120,
        ),
    ) {
        let events: Vec<TraceEvent> = ops
            .into_iter()
            // The fifth field is derived, keeping the generated tuple
            // within the stub's 4-arity while still varying every field.
            .map(|(kind, at, a, b)| build_event(kind, at, a, b, a.rotate_left(17) ^ b))
            .collect();
        let encode = || {
            let mut bytes = Vec::new();
            let mut w = TraceWriterV2::new(&mut bytes, &[], 1).unwrap();
            for ev in &events {
                w.write_event(ev).unwrap();
            }
            let summary = w.finish().unwrap();
            (bytes, summary)
        };
        let (bytes, summary) = encode();
        let (again, summary_again) = encode();
        prop_assert_eq!(&bytes, &again, "v2 encoding must be deterministic");
        prop_assert_eq!(summary.digest, summary_again.digest);
        prop_assert_eq!(summary.events, events.len() as u64);

        let decoded: Result<Vec<_>, _> = TraceReaderV2::new(&bytes[..]).unwrap().collect();
        prop_assert_eq!(decoded.unwrap(), events);
    }
}

#[test]
fn every_committed_golden_transcodes_v1_v2_v1_byte_identically() {
    let golden_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    let mut checked = 0;
    for entry in std::fs::read_dir(golden_dir).expect("golden dir must exist") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("trace") {
            continue;
        }
        let v1_text = std::fs::read_to_string(&path).unwrap();
        let mut v2 = Vec::new();
        let summary = transcode_v1_to_v2(v1_text.as_bytes(), &mut v2)
            .unwrap_or_else(|e| panic!("{}: v1->v2 failed: {e}", path.display()));
        assert!(
            v2.len() < v1_text.len(),
            "{}: v2 ({} bytes) not smaller than v1 ({} bytes)",
            path.display(),
            v2.len(),
            v1_text.len()
        );
        let mut back = Vec::new();
        let events = transcode_v2_to_v1(&v2[..], &mut back)
            .unwrap_or_else(|e| panic!("{}: v2->v1 failed: {e}", path.display()));
        assert_eq!(events, summary.events);
        assert_eq!(
            String::from_utf8(back).unwrap(),
            v1_text,
            "{}: v1 -> v2 -> v1 must be byte-identical",
            path.display()
        );
        // The binary stream replays to the same reports as the text one.
        let replay = replay_v2(&v2[..]).unwrap();
        let trace = Trace::decode(&v1_text).unwrap();
        assert_eq!(replay.reports, trace.replay(), "{}", path.display());
        assert_eq!(
            replay.config_digest, 0,
            "transcoded streams carry no config"
        );
        checked += 1;
    }
    assert!(checked >= 8, "expected all golden traces, found {checked}");
}

#[test]
fn streaming_sink_observes_exactly_the_buffered_event_stream() {
    let mut base = ServerConfig::quick(8, true);
    base.warmup = SimDuration::ZERO;
    base.seed = 2007;
    let phases = vec![
        Phase::steady(
            "steady",
            SimDuration::from_secs(240),
            6,
            WorkloadMix::paper_default(0.05),
        ),
        Phase::steady(
            "storm",
            SimDuration::from_secs(240),
            8,
            WorkloadMix::sales_only(),
        ),
    ];
    let scenario = Scenario::new("sink_probe", "sink equivalence probe", base, phases);
    let profiles = {
        let mut base = ServerConfig::quick(8, true);
        base.warmup = SimDuration::ZERO;
        Arc::new(WorkloadProfiles::characterize_full(&base))
    };

    let catalog = scenario.trace_catalog();
    let config_digest = scenario.config_digest();
    let writer: Rc<RefCell<TraceWriterV2<Vec<u8>>>> = Rc::new(RefCell::new(
        TraceWriterV2::new(Vec::new(), &catalog, config_digest).unwrap(),
    ));
    let outcome = ScenarioRunner::new(scenario)
        .record_trace(true)
        .with_profiles(profiles)
        .with_trace_sink(writer.clone() as Rc<RefCell<dyn TraceSink>>)
        .run();

    let summary = writer.borrow_mut().finish().unwrap();
    let bytes = std::mem::take(writer.borrow_mut().get_mut());
    let buffered = outcome.trace.expect("buffered trace was enabled");
    assert_eq!(summary.events, buffered.len() as u64);

    let decoded: Result<Vec<_>, _> = TraceReaderV2::new(&bytes[..]).unwrap().collect();
    assert_eq!(
        decoded.unwrap(),
        buffered.events(),
        "sink and buffer must observe the same stream"
    );
    // And the stream replays to the live per-phase reports.
    let replay = replay_v2(&bytes[..]).unwrap();
    assert_eq!(replay.reports, outcome.phases);
    assert_eq!(replay.config_digest, config_digest);
    assert_eq!(replay.digest, summary.digest);
}
