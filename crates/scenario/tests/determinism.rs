//! Scenario determinism and trace record/replay regression contracts:
//!
//! * same seed + same scenario ⇒ identical per-phase metrics and a
//!   byte-identical recorded trace;
//! * replay of a recorded trace reproduces the live run's per-phase
//!   reports (and survives an encode/decode round trip);
//! * a different seed produces a different trace;
//! * the golden traces under `tests/golden/` — recorded on the original
//!   `BinaryHeap` event queue, before the timing-wheel and
//!   template-interning refactor — are still reproduced byte for byte.

use std::sync::Arc;
use throttledb_engine::{ServerConfig, WorkloadProfiles};
use throttledb_scenario::{Phase, Scenario, ScenarioRunner, Trace};
use throttledb_sim::SimDuration;
use throttledb_workload::WorkloadMix;

/// A small three-phase scenario exercising client-count changes, a mix
/// shift, and a grant-budget degradation — quick enough for CI.
fn test_scenario(seed: u64) -> Scenario {
    let mut base = ServerConfig::quick(1, true);
    base.warmup = SimDuration::ZERO;
    base.seed = seed;
    let phases = vec![
        Phase::steady(
            "steady",
            SimDuration::from_secs(420),
            6,
            WorkloadMix::paper_default(0.05),
        ),
        Phase::steady(
            "storm",
            SimDuration::from_secs(300),
            14,
            WorkloadMix::sales_only(),
        )
        .with_think_time(SimDuration::from_secs(3))
        .with_grant_budget_scale(0.5),
        Phase::steady(
            "recovery",
            SimDuration::from_secs(420),
            6,
            WorkloadMix::paper_default(0.05),
        ),
    ];
    Scenario::new("determinism_probe", "test scenario", base, phases)
}

fn profiles() -> Arc<WorkloadProfiles> {
    let mut base = ServerConfig::quick(14, true);
    base.warmup = SimDuration::ZERO;
    Arc::new(WorkloadProfiles::characterize_full(&base))
}

#[test]
fn same_seed_reproduces_reports_and_trace_bytes() {
    let profiles = profiles();
    let run = || {
        ScenarioRunner::new(test_scenario(7))
            .record_trace(true)
            .with_profiles(profiles.clone())
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.phases, b.phases, "per-phase metrics must be seed-stable");
    assert_eq!(a.render_report(), b.render_report());
    let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
    assert_eq!(ta.encode(), tb.encode(), "trace must be byte-identical");
    assert_eq!(ta.digest(), tb.digest());
}

#[test]
fn replay_of_a_recorded_trace_reproduces_the_run() {
    let outcome = ScenarioRunner::new(test_scenario(11))
        .record_trace(true)
        .with_profiles(profiles())
        .run();
    assert_eq!(outcome.phases.len(), 3);
    // The run did real work in every phase.
    for phase in &outcome.phases {
        assert!(phase.submitted > 0, "phase {} idle", phase.name);
        assert!(
            phase.peak_compile_bytes > 0,
            "phase {} no memory",
            phase.name
        );
    }
    let trace = outcome.trace.as_ref().unwrap();

    // Replay straight from the recorded events...
    assert_eq!(trace.replay(), outcome.phases);
    // ...and through a full serialize/deserialize round trip, as a stored
    // golden file would be.
    let decoded = Trace::decode(&trace.encode()).expect("own encoding decodes");
    assert_eq!(decoded.replay(), outcome.phases);
    assert_eq!(decoded.encode(), trace.encode());
}

/// The PR's headline equivalence contract at scenario scope: a constant-
/// population multi-phase run must produce byte-identical traces and
/// identical phase reports whether the client population is materialized
/// (per-client vectors) or cohort-compressed (retry state carried in
/// events, class membership via fenceposts). Mix shifts, think-time
/// overrides and a grant degradation all happen mid-run, so the identity
/// covers the phase-boundary machinery, not just a steady state.
#[test]
fn cohort_compression_is_trace_identical_at_scenario_scope() {
    let scenario = |compressed: bool| {
        let mut base = ServerConfig::quick(1, true);
        base.warmup = SimDuration::ZERO;
        base.seed = 23;
        base.cohort_compressed = compressed;
        let phases = vec![
            Phase::steady(
                "steady",
                SimDuration::from_secs(420),
                10,
                WorkloadMix::paper_default(0.05),
            ),
            Phase::steady(
                "storm",
                SimDuration::from_secs(300),
                10,
                WorkloadMix::sales_only(),
            )
            .with_think_time(SimDuration::from_secs(3))
            .with_grant_budget_scale(0.5),
            Phase::steady(
                "recovery",
                SimDuration::from_secs(420),
                10,
                WorkloadMix::paper_default(0.05),
            ),
        ];
        Scenario::new("cohort_probe", "cohort equivalence scenario", base, phases)
    };
    let profiles = profiles();
    let run = |compressed| {
        ScenarioRunner::new(scenario(compressed))
            .record_trace(true)
            .with_profiles(profiles.clone())
            .run()
    };
    let materialized = run(false);
    let compressed = run(true);
    assert_eq!(
        materialized.phases, compressed.phases,
        "cohort compression changed the per-phase reports"
    );
    assert!(
        materialized.phases.iter().map(|p| p.submitted).sum::<u64>() > 0,
        "equivalence probe did no work"
    );
    assert_eq!(
        materialized.trace.unwrap().encode(),
        compressed.trace.unwrap().encode(),
        "cohort compression changed the recorded trace"
    );
}

/// Open-loop scenarios run end to end through the scenario runner: a
/// zero-client phase schedule with a Poisson source offers load, admits
/// work, folds a non-trivial arrival digest, and stays deterministic
/// (byte-identical traces, identical digests) across repeated runs.
#[test]
fn open_loop_scenario_is_deterministic_and_accounts_arrivals() {
    let profiles = profiles();
    let run = || {
        let s = Scenario::builtin("open_loop_poisson", throttledb_scenario::Scale::Quick)
            .expect("open_loop_poisson registered");
        ScenarioRunner::new(s)
            .record_trace(true)
            .with_profiles(profiles.clone())
            .run()
    };
    let a = run();
    let b = run();
    assert!(a.metrics.arrivals > 0, "source offered no arrivals");
    assert_eq!(
        a.metrics.arrivals,
        a.metrics.arrivals_admitted + a.metrics.arrivals_shed,
        "every arrival must be admitted or shed"
    );
    assert!(
        a.phases[0].submitted > 0,
        "no source query entered the pipeline"
    );
    assert_eq!(a.metrics.arrival_digest, b.metrics.arrival_digest);
    assert_eq!(a.phases, b.phases);
    let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
    assert_eq!(
        ta.encode(),
        tb.encode(),
        "open-loop trace must be seed-stable"
    );
    // And the recorded trace replays to the live per-phase reports, same as
    // the closed-loop contract.
    assert_eq!(ta.replay(), a.phases);
}

#[test]
fn different_seeds_diverge() {
    let profiles = profiles();
    let a = ScenarioRunner::new(test_scenario(1))
        .record_trace(true)
        .with_profiles(profiles.clone())
        .run();
    let b = ScenarioRunner::new(test_scenario(2))
        .record_trace(true)
        .with_profiles(profiles)
        .run();
    assert_ne!(
        a.trace.unwrap().encode(),
        b.trace.unwrap().encode(),
        "different seeds must produce different traces"
    );
}

/// The scheduling-semantics regression gate: any engine refactor must
/// reproduce these committed traces byte for byte — event order,
/// timestamps, ids and all — or it changed observable behaviour. The two
/// fault-free goldens date back to the `BinaryHeap`-era engine and were
/// re-recorded once, when the exponential retry backoff replaced the flat
/// retry delay (a deliberate timing change for consecutive failures); the
/// five chaos goldens pin the fault-injection layer, including the
/// recorded `fault`/`shed`/`breaker` lines. The open-loop golden is the
/// one whose `--shards 4` replay drives a *live* arrival plane (the
/// closed-loop goldens have no sources, so their sharded run is the
/// single-threaded path by construction): it pins the sharded engine's
/// merged global order against the codec-v1 bytes.
#[test]
fn golden_traces_replay_byte_identically() {
    let goldens: [(&str, &str); 8] = [
        (
            "compile_storm",
            include_str!("golden/compile_storm_quick_2007.trace"),
        ),
        (
            "open_loop_poisson",
            include_str!("golden/open_loop_poisson_quick_2007.trace"),
        ),
        (
            "paper_figure3",
            include_str!("golden/paper_figure3_quick_2007.trace"),
        ),
        (
            "memory_leak_creep",
            include_str!("golden/memory_leak_creep_quick_2007.trace"),
        ),
        (
            "compile_stall",
            include_str!("golden/compile_stall_quick_2007.trace"),
        ),
        (
            "slot_failure",
            include_str!("golden/slot_failure_quick_2007.trace"),
        ),
        (
            "retry_storm",
            include_str!("golden/retry_storm_quick_2007.trace"),
        ),
        (
            "thundering_herd_recovery",
            include_str!("golden/thundering_herd_recovery_quick_2007.trace"),
        ),
    ];
    for (name, golden) in goldens {
        // Mirror the scenario_runner CLI exactly: built-in scenario, quick
        // scale, seed 2007. The profiles are characterized once per
        // scenario and shared by both runs below — byte-identical to what
        // the CLI computes internally, since characterization is a pure
        // function of the runtime config.
        let scenario = || {
            Scenario::builtin(name, throttledb_scenario::Scale::Quick)
                .expect("builtin exists")
                .with_seed(2007)
        };
        let profiles = Arc::new(WorkloadProfiles::characterize_full(
            &scenario().runtime_config(),
        ));
        let outcome = ScenarioRunner::new(scenario())
            .record_trace(true)
            .with_profiles(profiles.clone())
            .run();
        let live = outcome.trace.as_ref().expect("recording enabled");
        assert_eq!(
            live.encode(),
            golden,
            "{name}: live trace no longer matches the committed golden file"
        );
        // And the stored golden replays to the live run's phase reports.
        let stored = Trace::decode(golden).expect("golden decodes");
        assert_eq!(
            stored.replay(),
            outcome.phases,
            "{name}: golden replay diverges from live phase reports"
        );
        // The sharded engine must reproduce every committed golden byte
        // for byte too: the shard count may never become visible in a
        // trace. (The codec is unchanged at v1 — sharded runs serialize in
        // the merged global order, so no golden needed re-recording.)
        let sharded = ScenarioRunner::new(scenario())
            .record_trace(true)
            .with_profiles(profiles)
            .with_shards(4)
            .run();
        assert_eq!(
            sharded.trace.as_ref().expect("recording enabled").encode(),
            golden,
            "{name}: --shards 4 trace no longer matches the committed golden file"
        );
        assert_eq!(
            sharded.phases, outcome.phases,
            "{name}: --shards 4 phase reports diverge"
        );
    }
}

/// The retry-storm golden is the one chaos scenario whose fault window is
/// violent enough to open breakers: its trace must carry every new line
/// kind, and the shed count must survive decode → replay.
#[test]
fn retry_storm_golden_records_the_degradation_machinery() {
    let golden = include_str!("golden/retry_storm_quick_2007.trace");
    for prefix in ["fault ", "breaker ", "shed "] {
        assert!(
            golden.lines().any(|l| l.starts_with(prefix)),
            "golden has no {prefix:?} lines"
        );
    }
    let reports = Trace::decode(golden).expect("golden decodes").replay();
    assert!(
        reports.iter().map(|p| p.shed).sum::<u64>() > 0,
        "replay lost the shed count"
    );
}

#[test]
fn storm_phase_reports_the_overload() {
    let outcome = ScenarioRunner::new(test_scenario(7))
        .record_trace(false)
        .with_profiles(profiles())
        .run();
    assert!(outcome.trace.is_none());
    let steady = &outcome.phases[0];
    let storm = &outcome.phases[1];
    // The storm more than doubles the population with impatient all-SALES
    // clients: the submission rate must rise.
    let rate = |p: &throttledb_scenario::PhaseReport| {
        p.submitted as f64 / p.end.saturating_since(p.start).as_secs_f64()
    };
    assert!(
        rate(storm) > rate(steady),
        "storm {:.4}/s vs steady {:.4}/s",
        rate(storm),
        rate(steady)
    );
    // Cumulative metrics agree with the per-phase decomposition.
    assert_eq!(outcome.metrics.completed.total(), outcome.total_completed());
}
