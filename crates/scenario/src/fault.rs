//! Declarative fault plans: the scenario half of the chaos layer.
//!
//! A [`FaultPlan`] is an ordered list of timed [`FaultEvent`]s attached to a
//! [`crate::Scenario`]. Times are *offsets from the run start*, so a plan is
//! portable across scales and phase schedules; the runner converts each
//! event into an absolute engine [`FaultSpec`] and installs the lot via
//! [`throttledb_engine::Server::install_faults`] before the first phase
//! begins. From there the engine treats faults as ordinary timing-wheel
//! events: same seed ⇒ byte-identical trace, including the recorded
//! `fault`/`shed`/`breaker` lines.

use serde::{Deserialize, Serialize};
use throttledb_engine::{FaultKind, FaultSpec};
use throttledb_sim::{SimDuration, SimTime};

/// One timed fault, expressed relative to the run start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Offset from the start of the run at which the fault begins.
    pub at: SimDuration,
    /// How long the fault stays active.
    pub duration: SimDuration,
    /// What breaks (see [`FaultKind`]).
    pub kind: FaultKind,
}

impl FaultEvent {
    /// A fault event from parts.
    pub fn new(at: SimDuration, duration: SimDuration, kind: FaultKind) -> Self {
        FaultEvent { at, duration, kind }
    }

    /// The run-relative instant the fault clears.
    pub fn end(&self) -> SimDuration {
        self.at + self.duration
    }

    /// The absolute engine spec for this event.
    fn to_spec(self) -> FaultSpec {
        FaultSpec {
            start: SimTime::ZERO + self.at,
            duration: self.duration,
            kind: self.kind,
        }
    }
}

/// The fault schedule of a scenario. Empty by default — a scenario without
/// a plan runs exactly as it did before the chaos layer existed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled fault events, in any order (the engine's timing wheel
    /// sequences them).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder: add one fault event.
    pub fn with(mut self, at: SimDuration, duration: SimDuration, kind: FaultKind) -> Self {
        self.events.push(FaultEvent::new(at, duration, kind));
        self
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The largest number of extra clients any [`FaultKind::ClientSurge`]
    /// event adds — the headroom [`crate::Scenario::runtime_config`] builds
    /// into the server's client table so a surge always has inactive
    /// clients to wake.
    pub fn max_surge_clients(&self) -> u32 {
        self.events
            .iter()
            .map(|e| match e.kind {
                FaultKind::ClientSurge { extra_clients } => extra_clients,
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Convert to absolute engine specs, ready for
    /// [`throttledb_engine::Server::install_faults`].
    pub fn to_specs(&self) -> Vec<FaultSpec> {
        self.events.iter().map(|e| e.to_spec()).collect()
    }

    /// Panics when any event is malformed or would outlive `total` (the
    /// scenario's phase-schedule duration): a fault that starts after the
    /// run ends would silently never fire.
    pub fn validate(&self, total: SimDuration) {
        for event in &self.events {
            event.to_spec().validate();
            assert!(
                event.at < total,
                "fault at {}s starts after the {}s run ends",
                event.at.as_secs_f64(),
                total.as_secs_f64()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_convert_to_absolute_specs() {
        let plan = FaultPlan::new()
            .with(
                SimDuration::from_secs(600),
                SimDuration::from_secs(300),
                FaultKind::CompileStall { multiplier: 4.0 },
            )
            .with(
                SimDuration::from_secs(1200),
                SimDuration::from_secs(60),
                FaultKind::ClientSurge { extra_clients: 12 },
            );
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.max_surge_clients(), 12);
        plan.validate(SimDuration::from_secs(3600));
        let specs = plan.to_specs();
        assert_eq!(specs[0].start, SimTime::from_secs(600));
        assert_eq!(specs[0].end(), SimTime::from_secs(900));
        assert_eq!(specs[1].kind, FaultKind::ClientSurge { extra_clients: 12 });
    }

    #[test]
    fn empty_plan_is_the_default_and_needs_no_headroom() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.max_surge_clients(), 0);
        assert!(plan.to_specs().is_empty());
        plan.validate(SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "starts after")]
    fn events_beyond_the_run_are_rejected() {
        FaultPlan::new()
            .with(
                SimDuration::from_secs(100),
                SimDuration::from_secs(10),
                FaultKind::SlotLoss { slots: 2 },
            )
            .validate(SimDuration::from_secs(50));
    }
}
