//! The scenario runner: drives the DES engine through a phase schedule.
//!
//! The runner owns the bridge between the declarative [`Scenario`] model
//! and the engine's phase hooks: it sizes the server for the largest
//! phase, then alternates phase mutations (client count, mix, overrides)
//! with [`Server::run_until`] windows at the phase boundaries, snapshotting
//! the cumulative metrics at each boundary to produce per-phase
//! [`PhaseReport`]s. With trace recording on, the run also yields a
//! [`Trace`] whose replay must reproduce the same reports — the
//! regression contract of the trace subsystem.

use crate::scenario::Scenario;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use throttledb_engine::{RunMetrics, Server, TraceSink, WorkloadProfiles};
use throttledb_sim::SimTime;

/// Admission-control counters of one phase, plus the phase's compile-memory
/// peak. Derivable both from live metrics snapshots and from a recorded
/// trace — [`Trace::replay`] must reproduce these exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase name.
    pub name: String,
    /// Phase start (virtual time).
    pub start: SimTime,
    /// Phase end (exclusive).
    pub end: SimTime,
    /// Active clients during the phase.
    pub clients: u32,
    /// Queries submitted in the phase.
    pub submitted: u64,
    /// Queries completed in the phase.
    pub completed: u64,
    /// Queries failed in the phase.
    pub failed: u64,
    /// Arrivals shed at the door by an open circuit breaker.
    pub shed: u64,
    /// Out-of-memory failures.
    pub oom_failures: u64,
    /// Compile-gateway timeout failures.
    pub compile_timeouts: u64,
    /// Grant-wait timeout failures.
    pub grant_timeouts: u64,
    /// Best-effort plans produced.
    pub best_effort_plans: u64,
    /// Peak aggregate compilation memory observed in the phase.
    pub peak_compile_bytes: u64,
}

impl PhaseReport {
    /// Completions per simulated minute (throughput at phase granularity).
    pub fn completions_per_minute(&self) -> f64 {
        let mins = self.end.saturating_since(self.start).as_secs_f64() / 60.0;
        if mins == 0.0 {
            0.0
        } else {
            self.completed as f64 / mins
        }
    }
}

impl fmt::Display for PhaseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>7} {:>7} {:>6} {:>6} {:>5} {:>5} {:>5} {:>5} {:>6} {:>9.1} {:>9.0}",
            self.name,
            format!("{}s", self.start.as_secs()),
            format!("{}s", self.end.as_secs()),
            self.clients,
            self.submitted,
            self.completed,
            self.failed,
            self.shed,
            self.best_effort_plans,
            format!(
                "{}/{}/{}",
                self.oom_failures, self.compile_timeouts, self.grant_timeouts
            ),
            self.completions_per_minute(),
            self.peak_compile_bytes as f64 / 1e6,
        )
    }
}

/// Everything a scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario's name.
    pub scenario: String,
    /// The scenario's one-line description.
    pub description: String,
    /// One report per phase, in schedule order.
    pub phases: Vec<PhaseReport>,
    /// The run's cumulative metrics (series, gauges, per-class breakdown).
    pub metrics: RunMetrics,
    /// The recorded admission/grant trace, when recording was enabled.
    pub trace: Option<Trace>,
}

impl ScenarioOutcome {
    /// Render the per-phase report as a fixed-width text table. Two
    /// outcomes with equal phase reports render byte-identically, which is
    /// what the trace-replay regression check compares.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== scenario: {} ==\n", self.scenario));
        out.push_str(&format!(
            "{:<14} {:>7} {:>7} {:>6} {:>6} {:>5} {:>5} {:>5} {:>5} {:>6} {:>9} {:>9}\n",
            "phase",
            "start",
            "end",
            "users",
            "subm",
            "done",
            "fail",
            "shed",
            "b-eff",
            "o/c/g",
            "done/min",
            "peak MB"
        ));
        for phase in &self.phases {
            out.push_str(&format!("{phase}\n"));
        }
        out
    }

    /// Total completions across all phases.
    pub fn total_completed(&self) -> u64 {
        self.phases.iter().map(|p| p.completed).sum()
    }
}

/// Cumulative-counter snapshot taken at a phase boundary.
#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    submitted: u64,
    completed: u64,
    failed: u64,
    shed: u64,
    oom: u64,
    compile_timeouts: u64,
    grant_timeouts: u64,
    best_effort: u64,
}

impl Snapshot {
    fn take(server: &Server) -> Snapshot {
        let m = server.metrics();
        Snapshot {
            submitted: server.queries_submitted(),
            completed: m.completed.total(),
            failed: m.failed.total(),
            shed: m.shed,
            oom: m.oom_failures,
            compile_timeouts: m.compile_timeouts,
            grant_timeouts: m.grant_timeouts,
            best_effort: m.best_effort_plans,
        }
    }
}

/// Runs a [`Scenario`] against the discrete-event engine.
///
/// # Examples
///
/// ```
/// use throttledb_engine::ServerConfig;
/// use throttledb_scenario::{Phase, Scenario, ScenarioRunner};
/// use throttledb_sim::SimDuration;
/// use throttledb_workload::WorkloadMix;
///
/// // Two five-minute phases: a small steady population, then a busier
/// // all-SALES window.
/// let mut base = ServerConfig::quick(4, true);
/// base.warmup = SimDuration::ZERO;
/// let phases = vec![
///     Phase::steady("warm", SimDuration::from_secs(300), 2, WorkloadMix::default()),
///     Phase::steady("busy", SimDuration::from_secs(300), 4, WorkloadMix::sales_only()),
/// ];
/// let scenario = Scenario::new("demo", "doctest scenario", base, phases);
///
/// let outcome = ScenarioRunner::new(scenario).record_trace(true).run();
/// assert_eq!(outcome.phases.len(), 2);
/// assert!(outcome.phases.iter().map(|p| p.submitted).sum::<u64>() > 0);
/// // The recorded trace replays to the same per-phase reports.
/// assert_eq!(outcome.trace.unwrap().replay(), outcome.phases);
/// ```
pub struct ScenarioRunner {
    scenario: Scenario,
    record: bool,
    profiles: Option<Arc<WorkloadProfiles>>,
    shards: u32,
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
}

impl fmt::Debug for ScenarioRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioRunner")
            .field("scenario", &self.scenario)
            .field("record", &self.record)
            .field("profiles", &self.profiles)
            .field("shards", &self.shards)
            .field("sink", &self.sink.as_ref().map(|_| "TraceSink"))
            .finish()
    }
}

impl ScenarioRunner {
    /// A runner for `scenario` (trace recording off by default).
    pub fn new(scenario: Scenario) -> Self {
        ScenarioRunner {
            scenario,
            record: false,
            profiles: None,
            shards: 1,
            sink: None,
        }
    }

    /// Enable or disable admission/grant trace recording.
    pub fn record_trace(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// Install a streaming trace consumer (see
    /// [`throttledb_engine::TraceSink`]): every trace event of the run is
    /// forwarded to it as it happens, independently of the buffered
    /// recording toggled by [`ScenarioRunner::record_trace`]. This is how
    /// `scenario_runner --trace-v2` serializes a 10M-arrival run at O(1)
    /// memory — the sink is a [`crate::TraceWriterV2`] over a file.
    pub fn with_trace_sink(mut self, sink: Rc<RefCell<dyn TraceSink>>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Run across `shards` generator shards (default 1, the
    /// single-threaded path). Any value produces byte-identical traces,
    /// reports and digests — the determinism tests prove it — so this
    /// only trades wall-clock time, never results.
    pub fn with_shards(mut self, shards: u32) -> Self {
        assert!(shards >= 1, "a run needs at least one shard");
        self.shards = shards;
        self
    }

    /// Reuse already-characterized workload profiles instead of compiling
    /// every template through the optimizer again (tests and sweeps share
    /// them; profiles must cover every family the scenario's mixes use).
    pub fn with_profiles(mut self, profiles: Arc<WorkloadProfiles>) -> Self {
        self.profiles = Some(profiles);
        self
    }

    /// Run the scenario to completion.
    pub fn run(self) -> ScenarioOutcome {
        let ScenarioRunner {
            scenario,
            record,
            profiles,
            shards,
            sink,
        } = self;
        scenario.validate();

        let mut config = scenario.runtime_config();
        if shards > 1 {
            config.shards = shards;
        }
        let base_think = config.client_model.mean_think_time;
        let profiles =
            profiles.unwrap_or_else(|| Arc::new(WorkloadProfiles::characterize_full(&config)));

        let mut server = Server::new(config, profiles);
        if record {
            server.enable_trace();
        }
        if let Some(sink) = sink {
            server.set_trace_sink(sink);
        }
        // Faults are ordinary timing-wheel events: installed once, before
        // the first phase, they fire at their absolute offsets regardless
        // of the phase schedule around them.
        server.install_faults(&scenario.faults.to_specs());

        let mut phases = Vec::with_capacity(scenario.phases.len());
        let mut begun = false;
        for phase in &scenario.phases {
            // Apply the phase's bindings at the boundary...
            server.set_workload_mix(phase.mix);
            server.set_mean_think_time(phase.overrides.mean_think_time.unwrap_or(base_think));
            server.set_grant_budget_scale(phase.overrides.grant_budget_scale.unwrap_or(1.0));
            server.set_active_clients(phase.clients);
            server.trace_phase_start(&phase.name, phase.clients);
            if !begun {
                server.begin();
                begun = true;
            }
            // ...then simulate the phase window.
            let start = server.now();
            let end = start + phase.duration;
            let before = Snapshot::take(&server);
            server.run_until(end);
            let after = Snapshot::take(&server);
            phases.push(PhaseReport {
                name: phase.name.clone(),
                start,
                end,
                clients: phase.clients,
                submitted: after.submitted - before.submitted,
                completed: after.completed - before.completed,
                failed: after.failed - before.failed,
                shed: after.shed - before.shed,
                oom_failures: after.oom - before.oom,
                compile_timeouts: after.compile_timeouts - before.compile_timeouts,
                grant_timeouts: after.grant_timeouts - before.grant_timeouts,
                best_effort_plans: after.best_effort - before.best_effort,
                // Attributed from the gauge; the trace replay must agree.
                peak_compile_bytes: 0,
            });
        }

        // Close the stream through the server so the buffered trace and
        // any installed sink observe the same final `End` event.
        server.trace_end();
        let trace = record.then(|| Trace::new(server.take_trace()));
        let metrics = server.finish();
        for report in &mut phases {
            report.peak_compile_bytes = metrics
                .compile_memory
                .max_in_range(report.start, report.end);
        }

        ScenarioOutcome {
            scenario: scenario.name,
            description: scenario.description,
            phases,
            metrics,
            trace,
        }
    }
}
