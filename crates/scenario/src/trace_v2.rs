//! `throttledb-trace v2`: the streaming binary frame codec.
//!
//! The v1 text format (see [`crate::trace`]) stays the golden-file format
//! — diffable, reviewable, stable — but at 10M-arrival scale a formatted
//! line per event makes recording and replay a multi-gigabyte affair. v2
//! is the same event stream as length-prefixed binary frames:
//!
//! * **magic** — the 20 bytes `"throttledb-trace v2\n"`, sniffable against
//!   v1's text header (both start `throttledb-trace v`, the version digit
//!   differs).
//! * **header frame** — varint payload length, then the run's config
//!   digest (8 bytes little-endian, see
//!   [`crate::Scenario::config_digest`]) and the interned phase-name
//!   catalog (varint count, then length-prefixed UTF-8 strings).
//! * **block frames** — varint payload length, then a batch of event
//!   records. The writer flushes a block when its bounded reuse buffer
//!   reaches `BLOCK_TARGET` (just under 4KiB), so the length prefix amortizes to a
//!   fraction of a byte per event and neither side ever buffers more than
//!   one block.
//! * **terminator** — a zero-length frame (single `0x00` byte) followed by
//!   the 8-byte little-endian FNV-1a digest of everything before it.
//!
//! Each record opens with one tag byte: the low nibble is the event kind,
//! the high nibble the time delta since the previous event —
//! `0..=11` microseconds inline, `12/13/14` a 1/2/3-byte little-endian
//! delta following, `15` a zigzag varint (negative or huge deltas; the
//! engine never records those, but arbitrary streams must round-trip).
//! The remaining fields are delta-coded against per-kind state both sides
//! keep in lock-step: query ids against the previous query *of the same
//! event kind* (completion order is near-sorted even when kinds
//! interleave), byte gauges (`grantq`/`exec`/`cpeak`) against the previous
//! value of the same gauge (workloads repeat template footprints, so the
//! common delta is 0), and small closed enums (failure kind, workload
//! class, gateway level) folded into the low two bits of the query-delta
//! varint. Phase names are catalog references (index + 1) with `0`
//! escaping to an inline string both sides then intern, so transcoded
//! streams with an empty catalog still compress repeats.
//!
//! The digest is an incremental FNV-1a fold over 64-bit little-endian
//! words of the stream (length-sealed, so any chunking of the updates
//! yields the same fingerprint), computed frame by frame as the stream is
//! written or read. Producing or checking a trace fingerprint never
//! materializes the stream — and a truncated or corrupted file fails the
//! digest check even when the damage happens to parse. Word folding
//! matters at scale: the codec moves tens of MB/s per core more than a
//! per-byte FNV chain allows.

use crate::runner::PhaseReport;
use crate::trace::{
    decode_line, encode_event_into, StreamingReplay, TraceError, HEADER as V1_HEADER,
};
use std::io::{self, BufRead, Read, Write};
use throttledb_engine::{BreakerState, FailureKind, TraceEvent, TraceSink};
use throttledb_sim::SimTime;

/// Magic bytes opening every v2 trace. Shares the `throttledb-trace v`
/// prefix with the v1 text header so one sniff distinguishes versions.
pub const MAGIC_V2: &[u8] = b"throttledb-trace v2\n";

/// Writer-side flush threshold for the block reuse buffer. Kept under 4KiB
/// so a block's length prefix is at most two varint bytes; one block is
/// the most either side of the codec ever holds in memory.
const BLOCK_TARGET: usize = 3968;

/// Event-kind tags (low nibble of the record's first byte). `0` is
/// reserved so a zeroed byte can never alias a record.
mod tag {
    pub const PHASE_START: u8 = 1;
    pub const SUBMITTED: u8 = 2;
    pub const GATEWAY_BLOCKED: u8 = 3;
    pub const BEST_EFFORT: u8 = 4;
    pub const GRANT_QUEUED: u8 = 5;
    pub const EXEC_STARTED: u8 = 6;
    pub const COMPLETED: u8 = 7;
    pub const FAILED: u8 = 8;
    pub const COMPILE_PEAK: u8 = 9;
    pub const FAULT_INJECTED: u8 = 10;
    pub const FAULT_CLEARED: u8 = 11;
    pub const SHED: u8 = 12;
    pub const BREAKER: u8 = 13;
    pub const END: u8 = 14;
}

/// High-nibble time-delta codes beyond the inline `0..=11` range.
const DT_1BYTE: u8 = 12;
const DT_2BYTE: u8 = 13;
const DT_3BYTE: u8 = 14;
const DT_ESCAPE: u8 = 15;

/// Why reading or transcoding a v2 trace failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceV2Error {
    /// The input does not start with a `throttledb-trace` magic at all.
    BadMagic,
    /// The input is a throttledb trace of a version this build cannot
    /// read (the unsupported header line is carried for the diagnostic).
    UnsupportedVersion(String),
    /// The input ended mid-frame, mid-varint, or before the trailing
    /// digest.
    Truncated,
    /// A varint ran past its width limit — corrupted input.
    BadVarint,
    /// A frame decoded to something structurally invalid (unknown tag,
    /// bad catalog reference, non-UTF-8 name, trailing garbage...).
    BadFrame(String),
    /// The trailing digest does not match the frames actually read.
    DigestMismatch {
        /// Digest stored in the file.
        stored: u64,
        /// Digest recomputed from the frames.
        computed: u64,
    },
    /// The underlying reader or writer failed (message form, so the error
    /// stays comparable in tests).
    Io(String),
}

impl std::fmt::Display for TraceV2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceV2Error::BadMagic => write!(f, "missing or unsupported trace header"),
            TraceV2Error::UnsupportedVersion(header) => {
                write!(f, "unsupported trace version {header:?}")
            }
            TraceV2Error::Truncated => write!(f, "truncated v2 trace (input ended mid-frame)"),
            TraceV2Error::BadVarint => write!(f, "corrupted varint in v2 trace"),
            TraceV2Error::BadFrame(why) => write!(f, "malformed v2 frame: {why}"),
            TraceV2Error::DigestMismatch { stored, computed } => write!(
                f,
                "v2 trace digest mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            TraceV2Error::Io(msg) => write!(f, "trace I/O error: {msg}"),
        }
    }
}

impl std::error::Error for TraceV2Error {}

impl From<io::Error> for TraceV2Error {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceV2Error::Truncated
        } else {
            TraceV2Error::Io(e.to_string())
        }
    }
}

/// Why transcoding between v1 and v2 failed: either side's decode error,
/// or plain I/O.
#[derive(Debug, Clone, PartialEq)]
pub enum TranscodeError {
    /// The v1 text side failed to parse.
    V1(TraceError),
    /// The v2 binary side failed to parse or verify.
    V2(TraceV2Error),
    /// Reading or writing the underlying streams failed.
    Io(String),
}

impl std::fmt::Display for TranscodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranscodeError::V1(e) => write!(f, "{e}"),
            TranscodeError::V2(e) => write!(f, "{e}"),
            TranscodeError::Io(msg) => write!(f, "trace I/O error: {msg}"),
        }
    }
}

impl std::error::Error for TranscodeError {}

impl From<io::Error> for TranscodeError {
    fn from(e: io::Error) -> Self {
        TranscodeError::Io(e.to_string())
    }
}

// --- the stream digest ------------------------------------------------------

/// The v2 stream digest: FNV-1a folded over 64-bit little-endian words,
/// buffered so updates of any granularity (byte-at-a-time frame lengths,
/// whole blocks) produce the same fingerprint, and sealed with the total
/// length so streams differing only in trailing zero bytes differ.
///
/// The per-byte FNV chain `throttledb_workload::Fnv64` (which the v1 text
/// digest and the scenario config digest keep using) costs ~4 cycles per
/// *byte* of serial multiply latency; folding words costs the same per 8
/// bytes, which is the difference between the digest being noise and
/// being a quarter of the codec's runtime at 10M-event scale.
#[derive(Debug, Clone)]
struct Fold64 {
    state: u64,
    len: u64,
    pending: [u8; 8],
    pending_len: usize,
}

impl Fold64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fold64 {
            state: Self::OFFSET,
            len: 0,
            pending: [0; 8],
            pending_len: 0,
        }
    }

    #[inline]
    fn fold_word(&mut self, word: u64) {
        self.state = (self.state ^ word).wrapping_mul(Self::PRIME);
    }

    fn update(&mut self, mut bytes: &[u8]) {
        self.len += bytes.len() as u64;
        if self.pending_len > 0 {
            let take = (8 - self.pending_len).min(bytes.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&bytes[..take]);
            self.pending_len += take;
            bytes = &bytes[take..];
            if self.pending_len < 8 {
                return;
            }
            let word = u64::from_le_bytes(self.pending);
            self.fold_word(word);
            self.pending_len = 0;
        }
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.fold_word(word);
        }
        let rest = chunks.remainder();
        self.pending[..rest.len()].copy_from_slice(rest);
        self.pending_len = rest.len();
    }

    fn finish(&self) -> u64 {
        // Seal: zero-pad the tail word, then fold the total length, so
        // chunking never leaks into the fingerprint but the tail and the
        // stream length both do.
        let mut tail = [0u8; 8];
        tail[..self.pending_len].copy_from_slice(&self.pending[..self.pending_len]);
        let mut sealed = self.clone();
        sealed.fold_word(u64::from_le_bytes(tail));
        sealed.fold_word(self.len);
        sealed.state
    }
}

// --- varint primitives ------------------------------------------------------

/// Append `value` as a LEB128 varint.
#[inline]
fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a wide (up to 66-bit) value as a LEB128 varint: the encoding
/// the folded `(query delta << 2) | enum` fields use, since a full 64-bit
/// zigzag delta plus two enum bits no longer fits in `u64`.
fn put_varint_wide(out: &mut Vec<u8>, mut value: u128) {
    debug_assert!(value >> 66 == 0, "wide varint overflows 66 bits");
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Map a signed delta onto the unsigned varint space (0, -1, 1, -2, ... →
/// 0, 1, 2, 3, ...) so small negative deltas stay small.
#[inline]
fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Decode a varint from `buf[*pos..]`, advancing `pos`.
#[inline]
fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceV2Error> {
    // Fast path: the overwhelmingly common single-byte value.
    if let Some(&byte) = buf.get(*pos) {
        if byte & 0x80 == 0 {
            *pos += 1;
            return Ok(u64::from(byte));
        }
    }
    get_varint_slow(buf, pos)
}

fn get_varint_slow(buf: &[u8], pos: &mut usize) -> Result<u64, TraceV2Error> {
    let mut value: u64 = 0;
    for shift in 0..10 {
        let Some(&byte) = buf.get(*pos) else {
            return Err(TraceV2Error::Truncated);
        };
        *pos += 1;
        if shift == 9 && byte > 0x01 {
            return Err(TraceV2Error::BadVarint);
        }
        value |= u64::from(byte & 0x7f) << (shift * 7);
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(TraceV2Error::BadVarint)
}

/// Decode a wide (up to 66-bit / 10-byte) varint from `buf[*pos..]`.
fn get_varint_wide(buf: &[u8], pos: &mut usize) -> Result<u128, TraceV2Error> {
    let mut value: u128 = 0;
    for shift in 0..10 {
        let Some(&byte) = buf.get(*pos) else {
            return Err(TraceV2Error::Truncated);
        };
        *pos += 1;
        if shift == 9 && byte > 0x07 {
            return Err(TraceV2Error::BadVarint);
        }
        value |= u128::from(byte & 0x7f) << (shift * 7);
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(TraceV2Error::BadVarint)
}

/// Read a varint byte-at-a-time from `input`, folding the raw bytes into
/// `digest`. Returns `Ok(None)` on clean EOF at the first byte.
fn read_varint<R: Read>(input: &mut R, digest: &mut Fold64) -> Result<Option<u64>, TraceV2Error> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match input.read(&mut byte) {
            Ok(0) => {
                return if first {
                    Ok(None)
                } else {
                    Err(TraceV2Error::Truncated)
                }
            }
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
        digest.update(&byte);
        if shift >= 63 && byte[0] > 0x01 {
            return Err(TraceV2Error::BadVarint);
        }
        value |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(Some(value));
        }
        shift += 7;
        first = false;
        if shift > 63 {
            return Err(TraceV2Error::BadVarint);
        }
    }
}

// --- shared per-kind delta state --------------------------------------------

/// Delta-coding state both codec sides keep in lock-step: previous query
/// id and previous byte-gauge value per event kind, previous timestamp,
/// and the phase-name dictionary.
#[derive(Debug, Clone)]
struct DeltaState {
    prev_at: u64,
    /// Previous query id per event kind (indexed by tag).
    prev_query: [u64; 16],
    /// Previous byte-gauge value per event kind (indexed by tag).
    prev_bytes: [u64; 16],
    /// Interned phase names: the header catalog plus inline names seen
    /// since.
    names: Vec<String>,
}

impl DeltaState {
    fn new(catalog: &[String]) -> Self {
        DeltaState {
            prev_at: 0,
            prev_query: [0; 16],
            prev_bytes: [0; 16],
            names: catalog.to_vec(),
        }
    }

    /// Zigzagged delta of `query` against this kind's previous id.
    fn query_delta(&mut self, kind: u8, query: u64) -> u64 {
        let prev = &mut self.prev_query[kind as usize];
        let delta = query.wrapping_sub(*prev) as i64;
        *prev = query;
        zigzag(delta)
    }

    /// Reconstruct a query id from this kind's zigzagged delta.
    fn query_undelta(&mut self, kind: u8, delta: u64) -> u64 {
        let prev = &mut self.prev_query[kind as usize];
        let query = prev.wrapping_add(unzigzag(delta) as u64);
        *prev = query;
        query
    }

    /// Zigzagged delta of `bytes` against this kind's previous gauge.
    fn bytes_delta(&mut self, kind: u8, bytes: u64) -> u64 {
        let prev = &mut self.prev_bytes[kind as usize];
        let delta = bytes.wrapping_sub(*prev) as i64;
        *prev = bytes;
        zigzag(delta)
    }

    /// Reconstruct a byte gauge from this kind's zigzagged delta.
    fn bytes_undelta(&mut self, kind: u8, delta: u64) -> u64 {
        let prev = &mut self.prev_bytes[kind as usize];
        let bytes = prev.wrapping_add(unzigzag(delta) as u64);
        *prev = bytes;
        bytes
    }
}

/// Fold a query delta and a 2-bit enum into one wide varint value.
fn fold(query_delta: u64, bits: u8) -> u128 {
    (u128::from(query_delta) << 2) | u128::from(bits & 0x03)
}

/// Split a folded wide varint back into (query delta, enum bits).
fn unfold(value: u128) -> Result<(u64, u8), TraceV2Error> {
    let delta = value >> 2;
    if delta > u128::from(u64::MAX) {
        return Err(TraceV2Error::BadVarint);
    }
    Ok((delta as u64, (value & 0x03) as u8))
}

/// Append `(query_delta << 2) | bits` as one varint. Deltas under 62 bits
/// — every delta the engine ever produces — stay on the `u64` path; the
/// wide `u128` encoding only backs the top two bits of pathological
/// streams, and both paths emit identical bytes.
#[inline]
fn put_folded(out: &mut Vec<u8>, query_delta: u64, bits: u8) {
    if query_delta >> 62 == 0 {
        put_varint(out, (query_delta << 2) | u64::from(bits & 0x03));
    } else {
        put_varint_wide(out, fold(query_delta, bits));
    }
}

/// Decode a folded `(query delta, enum bits)` varint: single-byte fast
/// path first, then the general wide decode.
#[inline]
fn get_folded(buf: &[u8], pos: &mut usize) -> Result<(u64, u8), TraceV2Error> {
    if let Some(&byte) = buf.get(*pos) {
        if byte & 0x80 == 0 {
            *pos += 1;
            return Ok((u64::from(byte >> 2), byte & 0x03));
        }
    }
    unfold(get_varint_wide(buf, pos)?)
}

// --- writer -----------------------------------------------------------------

/// Summary of a finished v2 write: how many events were serialized, the
/// total bytes emitted (frames + trailer), and the stream digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceV2Summary {
    /// Events serialized.
    pub events: u64,
    /// Total output bytes, magic through trailing digest.
    pub bytes: u64,
    /// The incremental FNV digest of the stream (what `--replay` compares).
    pub digest: u64,
}

/// Streaming v2 writer: serializes events into block frames over any
/// `io::Write` with one bounded reuse buffer.
///
/// Implements the engine's [`TraceSink`], so it can be installed with
/// [`throttledb_engine::Server::set_trace_sink`] to record a run at O(1)
/// memory. Sink delivery is infallible by contract; the writer stashes its
/// first I/O error and [`TraceWriterV2::finish`] surfaces it.
pub struct TraceWriterV2<W: Write> {
    out: W,
    /// Current block payload (bounded by [`BLOCK_TARGET`] plus one record).
    block: Vec<u8>,
    digest: Fold64,
    state: DeltaState,
    events: u64,
    bytes: u64,
    stashed: Option<io::Error>,
    finished: bool,
}

impl<W: Write> TraceWriterV2<W> {
    /// Open a v2 stream: writes the magic and the header frame carrying
    /// `config_digest` and the interned `catalog`.
    pub fn new(mut out: W, catalog: &[String], config_digest: u64) -> io::Result<Self> {
        let mut digest = Fold64::new();
        digest.update(MAGIC_V2);
        out.write_all(MAGIC_V2)?;
        let mut payload = Vec::with_capacity(64);
        payload.extend_from_slice(&config_digest.to_le_bytes());
        put_varint(&mut payload, catalog.len() as u64);
        for name in catalog {
            put_varint(&mut payload, name.len() as u64);
            payload.extend_from_slice(name.as_bytes());
        }
        let mut frame = Vec::with_capacity(payload.len() + 2);
        put_varint(&mut frame, payload.len() as u64);
        frame.extend_from_slice(&payload);
        digest.update(&frame);
        out.write_all(&frame)?;
        Ok(TraceWriterV2 {
            out,
            block: Vec::with_capacity(BLOCK_TARGET + 64),
            digest,
            state: DeltaState::new(catalog),
            events: 0,
            bytes: (MAGIC_V2.len() + frame.len()) as u64,
            stashed: None,
            finished: false,
        })
    }

    /// Serialize one event, flushing a block frame when the reuse buffer
    /// reaches its target size.
    pub fn write_event(&mut self, ev: &TraceEvent) -> io::Result<()> {
        if let Some(e) = self.stashed.take() {
            return Err(e);
        }
        debug_assert!(!self.finished, "write_event after finish");
        self.encode_record(ev);
        self.events += 1;
        if self.block.len() >= BLOCK_TARGET {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Close the stream: flush the open block, write the zero-length
    /// terminator frame and the trailing digest, and flush the sink.
    /// Surfaces any error stashed during [`TraceSink`] delivery.
    pub fn finish(&mut self) -> io::Result<TraceV2Summary> {
        assert!(!self.finished, "v2 writer finished twice");
        self.finished = true;
        if let Some(e) = self.stashed.take() {
            return Err(e);
        }
        self.flush_block()?;
        // Terminator: an empty frame, folded into the digest like any
        // other; the digest that follows it is not.
        self.digest.update(&[0]);
        self.out.write_all(&[0])?;
        let digest = self.digest.finish();
        self.out.write_all(&digest.to_le_bytes())?;
        self.out.flush()?;
        self.bytes += 1 + 8;
        Ok(TraceV2Summary {
            events: self.events,
            bytes: self.bytes,
            digest,
        })
    }

    /// Mutable access to the underlying writer — e.g. to take back an
    /// in-memory buffer after [`TraceWriterV2::finish`].
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.out
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let mut len_bytes = [0u8; 10];
        let mut prefix = Vec::with_capacity(2);
        put_varint(&mut prefix, self.block.len() as u64);
        len_bytes[..prefix.len()].copy_from_slice(&prefix);
        let prefix = &len_bytes[..prefix.len()];
        self.digest.update(prefix);
        self.digest.update(&self.block);
        self.out.write_all(prefix)?;
        self.out.write_all(&self.block)?;
        self.bytes += (prefix.len() + self.block.len()) as u64;
        self.block.clear();
        Ok(())
    }

    /// Append one record to the block buffer. Mirrored exactly by
    /// [`TraceReaderV2::decode_record`]; any asymmetry is a codec bug the
    /// round-trip property test exists to catch.
    fn encode_record(&mut self, ev: &TraceEvent) {
        let at = ev.at().as_micros();
        let dt = at.wrapping_sub(self.state.prev_at) as i64;
        self.state.prev_at = at;
        let Self { block, state, .. } = self;
        // Tag byte: kind in the low nibble, time-delta code in the high.
        let push_tag = |block: &mut Vec<u8>, kind: u8| {
            if (0..=11).contains(&dt) {
                block.push(kind | ((dt as u8) << 4));
            } else if (0..=0xff).contains(&dt) {
                block.push(kind | (DT_1BYTE << 4));
                block.push(dt as u8);
            } else if (0..=0xffff).contains(&dt) {
                block.push(kind | (DT_2BYTE << 4));
                block.extend_from_slice(&(dt as u16).to_le_bytes());
            } else if (0..=0xff_ffff).contains(&dt) {
                block.push(kind | (DT_3BYTE << 4));
                block.extend_from_slice(&(dt as u32).to_le_bytes()[..3]);
            } else {
                block.push(kind | (DT_ESCAPE << 4));
                put_varint(block, zigzag(dt));
            }
        };
        match ev {
            TraceEvent::PhaseStart { name, clients, .. } => {
                push_tag(block, tag::PHASE_START);
                match state.names.iter().position(|n| n == name) {
                    Some(idx) => put_varint(block, idx as u64 + 1),
                    None => {
                        // Escape to an inline string, then intern it so the
                        // next occurrence is a reference on both sides.
                        put_varint(block, 0);
                        put_varint(block, name.len() as u64);
                        block.extend_from_slice(name.as_bytes());
                        state.names.push(name.clone());
                    }
                }
                put_varint(block, u64::from(*clients));
            }
            TraceEvent::Submitted {
                query,
                client,
                class,
                ..
            } => {
                push_tag(block, tag::SUBMITTED);
                // Class folds into the low bits; 3 escapes to a varint so
                // arbitrary class indexes stay lossless.
                let qd = state.query_delta(tag::SUBMITTED, *query);
                let folded = (*class).min(3) as u8;
                put_folded(block, qd, folded);
                if *class >= 3 {
                    put_varint(block, (*class - 3) as u64);
                }
                put_varint(block, u64::from(*client));
            }
            TraceEvent::GatewayBlocked { query, level, .. } => {
                push_tag(block, tag::GATEWAY_BLOCKED);
                let qd = state.query_delta(tag::GATEWAY_BLOCKED, *query);
                let folded = (*level).min(3) as u8;
                put_folded(block, qd, folded);
                if *level >= 3 {
                    put_varint(block, (*level - 3) as u64);
                }
            }
            TraceEvent::BestEffort { query, .. } => {
                push_tag(block, tag::BEST_EFFORT);
                put_varint(block, state.query_delta(tag::BEST_EFFORT, *query));
            }
            TraceEvent::GrantQueued { query, bytes, .. } => {
                push_tag(block, tag::GRANT_QUEUED);
                put_varint(block, state.query_delta(tag::GRANT_QUEUED, *query));
                put_varint(block, state.bytes_delta(tag::GRANT_QUEUED, *bytes));
            }
            TraceEvent::ExecStarted { query, bytes, .. } => {
                push_tag(block, tag::EXEC_STARTED);
                put_varint(block, state.query_delta(tag::EXEC_STARTED, *query));
                put_varint(block, state.bytes_delta(tag::EXEC_STARTED, *bytes));
            }
            TraceEvent::Completed { query, .. } => {
                push_tag(block, tag::COMPLETED);
                put_varint(block, state.query_delta(tag::COMPLETED, *query));
            }
            TraceEvent::Failed { query, kind, .. } => {
                push_tag(block, tag::FAILED);
                let qd = state.query_delta(tag::FAILED, *query);
                let code = match kind {
                    FailureKind::OutOfMemory => 0,
                    FailureKind::CompileTimeout => 1,
                    FailureKind::GrantTimeout => 2,
                };
                put_folded(block, qd, code);
            }
            TraceEvent::CompilePeak { bytes, .. } => {
                push_tag(block, tag::COMPILE_PEAK);
                put_varint(block, state.bytes_delta(tag::COMPILE_PEAK, *bytes));
            }
            TraceEvent::FaultInjected { fault, .. } => {
                push_tag(block, tag::FAULT_INJECTED);
                put_varint(block, u64::from(*fault));
            }
            TraceEvent::FaultCleared { fault, .. } => {
                push_tag(block, tag::FAULT_CLEARED);
                put_varint(block, u64::from(*fault));
            }
            TraceEvent::Shed { query, .. } => {
                push_tag(block, tag::SHED);
                put_varint(block, state.query_delta(tag::SHED, *query));
            }
            TraceEvent::BreakerTransition {
                class, state: s, ..
            } => {
                push_tag(block, tag::BREAKER);
                put_varint(block, *class as u64);
                block.push(match s {
                    BreakerState::Closed => 0,
                    BreakerState::Open => 1,
                    BreakerState::HalfOpen => 2,
                });
            }
            TraceEvent::End { .. } => {
                push_tag(block, tag::END);
            }
        }
    }
}

impl<W: Write> TraceSink for TraceWriterV2<W> {
    fn event(&mut self, event: &TraceEvent) {
        if self.stashed.is_some() {
            return;
        }
        if let Err(e) = self.write_event(event) {
            self.stashed = Some(e);
        }
    }
}

// --- reader -----------------------------------------------------------------

/// Streaming v2 reader: an iterator of [`TraceEvent`]s over any
/// `io::Read`, holding at most one block frame in memory.
///
/// The header frame is parsed eagerly in [`TraceReaderV2::new`] (so
/// `config_digest` and the catalog are available before any event); the
/// trailing digest is verified when the terminator frame is reached, and
/// a mismatch is surfaced as the iterator's final item.
pub struct TraceReaderV2<R: Read> {
    input: R,
    config_digest: u64,
    state: DeltaState,
    /// Current block payload (reused between frames).
    block: Vec<u8>,
    pos: usize,
    digest: Fold64,
    /// Set once the terminator was consumed (clean end) or an error was
    /// yielded; the iterator is fused after either.
    done: bool,
}

impl<R: Read> TraceReaderV2<R> {
    /// Open a v2 stream: checks the magic and parses the header frame.
    pub fn new(mut input: R) -> Result<Self, TraceV2Error> {
        let mut magic = [0u8; 20];
        debug_assert_eq!(MAGIC_V2.len(), magic.len());
        if let Err(e) = input.read_exact(&mut magic) {
            return Err(if e.kind() == io::ErrorKind::UnexpectedEof {
                TraceV2Error::BadMagic
            } else {
                e.into()
            });
        }
        if magic != MAGIC_V2 {
            // A throttledb trace of some other version gets the sharper
            // diagnostic; arbitrary bytes get BadMagic.
            return Err(match std::str::from_utf8(&magic) {
                Ok(s) if s.starts_with("throttledb-trace v") => {
                    TraceV2Error::UnsupportedVersion(s.trim_end().to_string())
                }
                _ => TraceV2Error::BadMagic,
            });
        }
        let mut digest = Fold64::new();
        digest.update(&magic);
        let header_len = read_varint(&mut input, &mut digest)?.ok_or(TraceV2Error::Truncated)?;
        if header_len < 9 {
            return Err(TraceV2Error::BadFrame(format!(
                "header frame too short ({header_len} bytes)"
            )));
        }
        let mut payload = vec![0u8; header_len as usize];
        input.read_exact(&mut payload)?;
        digest.update(&payload);
        let config_digest = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let mut pos = 8;
        let count = get_varint(&payload, &mut pos)?;
        let mut names = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let len = get_varint(&payload, &mut pos)? as usize;
            let end = pos
                .checked_add(len)
                .filter(|&e| e <= payload.len())
                .ok_or_else(|| TraceV2Error::BadFrame("catalog string overruns header".into()))?;
            let name = std::str::from_utf8(&payload[pos..end])
                .map_err(|_| TraceV2Error::BadFrame("catalog string is not UTF-8".into()))?;
            names.push(name.to_string());
            pos = end;
        }
        if pos != payload.len() {
            return Err(TraceV2Error::BadFrame(
                "trailing bytes after header catalog".into(),
            ));
        }
        Ok(TraceReaderV2 {
            input,
            config_digest,
            state: DeltaState::new(&names),
            block: Vec::new(),
            pos: 0,
            digest,
            done: false,
        })
    }

    /// The run-config digest stored in the header frame (0 for streams
    /// produced by the v1 transcoder, which has no scenario in hand).
    pub fn config_digest(&self) -> u64 {
        self.config_digest
    }

    /// The phase-name catalog stored in the header frame, plus any inline
    /// names interned while reading.
    pub fn catalog(&self) -> &[String] {
        &self.state.names
    }

    /// Pull the next block frame. `Ok(false)` means the terminator was
    /// consumed and the trailing digest verified.
    fn next_block(&mut self) -> Result<bool, TraceV2Error> {
        let len = read_varint(&mut self.input, &mut self.digest)?.ok_or(TraceV2Error::Truncated)?;
        if len == 0 {
            // Terminator: the digest trailer follows, excluded from the
            // fold (it could hardly cover itself).
            let computed = self.digest.finish();
            let mut stored = [0u8; 8];
            self.input.read_exact(&mut stored)?;
            let stored = u64::from_le_bytes(stored);
            if stored != computed {
                return Err(TraceV2Error::DigestMismatch { stored, computed });
            }
            return Ok(false);
        }
        self.block.resize(len as usize, 0);
        self.input.read_exact(&mut self.block)?;
        self.digest.update(&self.block);
        self.pos = 0;
        Ok(true)
    }

    /// Read `n` little-endian bytes from the block as a u64.
    fn fixed_le(&mut self, n: usize) -> Result<u64, TraceV2Error> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.block.len())
            .ok_or(TraceV2Error::Truncated)?;
        let mut value = 0u64;
        for (i, &b) in self.block[self.pos..end].iter().enumerate() {
            value |= u64::from(b) << (i * 8);
        }
        self.pos = end;
        Ok(value)
    }

    /// Decode one record from the current block. Mirrors
    /// `TraceWriterV2::encode_record` exactly.
    fn decode_record(&mut self) -> Result<TraceEvent, TraceV2Error> {
        let head = self.block[self.pos];
        self.pos += 1;
        let kind = head & 0x0f;
        let dt = match head >> 4 {
            code @ 0..=11 => i64::from(code),
            DT_1BYTE => self.fixed_le(1)? as i64,
            DT_2BYTE => self.fixed_le(2)? as i64,
            DT_3BYTE => self.fixed_le(3)? as i64,
            _ => unzigzag(get_varint(&self.block, &mut self.pos)?),
        };
        let at = self.state.prev_at.wrapping_add(dt as u64);
        self.state.prev_at = at;
        let at = SimTime::from_micros(at);
        let ev = match kind {
            tag::PHASE_START => {
                let name_ref = get_varint(&self.block, &mut self.pos)?;
                let name = if name_ref == 0 {
                    let len = get_varint(&self.block, &mut self.pos)? as usize;
                    let end = self
                        .pos
                        .checked_add(len)
                        .filter(|&e| e <= self.block.len())
                        .ok_or(TraceV2Error::Truncated)?;
                    let name = std::str::from_utf8(&self.block[self.pos..end])
                        .map_err(|_| TraceV2Error::BadFrame("phase name is not UTF-8".into()))?
                        .to_string();
                    self.pos = end;
                    self.state.names.push(name.clone());
                    name
                } else {
                    self.state
                        .names
                        .get(name_ref as usize - 1)
                        .ok_or_else(|| {
                            TraceV2Error::BadFrame(format!(
                                "phase name reference {name_ref} out of catalog range {}",
                                self.state.names.len()
                            ))
                        })?
                        .clone()
                };
                let clients = get_varint(&self.block, &mut self.pos)? as u32;
                TraceEvent::PhaseStart { at, name, clients }
            }
            tag::SUBMITTED => {
                let (qd, folded) = get_folded(&self.block, &mut self.pos)?;
                let query = self.state.query_undelta(tag::SUBMITTED, qd);
                let class = if folded == 3 {
                    get_varint(&self.block, &mut self.pos)? as usize + 3
                } else {
                    folded as usize
                };
                let client = get_varint(&self.block, &mut self.pos)? as u32;
                TraceEvent::Submitted {
                    at,
                    query,
                    client,
                    class,
                }
            }
            tag::GATEWAY_BLOCKED => {
                let (qd, folded) = get_folded(&self.block, &mut self.pos)?;
                let query = self.state.query_undelta(tag::GATEWAY_BLOCKED, qd);
                let level = if folded == 3 {
                    get_varint(&self.block, &mut self.pos)? as usize + 3
                } else {
                    folded as usize
                };
                TraceEvent::GatewayBlocked { at, query, level }
            }
            tag::BEST_EFFORT => {
                let qd = get_varint(&self.block, &mut self.pos)?;
                TraceEvent::BestEffort {
                    at,
                    query: self.state.query_undelta(tag::BEST_EFFORT, qd),
                }
            }
            tag::GRANT_QUEUED => {
                let qd = get_varint(&self.block, &mut self.pos)?;
                let bd = get_varint(&self.block, &mut self.pos)?;
                TraceEvent::GrantQueued {
                    at,
                    query: self.state.query_undelta(tag::GRANT_QUEUED, qd),
                    bytes: self.state.bytes_undelta(tag::GRANT_QUEUED, bd),
                }
            }
            tag::EXEC_STARTED => {
                let qd = get_varint(&self.block, &mut self.pos)?;
                let bd = get_varint(&self.block, &mut self.pos)?;
                TraceEvent::ExecStarted {
                    at,
                    query: self.state.query_undelta(tag::EXEC_STARTED, qd),
                    bytes: self.state.bytes_undelta(tag::EXEC_STARTED, bd),
                }
            }
            tag::COMPLETED => {
                let qd = get_varint(&self.block, &mut self.pos)?;
                TraceEvent::Completed {
                    at,
                    query: self.state.query_undelta(tag::COMPLETED, qd),
                }
            }
            tag::FAILED => {
                let (qd, code) = get_folded(&self.block, &mut self.pos)?;
                let query = self.state.query_undelta(tag::FAILED, qd);
                let kind = match code {
                    0 => FailureKind::OutOfMemory,
                    1 => FailureKind::CompileTimeout,
                    2 => FailureKind::GrantTimeout,
                    other => {
                        return Err(TraceV2Error::BadFrame(format!(
                            "unknown failure kind code {other}"
                        )))
                    }
                };
                TraceEvent::Failed { at, query, kind }
            }
            tag::COMPILE_PEAK => {
                let bd = get_varint(&self.block, &mut self.pos)?;
                TraceEvent::CompilePeak {
                    at,
                    bytes: self.state.bytes_undelta(tag::COMPILE_PEAK, bd),
                }
            }
            tag::FAULT_INJECTED => TraceEvent::FaultInjected {
                at,
                fault: get_varint(&self.block, &mut self.pos)? as u32,
            },
            tag::FAULT_CLEARED => TraceEvent::FaultCleared {
                at,
                fault: get_varint(&self.block, &mut self.pos)? as u32,
            },
            tag::SHED => {
                let qd = get_varint(&self.block, &mut self.pos)?;
                TraceEvent::Shed {
                    at,
                    query: self.state.query_undelta(tag::SHED, qd),
                }
            }
            tag::BREAKER => {
                let class = get_varint(&self.block, &mut self.pos)? as usize;
                let code = *self.block.get(self.pos).ok_or(TraceV2Error::Truncated)?;
                self.pos += 1;
                let state = match code {
                    0 => BreakerState::Closed,
                    1 => BreakerState::Open,
                    2 => BreakerState::HalfOpen,
                    other => {
                        return Err(TraceV2Error::BadFrame(format!(
                            "unknown breaker state code {other}"
                        )))
                    }
                };
                TraceEvent::BreakerTransition { at, class, state }
            }
            tag::END => TraceEvent::End { at },
            other => return Err(TraceV2Error::BadFrame(format!("unknown event tag {other}"))),
        };
        Ok(ev)
    }
}

impl<R: Read> Iterator for TraceReaderV2<R> {
    type Item = Result<TraceEvent, TraceV2Error>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.pos >= self.block.len() {
            match self.next_block() {
                Ok(true) => {}
                Ok(false) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        match self.decode_record() {
            Ok(ev) => Some(Ok(ev)),
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

// --- replay and transcoding -------------------------------------------------

/// The result of streaming a v2 trace end to end: the per-phase reports
/// the stream replays to, its verified digest, the header's config
/// digest, and the event count.
#[derive(Debug, Clone, PartialEq)]
pub struct V2ReplaySummary {
    /// Reports reconstructed by [`StreamingReplay`].
    pub reports: Vec<PhaseReport>,
    /// The stream digest (verified against the trailer).
    pub digest: u64,
    /// The header frame's run-config digest.
    pub config_digest: u64,
    /// Events decoded.
    pub events: u64,
}

/// Stream a v2 trace from `input` and fold it straight into per-phase
/// [`PhaseReport`]s — O(1) memory in the event count, the replay half of
/// `scenario_runner --replay` for binary traces.
pub fn replay_v2<R: Read>(input: R) -> Result<V2ReplaySummary, TraceV2Error> {
    let mut reader = TraceReaderV2::new(input)?;
    let config_digest = reader.config_digest();
    let mut replay = StreamingReplay::new();
    let mut events = 0u64;
    for ev in reader.by_ref() {
        replay.observe(&ev?);
        events += 1;
    }
    Ok(V2ReplaySummary {
        reports: replay.finish(),
        digest: reader.digest.finish(),
        config_digest,
        events,
    })
}

/// Transcode a v1 text trace to v2 frames, line by line — neither trace is
/// ever materialized. The v2 header carries config digest 0 and an empty
/// catalog (the text format stores neither); phase names intern on first
/// use instead.
pub fn transcode_v1_to_v2<R: BufRead, W: Write>(
    input: R,
    output: W,
) -> Result<TraceV2Summary, TranscodeError> {
    let mut lines = input.lines();
    match lines.next() {
        Some(Ok(header)) if header.trim_end() == V1_HEADER => {}
        Some(Ok(_)) | None => return Err(TranscodeError::V1(TraceError::BadHeader)),
        Some(Err(e)) => return Err(e.into()),
    }
    let mut writer = TraceWriterV2::new(output, &[], 0)?;
    for (idx, line) in lines.enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let ev = decode_line(line)
            .ok_or_else(|| TranscodeError::V1(TraceError::BadLine(idx + 1, line.to_string())))?;
        writer.write_event(&ev)?;
    }
    Ok(writer.finish()?)
}

/// Transcode a v2 binary trace back to v1 text, frame by frame. The
/// output is byte-identical to the v1 encoding of the same event stream —
/// the losslessness contract `--transcode` round-trip tests enforce.
pub fn transcode_v2_to_v1<R: Read, W: Write>(
    input: R,
    mut output: W,
) -> Result<u64, TranscodeError> {
    let mut reader = TraceReaderV2::new(input).map_err(TranscodeError::V2)?;
    output.write_all(V1_HEADER.as_bytes())?;
    output.write_all(b"\n")?;
    let mut events = 0u64;
    let mut line = String::with_capacity(64);
    for ev in reader.by_ref() {
        let ev = ev.map_err(TranscodeError::V2)?;
        line.clear();
        encode_event_into(&mut line, &ev);
        output.write_all(line.as_bytes())?;
        events += 1;
    }
    output.flush()?;
    Ok(events)
}

/// Sniff the first bytes of a trace file: `true` when the stream should be
/// handed to [`TraceReaderV2`] — the exact v2 magic, or a same-family
/// version stamp other than the v1 text header (a hypothetical `v3` file
/// is binary-framed, and the v2 reader turns it into a clean
/// `UnsupportedVersion` diagnostic instead of the caller misreading its
/// frames as text). `false` routes to the v1 text decoder.
pub fn is_v2(prefix: &[u8]) -> bool {
    prefix.starts_with(MAGIC_V2)
        || (prefix.starts_with(b"throttledb-trace v")
            && !prefix.starts_with(crate::trace::HEADER.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PhaseStart {
                at: SimTime::ZERO,
                name: "steady state".into(),
                clients: 4,
            },
            TraceEvent::Submitted {
                at: SimTime::from_secs(1),
                query: 0,
                client: 2,
                class: 0,
            },
            TraceEvent::GatewayBlocked {
                at: SimTime::from_secs(2),
                query: 0,
                level: 1,
            },
            TraceEvent::CompilePeak {
                at: SimTime::from_secs(2),
                bytes: 64 << 20,
            },
            TraceEvent::BestEffort {
                at: SimTime::from_secs(3),
                query: 0,
            },
            TraceEvent::GrantQueued {
                at: SimTime::from_secs(3),
                query: 0,
                bytes: 512 << 20,
            },
            TraceEvent::ExecStarted {
                at: SimTime::from_secs(4),
                query: 0,
                bytes: 256 << 20,
            },
            TraceEvent::Completed {
                at: SimTime::from_secs(9),
                query: 0,
            },
            TraceEvent::PhaseStart {
                at: SimTime::from_secs(10),
                name: "storm".into(),
                clients: 9,
            },
            TraceEvent::Submitted {
                at: SimTime::from_secs(11),
                query: 1,
                client: 7,
                class: 1,
            },
            TraceEvent::Failed {
                at: SimTime::from_secs(12),
                query: 1,
                kind: FailureKind::GrantTimeout,
            },
            TraceEvent::FaultInjected {
                at: SimTime::from_secs(13),
                fault: 0,
            },
            TraceEvent::BreakerTransition {
                at: SimTime::from_secs(14),
                class: 1,
                state: BreakerState::Open,
            },
            TraceEvent::Shed {
                at: SimTime::from_secs(15),
                query: 2,
            },
            TraceEvent::BreakerTransition {
                at: SimTime::from_secs(16),
                class: 1,
                state: BreakerState::HalfOpen,
            },
            TraceEvent::FaultCleared {
                at: SimTime::from_secs(17),
                fault: 0,
            },
            TraceEvent::End {
                at: SimTime::from_secs(20),
            },
        ]
    }

    fn encode_all(
        events: &[TraceEvent],
        catalog: &[String],
        config: u64,
    ) -> (Vec<u8>, TraceV2Summary) {
        let mut out = Vec::new();
        let mut w = TraceWriterV2::new(&mut out, catalog, config).unwrap();
        for ev in events {
            w.write_event(ev).unwrap();
        }
        let summary = w.finish().unwrap();
        (out, summary)
    }

    fn decode_all(bytes: &[u8]) -> Result<Vec<TraceEvent>, TraceV2Error> {
        TraceReaderV2::new(bytes)?.collect()
    }

    #[test]
    fn v2_round_trips_every_event_kind() {
        let events = sample_events();
        let catalog = vec!["steady state".to_string()];
        let (bytes, summary) = encode_all(&events, &catalog, 77);
        assert_eq!(summary.events, events.len() as u64);
        assert_eq!(summary.bytes, bytes.len() as u64);
        let reader = TraceReaderV2::new(&bytes[..]).unwrap();
        assert_eq!(reader.config_digest(), 77);
        assert_eq!(reader.catalog(), &catalog[..]);
        let decoded: Result<Vec<_>, _> = reader.collect();
        assert_eq!(decoded.unwrap(), events);
    }

    #[test]
    fn edge_case_field_values_round_trip() {
        // Values that stress the folds and escapes: classes and levels at
        // and past the 2-bit inline range, u64-extreme queries and gauges.
        let events = vec![
            TraceEvent::Submitted {
                at: SimTime::ZERO,
                query: u64::MAX,
                client: u32::MAX,
                class: 3,
            },
            TraceEvent::Submitted {
                at: SimTime::from_micros(1),
                query: 0,
                client: 0,
                class: 17,
            },
            TraceEvent::GatewayBlocked {
                at: SimTime::from_micros(1),
                query: u64::MAX / 2,
                level: 3,
            },
            TraceEvent::GatewayBlocked {
                at: SimTime::from_micros(2),
                query: 1,
                level: 250,
            },
            TraceEvent::GrantQueued {
                at: SimTime::from_micros(3),
                query: 5,
                bytes: u64::MAX,
            },
            TraceEvent::GrantQueued {
                at: SimTime::from_micros(4),
                query: 6,
                bytes: 0,
            },
        ];
        let (bytes, _) = encode_all(&events, &[], 0);
        assert_eq!(decode_all(&bytes).unwrap(), events);
    }

    #[test]
    fn inline_phase_names_intern_on_both_sides() {
        // Empty catalog: the first "steady state" goes inline, the second
        // must come back as a reference — asserted indirectly by the
        // stream staying small and decoding identically.
        let mut events = sample_events();
        events.push(TraceEvent::PhaseStart {
            at: SimTime::from_secs(21),
            name: "steady state".into(),
            clients: 1,
        });
        let (bytes, _) = encode_all(&events, &[], 0);
        assert_eq!(decode_all(&bytes).unwrap(), events);
        // Second occurrence is a 1-varint reference, not 12 inline bytes.
        let (once, _) = encode_all(&events[..events.len() - 1], &[], 0);
        assert!(bytes.len() < once.len() + 8);
    }

    #[test]
    fn digest_matches_replay_and_detects_corruption() {
        let events = sample_events();
        let (bytes, summary) = encode_all(&events, &[], 3);
        let replay = replay_v2(&bytes[..]).unwrap();
        assert_eq!(replay.digest, summary.digest);
        assert_eq!(replay.config_digest, 3);
        assert_eq!(replay.events, events.len() as u64);
        assert_eq!(replay.reports, Trace::new(events).replay());

        // Flip a payload byte mid-stream: either the frame fails to parse
        // or the digest check catches it — silence is the only bug.
        let mut corrupted = bytes.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0x40;
        assert!(replay_v2(&corrupted[..]).is_err());
    }

    #[test]
    fn truncation_fails_cleanly_at_every_length() {
        let (bytes, _) = encode_all(&sample_events(), &[], 0);
        for len in 0..bytes.len() - 1 {
            let err = match TraceReaderV2::new(&bytes[..len]) {
                Err(e) => e,
                Ok(reader) => {
                    let res: Result<Vec<_>, _> = reader.collect();
                    match res {
                        Err(e) => e,
                        Ok(_) => panic!("truncated stream of {len} bytes decoded cleanly"),
                    }
                }
            };
            assert!(
                matches!(
                    err,
                    TraceV2Error::Truncated | TraceV2Error::BadMagic | TraceV2Error::BadVarint
                ),
                "unexpected error at {len}: {err:?}"
            );
        }
    }

    #[test]
    fn version_sniffing_tells_v1_v2_and_garbage_apart() {
        assert!(is_v2(MAGIC_V2));
        assert!(!is_v2(b"throttledb-trace v1\n..."));
        assert!(!is_v2(b"nonsense"));
        // Future binary versions route to the v2 reader so it can name the
        // unsupported version, instead of being misread as v1 text.
        assert!(is_v2(b"throttledb-trace v3\n"));
        let v1 = b"throttledb-trace v1\nend 0\n";
        assert_eq!(
            TraceReaderV2::new(&v1[..]).err(),
            Some(TraceV2Error::UnsupportedVersion(
                "throttledb-trace v1".into()
            ))
        );
        let v9 = b"throttledb-trace v9\nwhatever";
        assert!(matches!(
            TraceReaderV2::new(&v9[..]),
            Err(TraceV2Error::UnsupportedVersion(_))
        ));
        assert_eq!(
            TraceReaderV2::new(&b"garbage"[..]).err(),
            Some(TraceV2Error::BadMagic)
        );
    }

    #[test]
    fn transcoding_v1_v2_v1_is_byte_identical() {
        let trace = Trace::new(sample_events());
        let v1_text = trace.encode();
        let mut v2_bytes = Vec::new();
        let summary = transcode_v1_to_v2(v1_text.as_bytes(), &mut v2_bytes).unwrap();
        assert_eq!(summary.events, trace.len() as u64);
        assert!(v2_bytes.len() < v1_text.len());
        let mut back = Vec::new();
        let events = transcode_v2_to_v1(&v2_bytes[..], &mut back).unwrap();
        assert_eq!(events, trace.len() as u64);
        assert_eq!(String::from_utf8(back).unwrap(), v1_text);
    }

    #[test]
    fn transcoder_rejects_bad_v1_input() {
        assert_eq!(
            transcode_v1_to_v2(&b"nonsense\n"[..], &mut Vec::new()),
            Err(TranscodeError::V1(TraceError::BadHeader))
        );
        let bad = format!("{V1_HEADER}\nwibble 1 2\n");
        assert!(matches!(
            transcode_v1_to_v2(bad.as_bytes(), &mut Vec::new()),
            Err(TranscodeError::V1(TraceError::BadLine(1, _)))
        ));
    }

    #[test]
    fn multi_block_streams_round_trip() {
        // Enough events to span several BLOCK_TARGET-sized frames.
        let mut events = Vec::new();
        events.push(TraceEvent::PhaseStart {
            at: SimTime::ZERO,
            name: "bulk".into(),
            clients: 1,
        });
        for i in 0..5000u64 {
            events.push(TraceEvent::Submitted {
                at: SimTime::from_micros(i * 37),
                query: i,
                client: (i % 7) as u32,
                class: (i % 3) as usize,
            });
            events.push(TraceEvent::Completed {
                at: SimTime::from_micros(i * 37 + 11),
                query: i,
            });
        }
        events.push(TraceEvent::End {
            at: SimTime::from_secs(1),
        });
        let (bytes, summary) = encode_all(&events, &[], 0);
        // Dense delta streams should land well under 4 bytes/event.
        assert!(
            (summary.bytes as usize) < events.len() * 4,
            "v2 too large: {} bytes for {} events",
            summary.bytes,
            events.len()
        );
        assert_eq!(decode_all(&bytes).unwrap(), events);
    }

    #[test]
    fn non_monotone_times_and_query_ids_still_round_trip() {
        // The engine never records these, but the codec must not assume
        // monotonicity — arbitrary streams (property tests, future event
        // kinds) take the zigzag escape path.
        let events = vec![
            TraceEvent::Completed {
                at: SimTime::from_micros(u64::MAX),
                query: u64::MAX,
            },
            TraceEvent::Completed {
                at: SimTime::ZERO,
                query: 3,
            },
            TraceEvent::Shed {
                at: SimTime::from_micros(15),
                query: 0,
            },
        ];
        let (bytes, _) = encode_all(&events, &[], 0);
        assert_eq!(decode_all(&bytes).unwrap(), events);
    }

    #[test]
    fn wrong_catalog_reference_is_a_bad_frame() {
        // Write with a catalog, then corrupt the record's catalog
        // reference so it points past the dictionary.
        let events = vec![TraceEvent::PhaseStart {
            at: SimTime::ZERO,
            name: "only".into(),
            clients: 1,
        }];
        let catalog = vec!["only".to_string()];
        let (mut bytes, _) = encode_all(&events, &catalog, 0);
        // The record sits right after the header frame: magic(20) +
        // len(1) + payload(8 + 1 + 1 + 4) = 35; record = [tag, name_ref=1,
        // clients]. Bump the reference out of range.
        let record_start = 20 + 1 + 14 + 1;
        assert_eq!(bytes[record_start + 1], 1, "expected catalog reference 1");
        bytes[record_start + 1] = 9;
        let res = decode_all(&bytes);
        assert!(
            matches!(
                res,
                Err(TraceV2Error::BadFrame(_)) | Err(TraceV2Error::DigestMismatch { .. })
            ),
            "patched reference must not decode: {res:?}"
        );
    }

    #[test]
    fn empty_stream_is_fine() {
        let (bytes, summary) = encode_all(&[], &[], 42);
        assert_eq!(summary.events, 0);
        assert_eq!(decode_all(&bytes).unwrap(), Vec::<TraceEvent>::new());
        let replay = replay_v2(&bytes[..]).unwrap();
        assert!(replay.reports.is_empty());
        assert_eq!(replay.config_digest, 42);
    }

    #[test]
    fn varint_primitives_round_trip_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
        for d in [0i64, -1, 1, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
        // The wide (folded) form carries a full 64-bit zigzag plus 2 bits.
        for (qd, bits) in [(0u64, 0u8), (1, 3), (u64::MAX, 2), (u64::MAX, 3)] {
            let mut buf = Vec::new();
            put_varint_wide(&mut buf, fold(qd, bits));
            let mut pos = 0;
            let value = get_varint_wide(&buf, &mut pos).unwrap();
            assert_eq!(unfold(value), Ok((qd, bits)));
            assert_eq!(pos, buf.len());
        }
        // Over-long varints are rejected, not wrapped.
        let mut pos = 0;
        assert_eq!(
            get_varint(&[0xff; 11], &mut pos),
            Err(TraceV2Error::BadVarint)
        );
        let mut pos = 0;
        assert_eq!(
            get_varint_wide(&[0xff; 11], &mut pos),
            Err(TraceV2Error::BadVarint)
        );
    }
}
