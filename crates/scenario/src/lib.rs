//! # throttledb-scenario
//!
//! Declarative multi-phase workloads for the `throttledb` reproduction of
//! *"Managing Query Compilation Memory Consumption to Improve DBMS
//! Throughput"* (CIDR 2007).
//!
//! The paper's evaluation (§5) is a handful of fixed closed-loop runs.
//! This crate turns the reproduction into a general experiment platform
//! for the same admission-control policy:
//!
//! * [`Scenario`] — a base server configuration plus an ordered schedule
//!   of timed [`Phase`]s, each binding a client count, a
//!   [`throttledb_workload::WorkloadMix`] over the SALES / TPC-H-like /
//!   OLTP template families, and per-phase overrides (think time,
//!   grant-budget scale). Ramps and diurnal cycles are piecewise-constant
//!   phase sequences ([`Phase::ramp`], [`Phase::diurnal`]).
//! * [`ScenarioRunner`] — drives the discrete-event engine through the
//!   schedule using the engine's phase hooks
//!   ([`throttledb_engine::Server::run_until`] and friends) and emits one
//!   [`PhaseReport`] per phase plus the run's full
//!   [`throttledb_engine::RunMetrics`].
//! * [`Trace`] — the recorded admission/grant event stream, serialized to
//!   a diffable line format; [`Trace::replay`] reconstructs the per-phase
//!   reports from the events alone, so a stored trace is a regression
//!   golden file: same seed + same policy code ⇒ byte-identical trace and
//!   identical reports.
//! * [`FaultPlan`] — deterministic chaos: timed fault events (memory-leak
//!   ramps, compile stalls, executor slot loss, grant-budget collapse,
//!   client surges) attached to any scenario. Faults ride the engine's
//!   timing wheel like every other event, so faulted runs record and
//!   replay byte-identically too; the chaos built-ins
//!   (`memory_leak_creep`, `retry_storm`, …) exercise the governor's
//!   graceful-degradation machinery end to end.
//!
//! Built-in scenarios cover the paper's own figures
//! ([`Scenario::paper_figure3`] …) and workload shapes the paper never
//! ran (compile storms, diurnal cycles, degrading grant pools, mix
//! shifts); see [`Scenario::builtin_names`]. The `scenario_runner` binary
//! in `throttledb-bench` runs any of them from the command line, and
//! `docs/EXPERIMENTS.md` is the user guide.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fault;
pub mod phase;
pub mod runner;
pub mod scenario;
pub mod trace;
pub mod trace_v2;

pub use fault::{FaultEvent, FaultPlan};
pub use phase::{Phase, PhaseOverrides};
pub use runner::{PhaseReport, ScenarioOutcome, ScenarioRunner};
pub use scenario::{Scale, Scenario};
pub use trace::{StreamingReplay, Trace, TraceError};
pub use trace_v2::{
    is_v2, replay_v2, transcode_v1_to_v2, transcode_v2_to_v1, TraceReaderV2, TraceV2Error,
    TraceV2Summary, TraceWriterV2, TranscodeError, V2ReplaySummary, MAGIC_V2,
};
