//! The declarative scenario model and the built-in scenario catalog.
//!
//! A [`Scenario`] is a base [`ServerConfig`] plus an ordered list of
//! [`Phase`]s. The built-ins come in two groups:
//!
//! * **paper scenarios** (`paper_figure3/4/5`) — the paper's own §5
//!   throughput runs, expressed as single steady phases over
//!   [`ServerConfig::paper`]; and
//! * **beyond-the-paper scenarios** (`compile_storm`,
//!   `diurnal_two_classes`, `burst_degrading_pool`, `class_mix_shift`,
//!   `ramp_to_saturation`) — workload shapes the paper never evaluated,
//!   exercising the same admission-control policy under phase-varying
//!   load; and
//! * **open-loop scenarios** (`open_loop_poisson`, `flash_crowd`,
//!   `heavy_tail_arrivals`, `diurnal_arrivals`, `open_loop_scale`) —
//!   arrival-process-driven populations with no (or only a
//!   cohort-compressed) closed loop, where the offered rate is set by a
//!   stochastic process instead of think times.

use crate::fault::FaultPlan;
use crate::phase::Phase;
use serde::{Deserialize, Serialize};
use throttledb_engine::{
    ArrivalSourceConfig, BreakerConfig, FaultKind, PolicyKind, ServerConfig, WorkloadClassConfig,
};
use throttledb_sim::{ArrivalProcess, SimDuration};
use throttledb_workload::WorkloadMix;

/// Experiment scale: `Quick` shrinks durations for tests and CI smoke
/// runs; `Paper` stretches the same shapes to multi-hour runs comparable
/// with the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// CI-friendly durations (minutes of virtual time per phase).
    Quick,
    /// Paper-comparable durations (6× the quick phase lengths; the paper
    /// figures use the full 8-hour [`ServerConfig::paper`] run).
    Paper,
}

impl Scale {
    /// Parse `"quick"` / `"paper"` (the figure binaries' CLI convention).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// A phase duration that is `quick_minutes` long at quick scale and
    /// 6× that at paper scale.
    fn minutes(self, quick_minutes: u64) -> SimDuration {
        match self {
            Scale::Quick => SimDuration::from_secs(quick_minutes * 60),
            Scale::Paper => SimDuration::from_secs(quick_minutes * 360),
        }
    }
}

/// A declarative multi-phase workload: what to run, not how to run it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (the CLI and reports use it).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Base server configuration. The runner overwrites `clients` (to the
    /// maximum over phases) and `duration` (to the phase total); everything
    /// else — machine, throttle, classes, seed — is taken as configured.
    pub base: ServerConfig,
    /// The phase schedule, executed in order.
    pub phases: Vec<Phase>,
    /// The fault schedule (empty for a fault-free run). Offsets are
    /// relative to the run start; the runner installs them on the engine
    /// before the first phase begins.
    pub faults: FaultPlan,
}

impl Scenario {
    /// A scenario from parts.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        base: ServerConfig,
        phases: Vec<Phase>,
    ) -> Self {
        Scenario {
            name: name.into(),
            description: description.into(),
            base,
            phases,
            faults: FaultPlan::default(),
        }
    }

    /// Attach a fault schedule (every other setting untouched), so any
    /// scenario — built-in or bespoke — can run under chaos.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replace the RNG seed (every other setting untouched).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base.seed = seed;
        self
    }

    /// Replace the admission policy (every other setting untouched), so any
    /// built-in scenario can run under any [`PolicyKind`].
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.base.policy = policy;
        self
    }

    /// Total virtual duration over all phases.
    pub fn total_duration(&self) -> SimDuration {
        self.phases
            .iter()
            .fold(SimDuration::ZERO, |acc, p| acc + p.duration)
    }

    /// The largest client count any phase uses.
    pub fn max_clients(&self) -> u32 {
        self.phases.iter().map(|p| p.clients).max().unwrap_or(0)
    }

    /// The [`ServerConfig`] a driver should characterize and run this
    /// scenario against: the base config with `clients` raised to the
    /// phase maximum, `duration` set to the phase total, and a warm-up
    /// that would swallow the whole run clamped to zero. Both
    /// [`crate::ScenarioRunner`] and the sweep harness derive their
    /// configs through here, so their cells can never silently diverge.
    pub fn runtime_config(&self) -> ServerConfig {
        let mut config = self.base.clone();
        // Client-surge faults wake clients beyond the phase maximum, so the
        // server's client table needs that headroom built in up front.
        config.clients = self.max_clients() + self.faults.max_surge_clients();
        config.duration = self.total_duration();
        if config.warmup >= config.duration {
            config.warmup = SimDuration::ZERO;
        }
        config
    }

    /// A 64-bit FNV digest of the run identity a recorded trace depends
    /// on: scenario name, seed, admission policy, and the per-phase
    /// name/duration/client schedule. The v2 binary codec stores this in
    /// its header frame so `--replay` can refuse a trace recorded under a
    /// different configuration *before* simulating anything.
    pub fn config_digest(&self) -> u64 {
        let mut hash = throttledb_workload::Fnv64::new();
        let mut fold = |bytes: &[u8]| {
            hash.update(bytes);
            // NUL-separate fields so adjacent strings can't collide by
            // concatenation ("ab"+"c" vs "a"+"bc").
            hash.update(&[0]);
        };
        fold(self.name.as_bytes());
        fold(&self.base.seed.to_le_bytes());
        fold(format!("{:?}", self.base.policy).as_bytes());
        for phase in &self.phases {
            fold(phase.name.as_bytes());
            fold(&phase.duration.as_micros().to_le_bytes());
            fold(&phase.clients.to_le_bytes());
        }
        hash.finish()
    }

    /// The phase-name catalog a v2 trace header interns: every distinct
    /// phase name, in first-use order. Recording with this catalog turns
    /// each `PhaseStart` name into a small varint index instead of an
    /// inline string.
    pub fn trace_catalog(&self) -> Vec<String> {
        let mut catalog: Vec<String> = Vec::new();
        for phase in &self.phases {
            if !catalog.iter().any(|n| n == &phase.name) {
                catalog.push(phase.name.clone());
            }
        }
        catalog
    }

    /// Panics on an empty or inconsistent phase schedule, or when the
    /// scenario drives no load at all (every phase has zero closed-loop
    /// clients *and* the base configuration has no arrival sources).
    pub fn validate(&self) {
        assert!(!self.name.is_empty(), "scenario needs a name");
        assert!(!self.phases.is_empty(), "scenario needs at least one phase");
        for phase in &self.phases {
            phase.validate();
        }
        assert!(
            self.max_clients() > 0 || !self.base.arrivals.is_empty(),
            "scenario drives no load: every phase has zero clients and the base has no arrival sources"
        );
        self.faults.validate(self.total_duration());
    }

    // --- the paper's own runs, as scenarios --------------------------------

    /// Figure 3: the paper's steady 30-client throughput run (throttled).
    pub fn paper_figure3(scale: Scale) -> Self {
        Self::paper_figure(scale, "paper_figure3", 30)
    }

    /// Figure 4: the paper's steady 35-client throughput run (throttled).
    pub fn paper_figure4(scale: Scale) -> Self {
        Self::paper_figure(scale, "paper_figure4", 35)
    }

    /// Figure 5: the paper's steady 40-client throughput run (throttled).
    pub fn paper_figure5(scale: Scale) -> Self {
        Self::paper_figure(scale, "paper_figure5", 40)
    }

    fn paper_figure(scale: Scale, name: &str, clients: u32) -> Self {
        let base = match scale {
            Scale::Paper => ServerConfig::paper(clients, true),
            Scale::Quick => ServerConfig::quick(clients, true),
        };
        let mix = WorkloadMix::paper_default(base.oltp_fraction);
        let phases = vec![Phase::steady("steady", base.duration, clients, mix)];
        Scenario::new(
            name,
            format!("§5 throughput run at {clients} clients (throttled leg)"),
            base,
            phases,
        )
    }

    // --- scenarios the paper never ran --------------------------------------

    /// An ad-hoc compile storm lands mid-run: a steady population is joined
    /// by a wave of impatient all-SALES clients (2 s think time), then the
    /// system recovers. Exercises the ladder's behaviour through a step
    /// overload and back.
    pub fn compile_storm(scale: Scale) -> Self {
        let base = Self::custom_base(scale, 2007);
        let default_mix = WorkloadMix::paper_default(base.oltp_fraction);
        let phases = vec![
            Phase::steady("steady", scale.minutes(15), 10, default_mix),
            Phase::steady("storm", scale.minutes(10), 26, WorkloadMix::sales_only())
                .with_think_time(SimDuration::from_secs(2)),
            Phase::steady("recovery", scale.minutes(15), 10, default_mix),
        ];
        Scenario::new(
            "compile_storm",
            "ad-hoc compile storm mid-run: steady → 26-client SALES storm → recovery",
            base,
            phases,
        )
    }

    /// A day/night load cycle over two workload classes: interactive
    /// sessions (tighter ladder) and scheduled reports (relaxed ladder).
    /// Night phases shift the mix toward OLTP/maintenance traffic.
    pub fn diurnal_two_classes(scale: Scale) -> Self {
        let mut base = Self::custom_base(scale, 2007);
        base.classes = vec![
            WorkloadClassConfig {
                name: "interactive".to_string(),
                client_share: 0.6,
                threshold_scale: 0.8,
                grant_fraction: 0.45,
            },
            WorkloadClassConfig {
                name: "reports".to_string(),
                client_share: 0.4,
                threshold_scale: 1.4,
                grant_fraction: 0.50,
            },
        ];
        let day_mix = WorkloadMix::new(0.85, 0.10, 0.05);
        let night_mix = WorkloadMix::new(0.45, 0.25, 0.30);
        let mut phases = Phase::diurnal("cycle", scale.minutes(10), 8, 6, 22, day_mix);
        let midpoint = (6 + 22) / 2;
        for phase in &mut phases {
            if phase.clients <= midpoint {
                phase.mix = night_mix;
            }
        }
        Scenario::new(
            "diurnal_two_classes",
            "sinusoidal day/night cycle, interactive + reports classes, night mix shift",
            base,
            phases,
        )
    }

    /// Repeated bursts arrive while the execution-grant pool degrades
    /// (70% → 45% → 25% of its budget), as if the machine were losing
    /// memory to an external consumer. Shows grant queueing and timeouts
    /// taking over as the pool shrinks.
    pub fn burst_degrading_pool(scale: Scale) -> Self {
        let base = Self::custom_base(scale, 2007);
        let default_mix = WorkloadMix::paper_default(base.oltp_fraction);
        let burst = |name: &str, grant_scale: f64| {
            Phase::steady(name, scale.minutes(8), 24, WorkloadMix::sales_only())
                .with_think_time(SimDuration::from_secs(3))
                .with_grant_budget_scale(grant_scale)
        };
        let phases = vec![
            Phase::steady("baseline", scale.minutes(10), 8, default_mix),
            burst("burst-70pct", 0.70),
            burst("burst-45pct", 0.45),
            burst("burst-25pct", 0.25),
            Phase::steady("recovery", scale.minutes(10), 8, default_mix),
        ];
        Scenario::new(
            "burst_degrading_pool",
            "burst arrivals against a degrading grant pool (100% → 25% budget)",
            base,
            phases,
        )
    }

    /// A class-mix shift at constant population: submissions move from
    /// SALES-dominated to TPC-H-like-dominated across four phases,
    /// contrasting the two families' very different compile-memory
    /// appetites under one admission policy.
    pub fn class_mix_shift(scale: Scale) -> Self {
        let base = Self::custom_base(scale, 2007);
        let mixes = [
            (0.90, 0.05, 0.05),
            (0.65, 0.30, 0.05),
            (0.40, 0.55, 0.05),
            (0.15, 0.80, 0.05),
        ];
        let phases = mixes
            .iter()
            .enumerate()
            .map(|(i, &(s, t, o))| {
                Phase::steady(
                    format!("shift-{i}"),
                    scale.minutes(12),
                    16,
                    WorkloadMix::new(s, t, o),
                )
            })
            .collect();
        Scenario::new(
            "class_mix_shift",
            "constant 16 clients; mix shifts SALES-heavy → TPC-H-like-heavy over 4 phases",
            base,
            phases,
        )
    }

    /// A client ramp across the paper's saturation knee: 8 → 40 clients in
    /// six steps (§5.2 locates maximum throughput at 30).
    pub fn ramp_to_saturation(scale: Scale) -> Self {
        let base = Self::custom_base(scale, 2007);
        let mix = WorkloadMix::paper_default(base.oltp_fraction);
        let phases = Phase::ramp("ramp", scale.minutes(8), 6, 8, 40, mix);
        Scenario::new(
            "ramp_to_saturation",
            "client ramp 8 → 40 across the §5.2 saturation knee",
            base,
            phases,
        )
    }

    // --- open-loop scenarios: arrival-process-driven load --------------------

    /// A steady open-loop Poisson stream against an empty closed loop: the
    /// offered rate is fixed by the process, not by think times, so queueing
    /// delay cannot throttle the arrivals. The textbook contrast case to
    /// the paper's closed-loop population.
    pub fn open_loop_poisson(scale: Scale) -> Self {
        let mut base = Self::custom_base(scale, 2007);
        base.arrivals = vec![ArrivalSourceConfig {
            name: "web".to_string(),
            process: ArrivalProcess::Poisson { rate_per_sec: 0.5 },
            class: 0,
            max_in_flight: 48,
            modeled_clients: 50_000,
        }];
        let mix = WorkloadMix::paper_default(base.oltp_fraction);
        let phases = vec![Phase::steady("open-loop", scale.minutes(40), 0, mix)];
        Scenario::new(
            "open_loop_poisson",
            "steady Poisson arrivals (0.5/s, 48 in flight) with no closed-loop clients",
            base,
            phases,
        )
    }

    /// A flash crowd as a two-state MMPP: long calm stretches at a fifth of
    /// a query per second punctuated by two-minute bursts at twenty times
    /// that rate. The bursts slam into the concurrency cap and the gateway
    /// ladder together.
    pub fn flash_crowd(scale: Scale) -> Self {
        let mut base = Self::custom_base(scale, 2007);
        base.arrivals = vec![ArrivalSourceConfig {
            name: "crowd".to_string(),
            process: ArrivalProcess::Mmpp {
                calm_rate_per_sec: 0.2,
                burst_rate_per_sec: 4.0,
                mean_calm_secs: 600.0,
                mean_burst_secs: 120.0,
            },
            class: 0,
            max_in_flight: 96,
            modeled_clients: 200_000,
        }];
        let mix = WorkloadMix::paper_default(base.oltp_fraction);
        let phases = vec![Phase::steady("open-loop", scale.minutes(40), 0, mix)];
        Scenario::new(
            "flash_crowd",
            "MMPP flash crowd: 0.2/s calm, 4/s bursts averaging two minutes",
            base,
            phases,
        )
    }

    /// Heavy-tailed inter-arrival gaps from a bounded Pareto: most gaps are
    /// near the 200 ms floor (dense arrival trains), but the tail stretches
    /// to five-minute silences — bursty in a way no Poisson stream is.
    pub fn heavy_tail_arrivals(scale: Scale) -> Self {
        let mut base = Self::custom_base(scale, 2007);
        base.arrivals = vec![ArrivalSourceConfig {
            name: "heavy-tail".to_string(),
            process: ArrivalProcess::BoundedPareto {
                alpha: 1.5,
                min_secs: 0.2,
                max_secs: 300.0,
            },
            class: 0,
            max_in_flight: 64,
            modeled_clients: 100_000,
        }];
        let mix = WorkloadMix::paper_default(base.oltp_fraction);
        let phases = vec![Phase::steady("open-loop", scale.minutes(40), 0, mix)];
        Scenario::new(
            "heavy_tail_arrivals",
            "bounded-Pareto gaps (alpha 1.5, 0.2 s – 300 s): arrival trains and long silences",
            base,
            phases,
        )
    }

    /// A sinusoidal day/night arrival rate sampled exactly by thinning: two
    /// full cycles swinging between 0.1/s and 0.9/s. The rate varies
    /// *within* one phase — no piecewise-constant client steps involved.
    pub fn diurnal_arrivals(scale: Scale) -> Self {
        let mut base = Self::custom_base(scale, 2007);
        base.arrivals = vec![ArrivalSourceConfig {
            name: "diurnal".to_string(),
            process: ArrivalProcess::Diurnal {
                base_rate_per_sec: 0.5,
                amplitude: 0.8,
                period_secs: scale.minutes(20).as_secs_f64(),
            },
            class: 0,
            max_in_flight: 64,
            modeled_clients: 100_000,
        }];
        let mix = WorkloadMix::paper_default(base.oltp_fraction);
        let phases = vec![Phase::steady("open-loop", scale.minutes(40), 0, mix)];
        Scenario::new(
            "diurnal_arrivals",
            "sinusoidal arrival rate (0.1/s – 0.9/s, two cycles) via exact thinning",
            base,
            phases,
        )
    }

    /// The million-user scale cell: a 4 500/s Poisson firehose standing in
    /// for a million modeled users (≥ 10 M arrivals even at quick scale)
    /// over a cohort-compressed 64-client closed loop. Nearly all arrivals
    /// shed at the 512-slot cap — by design: each shed arrival costs one
    /// wheel event and one digest fold, so the cell measures the admission
    /// path's per-arrival overhead at wheel-limited rates.
    pub fn open_loop_scale(scale: Scale) -> Self {
        let mut base = Self::custom_base(scale, 2007);
        base.cohort_compressed = true;
        base.arrivals = vec![ArrivalSourceConfig {
            name: "firehose".to_string(),
            process: ArrivalProcess::Poisson {
                rate_per_sec: 4_500.0,
            },
            class: 0,
            max_in_flight: 512,
            modeled_clients: 1_000_000,
        }];
        let mix = WorkloadMix::paper_default(base.oltp_fraction);
        let phases = vec![Phase::steady("firehose", scale.minutes(40), 64, mix)];
        Scenario::new(
            "open_loop_scale",
            "million-user firehose: 4500/s Poisson + cohort-compressed 64-client loop",
            base,
            phases,
        )
    }

    // --- chaos scenarios: deterministic fault injection ----------------------

    /// Ballast creeps into the machine mid-run — an external consumer leaks
    /// half the brokered memory in two dozen jittered increments, holds it,
    /// then releases it all at once. Compile targets shrink, OOM pressure
    /// rises, and the recovery phase measures how fast throughput returns.
    pub fn memory_leak_creep(scale: Scale) -> Self {
        let base = Self::chaos_base(scale, 2007);
        let mix = WorkloadMix::paper_default(base.oltp_fraction);
        let phases = vec![
            Phase::steady("steady", scale.minutes(12), 14, mix),
            Phase::steady("leaking", scale.minutes(14), 14, mix),
            Phase::steady("recovery", scale.minutes(12), 14, mix),
        ];
        let faults = FaultPlan::new().with(
            scale.minutes(12),
            scale.minutes(14),
            FaultKind::MemoryLeak {
                total_bytes: base.broker.brokered_bytes() / 2,
                steps: 24,
            },
        );
        Scenario::new(
            "memory_leak_creep",
            "external leak ramps to half the brokered memory, holds, then clears",
            base,
            phases,
        )
        .with_faults(faults)
    }

    /// The optimizer stalls: every compile step takes 5x its normal service
    /// time for a ten-minute window. Queries pile up at the gateway, the
    /// ladder times out compiles, and the per-class breakers open until the
    /// stall clears.
    pub fn compile_stall(scale: Scale) -> Self {
        let base = Self::chaos_base(scale, 2007);
        let mix = WorkloadMix::paper_default(base.oltp_fraction);
        let phases = vec![
            Phase::steady("steady", scale.minutes(10), 16, mix),
            Phase::steady("stalled", scale.minutes(10), 16, mix),
            Phase::steady("recovery", scale.minutes(12), 16, mix),
        ];
        let faults = FaultPlan::new().with(
            scale.minutes(10),
            scale.minutes(10),
            FaultKind::CompileStall { multiplier: 5.0 },
        );
        Scenario::new(
            "compile_stall",
            "optimizer service time 5x for ten minutes; breakers absorb the stall",
            base,
            phases,
        )
        .with_faults(faults)
    }

    /// Half the executor slots fail and later come back. Execution times
    /// inflate with the shrunken machine, grants hold longer, and the
    /// admission ladder backs up behind the slower pipeline.
    pub fn slot_failure(scale: Scale) -> Self {
        let base = Self::chaos_base(scale, 2007);
        let mix = WorkloadMix::paper_default(base.oltp_fraction);
        let phases = vec![
            Phase::steady("steady", scale.minutes(10), 18, mix),
            Phase::steady("degraded", scale.minutes(10), 18, mix),
            Phase::steady("recovery", scale.minutes(12), 18, mix),
        ];
        let faults = FaultPlan::new().with(
            scale.minutes(10),
            scale.minutes(10),
            FaultKind::SlotLoss {
                slots: (base.cpus / 2).max(1),
            },
        );
        Scenario::new(
            "slot_failure",
            "half the executor slots fail for ten minutes, then return",
            base,
            phases,
        )
        .with_faults(faults)
    }

    /// The grant pool collapses to a quarter of its budget under an
    /// impatient all-SALES population: grant waits time out, every failed
    /// client re-arrives, and only the exponential backoff, retry budgets
    /// and breakers stand between the collapse and a retry storm.
    pub fn retry_storm(scale: Scale) -> Self {
        let base = Self::chaos_base(scale, 2007);
        let phases = vec![
            Phase::steady("steady", scale.minutes(8), 22, WorkloadMix::sales_only())
                .with_think_time(SimDuration::from_secs(5)),
            Phase::steady("collapse", scale.minutes(8), 22, WorkloadMix::sales_only())
                .with_think_time(SimDuration::from_secs(5)),
            Phase::steady("recovery", scale.minutes(8), 22, WorkloadMix::sales_only())
                .with_think_time(SimDuration::from_secs(5)),
        ];
        let faults = FaultPlan::new().with(
            scale.minutes(8),
            scale.minutes(8),
            FaultKind::GrantCollapse { scale: 0.25 },
        );
        Scenario::new(
            "retry_storm",
            "grant budget collapses to 25%; backoff and breakers damp the retry storm",
            base,
            phases,
        )
        .with_faults(faults)
    }

    /// A thundering herd: sixteen extra clients slam into a ten-client
    /// steady state for eight minutes, then vanish. Time-to-recovery after
    /// the herd leaves is the scenario's headline metric.
    pub fn thundering_herd_recovery(scale: Scale) -> Self {
        let base = Self::chaos_base(scale, 2007);
        let mix = WorkloadMix::paper_default(base.oltp_fraction);
        let phases = vec![
            Phase::steady("steady", scale.minutes(10), 10, mix),
            Phase::steady("herd", scale.minutes(8), 10, mix),
            Phase::steady("recovery", scale.minutes(12), 10, mix),
        ];
        let faults = FaultPlan::new().with(
            scale.minutes(10),
            scale.minutes(8),
            FaultKind::ClientSurge { extra_clients: 16 },
        );
        Scenario::new(
            "thundering_herd_recovery",
            "16-client herd joins a 10-client steady state, then leaves",
            base,
            phases,
        )
        .with_faults(faults)
    }

    /// Base configuration for the chaos scenarios: [`Self::custom_base`]
    /// with the graceful-degradation machinery switched on — per-class
    /// circuit breakers, a finite retry budget, and a total query deadline
    /// — so the fault windows exercise the full resilience stack.
    fn chaos_base(scale: Scale, seed: u64) -> ServerConfig {
        let mut base = Self::custom_base(scale, seed);
        base.breaker = BreakerConfig {
            enabled: true,
            ..BreakerConfig::default()
        };
        base.retry_budget = 6;
        base.query_deadline = Some(scale.minutes(20));
        base
    }

    /// Base configuration for the beyond-the-paper scenarios: the paper's
    /// machine at quick reporting granularity, no warm-up exclusion (every
    /// phase is reported), fixed seed.
    fn custom_base(scale: Scale, seed: u64) -> ServerConfig {
        let mut base = ServerConfig::quick(1, true);
        if scale == Scale::Paper {
            base.slice = SimDuration::from_secs(3600);
        }
        base.warmup = SimDuration::ZERO;
        base.seed = seed;
        base
    }

    // --- registry -----------------------------------------------------------

    /// The names [`Scenario::builtin`] accepts.
    pub fn builtin_names() -> &'static [&'static str] {
        &[
            "paper_figure3",
            "paper_figure4",
            "paper_figure5",
            "compile_storm",
            "diurnal_two_classes",
            "burst_degrading_pool",
            "class_mix_shift",
            "ramp_to_saturation",
            "open_loop_poisson",
            "flash_crowd",
            "heavy_tail_arrivals",
            "diurnal_arrivals",
            "open_loop_scale",
            "memory_leak_creep",
            "compile_stall",
            "slot_failure",
            "retry_storm",
            "thundering_herd_recovery",
        ]
    }

    /// The names of the open-loop scenarios — the subset of
    /// [`Scenario::builtin_names`] whose load comes from arrival sources
    /// rather than (or in addition to) a closed-loop client population.
    pub fn open_loop_names() -> &'static [&'static str] {
        &[
            "open_loop_poisson",
            "flash_crowd",
            "heavy_tail_arrivals",
            "diurnal_arrivals",
            "open_loop_scale",
        ]
    }

    /// The names of the chaos (fault-injection) scenarios — the subset of
    /// [`Scenario::builtin_names`] with a non-empty [`FaultPlan`].
    pub fn chaos_names() -> &'static [&'static str] {
        &[
            "memory_leak_creep",
            "compile_stall",
            "slot_failure",
            "retry_storm",
            "thundering_herd_recovery",
        ]
    }

    /// Look up a built-in scenario by name.
    pub fn builtin(name: &str, scale: Scale) -> Option<Scenario> {
        match name {
            "paper_figure3" => Some(Self::paper_figure3(scale)),
            "paper_figure4" => Some(Self::paper_figure4(scale)),
            "paper_figure5" => Some(Self::paper_figure5(scale)),
            "compile_storm" => Some(Self::compile_storm(scale)),
            "diurnal_two_classes" => Some(Self::diurnal_two_classes(scale)),
            "burst_degrading_pool" => Some(Self::burst_degrading_pool(scale)),
            "class_mix_shift" => Some(Self::class_mix_shift(scale)),
            "ramp_to_saturation" => Some(Self::ramp_to_saturation(scale)),
            "open_loop_poisson" => Some(Self::open_loop_poisson(scale)),
            "flash_crowd" => Some(Self::flash_crowd(scale)),
            "heavy_tail_arrivals" => Some(Self::heavy_tail_arrivals(scale)),
            "diurnal_arrivals" => Some(Self::diurnal_arrivals(scale)),
            "open_loop_scale" => Some(Self::open_loop_scale(scale)),
            "memory_leak_creep" => Some(Self::memory_leak_creep(scale)),
            "compile_stall" => Some(Self::compile_stall(scale)),
            "slot_failure" => Some(Self::slot_failure(scale)),
            "retry_storm" => Some(Self::retry_storm(scale)),
            "thundering_herd_recovery" => Some(Self::thundering_herd_recovery(scale)),
            _ => None,
        }
    }

    /// Every built-in scenario at the given scale.
    pub fn all_builtins(scale: Scale) -> Vec<Scenario> {
        Self::builtin_names()
            .iter()
            .map(|n| Self::builtin(n, scale).expect("registry names resolve"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_resolves_and_validates() {
        for name in Scenario::builtin_names() {
            for scale in [Scale::Quick, Scale::Paper] {
                let s = Scenario::builtin(name, scale)
                    .unwrap_or_else(|| panic!("builtin {name} missing"));
                assert_eq!(&s.name, name);
                s.validate();
                assert!(
                    s.max_clients() > 0 || !s.base.arrivals.is_empty(),
                    "{name} drives no load"
                );
                assert!(!s.total_duration().is_zero());
            }
        }
        assert!(Scenario::builtin("no_such_scenario", Scale::Quick).is_none());
    }

    #[test]
    fn at_least_three_builtins_go_beyond_the_paper() {
        let beyond: Vec<_> = Scenario::builtin_names()
            .iter()
            .filter(|n| !n.starts_with("paper_"))
            .collect();
        assert!(beyond.len() >= 3, "only {} custom scenarios", beyond.len());
    }

    #[test]
    fn paper_figures_delegate_to_the_paper_config() {
        let s = Scenario::paper_figure3(Scale::Paper);
        let reference = ServerConfig::paper(30, true);
        assert_eq!(s.base.cpus, reference.cpus);
        assert_eq!(s.base.duration, reference.duration);
        assert!(s.base.throttle.enabled);
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.phases[0].clients, 30);
        assert_eq!(s.total_duration(), reference.duration);
    }

    #[test]
    fn paper_scale_stretches_custom_phase_durations() {
        let quick = Scenario::compile_storm(Scale::Quick);
        let paper = Scenario::compile_storm(Scale::Paper);
        assert_eq!(
            paper.total_duration().as_secs(),
            quick.total_duration().as_secs() * 6
        );
    }

    #[test]
    fn degrading_pool_scenario_actually_degrades() {
        let s = Scenario::burst_degrading_pool(Scale::Quick);
        let scales: Vec<f64> = s
            .phases
            .iter()
            .filter_map(|p| p.overrides.grant_budget_scale)
            .collect();
        assert_eq!(scales, vec![0.70, 0.45, 0.25]);
        assert_eq!(s.max_clients(), 24);
    }

    #[test]
    fn chaos_builtins_carry_fault_plans_and_degradation_config() {
        for name in Scenario::chaos_names() {
            for scale in [Scale::Quick, Scale::Paper] {
                let s = Scenario::builtin(name, scale)
                    .unwrap_or_else(|| panic!("chaos builtin {name} missing"));
                assert!(!s.faults.is_empty(), "{name} schedules no faults");
                assert!(s.base.breaker.enabled, "{name} leaves the breaker off");
                assert!(s.base.retry_budget > 0, "{name} has no retry budget");
                assert!(s.base.query_deadline.is_some(), "{name} has no deadline");
                s.validate();
            }
        }
        // Everything outside the chaos set stays fault-free: the layer is
        // strictly additive for pre-existing scenarios and their goldens.
        for name in Scenario::builtin_names() {
            if !Scenario::chaos_names().contains(name) {
                let s = Scenario::builtin(name, Scale::Quick).unwrap();
                assert!(s.faults.is_empty(), "{name} unexpectedly has faults");
                assert!(!s.base.breaker.enabled, "{name} unexpectedly breakered");
            }
        }
    }

    #[test]
    fn open_loop_builtins_declare_sources_and_stay_fault_free() {
        for name in Scenario::open_loop_names() {
            for scale in [Scale::Quick, Scale::Paper] {
                let s = Scenario::builtin(name, scale)
                    .unwrap_or_else(|| panic!("open-loop builtin {name} missing"));
                assert!(!s.base.arrivals.is_empty(), "{name} declares no sources");
                assert!(s.faults.is_empty(), "{name} unexpectedly has faults");
                for src in &s.base.arrivals {
                    assert!(src.class < s.base.classes.len().max(1));
                }
                s.validate();
                s.runtime_config().validate();
            }
        }
        // The registry subset relation holds.
        for name in Scenario::open_loop_names() {
            assert!(Scenario::builtin_names().contains(name));
        }
    }

    #[test]
    fn scale_scenario_offers_ten_million_arrivals_even_at_quick_scale() {
        let s = Scenario::open_loop_scale(Scale::Quick);
        assert!(s.base.cohort_compressed, "scale cell must compress cohorts");
        let offered: f64 = s
            .base
            .arrivals
            .iter()
            .map(|src| src.process.mean_rate_per_sec() * s.total_duration().as_secs_f64())
            .sum();
        assert!(
            offered >= 10_000_000.0,
            "scale cell offers only {offered:.0} arrivals"
        );
        let modeled: u32 = s.base.arrivals.iter().map(|src| src.modeled_clients).sum();
        assert!(modeled >= 1_000_000, "scale cell models {modeled} users");
    }

    #[test]
    #[should_panic(expected = "drives no load")]
    fn zero_load_scenario_rejected() {
        let base = Scenario::custom_base(Scale::Quick, 2007);
        let mix = WorkloadMix::paper_default(base.oltp_fraction);
        let phases = vec![Phase::steady("idle", SimDuration::from_secs(60), 0, mix)];
        Scenario::new("idle", "no clients, no sources", base, phases).validate();
    }

    #[test]
    fn surge_headroom_reaches_the_runtime_config() {
        let s = Scenario::thundering_herd_recovery(Scale::Quick);
        assert_eq!(s.max_clients(), 10, "phase population");
        assert_eq!(
            s.runtime_config().clients,
            10 + s.faults.max_surge_clients(),
            "runtime config must reserve client slots for the surge"
        );
    }

    #[test]
    fn with_seed_only_changes_the_seed() {
        let a = Scenario::compile_storm(Scale::Quick);
        let b = Scenario::compile_storm(Scale::Quick).with_seed(99);
        assert_eq!(b.base.seed, 99);
        assert_eq!(a.phases, b.phases);
    }

    #[test]
    fn with_policy_reaches_the_runtime_config() {
        let a = Scenario::compile_storm(Scale::Quick);
        assert_eq!(a.base.policy, PolicyKind::Ladder, "ladder is the default");
        for kind in PolicyKind::all() {
            let s = Scenario::compile_storm(Scale::Quick).with_policy(kind);
            assert_eq!(s.runtime_config().policy, kind);
            assert_eq!(a.phases, s.phases, "policy must not perturb the phases");
        }
    }
}
