//! Trace serialization and deterministic replay.
//!
//! A [`Trace`] wraps the engine's recorded admission/grant event stream
//! ([`TraceEvent`]) with a line-oriented text codec and a replay that
//! reconstructs per-phase [`PhaseReport`]s from the events alone. The
//! regression workflow is:
//!
//! 1. run a scenario with recording on and save [`Trace::encode`]'s output
//!    as a golden file;
//! 2. later (new build, refactored engine), run the same scenario and
//!    compare — same seed and same policy code must reproduce the encoded
//!    trace byte for byte, and [`Trace::replay`] of the *old* file must
//!    match the *new* run's phase reports.
//!
//! The format is deliberately not the vendored `serde` (whose offline
//! stand-in derives no real serialization — see `vendor/serde`): it is a
//! self-contained `key value` line format that stays diffable in code
//! review and stable across serde swaps.

use crate::runner::PhaseReport;
use throttledb_engine::{BreakerState, FailureKind, TraceEvent};
use throttledb_sim::SimTime;

/// Header line identifying the format and its version.
pub(crate) const HEADER: &str = "throttledb-trace v1";

/// Append the v1 text line for one event to `out` (including the trailing
/// newline). Shared by [`Trace::encode`], the streaming v1 writer paths,
/// and the v2→v1 transcoder so every producer emits byte-identical lines.
pub(crate) fn encode_event_into(out: &mut String, ev: &TraceEvent) {
    match ev {
        TraceEvent::PhaseStart { at, name, clients } => {
            // The free-form name goes last so it may contain spaces.
            out.push_str(&format!("phase {} {} {}\n", at.as_micros(), clients, name));
        }
        TraceEvent::Submitted {
            at,
            query,
            client,
            class,
        } => out.push_str(&format!(
            "submit {} {} {} {}\n",
            at.as_micros(),
            query,
            client,
            class
        )),
        TraceEvent::GatewayBlocked { at, query, level } => {
            out.push_str(&format!("gateway {} {} {}\n", at.as_micros(), query, level))
        }
        TraceEvent::BestEffort { at, query } => {
            out.push_str(&format!("besteffort {} {}\n", at.as_micros(), query));
        }
        TraceEvent::GrantQueued { at, query, bytes } => {
            out.push_str(&format!("grantq {} {} {}\n", at.as_micros(), query, bytes))
        }
        TraceEvent::ExecStarted { at, query, bytes } => {
            out.push_str(&format!("exec {} {} {}\n", at.as_micros(), query, bytes))
        }
        TraceEvent::Completed { at, query } => {
            out.push_str(&format!("done {} {}\n", at.as_micros(), query));
        }
        TraceEvent::Failed { at, query, kind } => {
            let kind = match kind {
                FailureKind::OutOfMemory => "oom",
                FailureKind::CompileTimeout => "compile_timeout",
                FailureKind::GrantTimeout => "grant_timeout",
            };
            out.push_str(&format!("fail {} {} {}\n", at.as_micros(), query, kind));
        }
        TraceEvent::CompilePeak { at, bytes } => {
            out.push_str(&format!("cpeak {} {}\n", at.as_micros(), bytes));
        }
        TraceEvent::FaultInjected { at, fault } => {
            out.push_str(&format!("fault {} {} inject\n", at.as_micros(), fault));
        }
        TraceEvent::FaultCleared { at, fault } => {
            out.push_str(&format!("fault {} {} clear\n", at.as_micros(), fault));
        }
        TraceEvent::Shed { at, query } => {
            out.push_str(&format!("shed {} {}\n", at.as_micros(), query));
        }
        TraceEvent::BreakerTransition { at, class, state } => out.push_str(&format!(
            "breaker {} {} {}\n",
            at.as_micros(),
            class,
            state.name()
        )),
        TraceEvent::End { at } => {
            out.push_str(&format!("end {}\n", at.as_micros()));
        }
    }
}

/// Parse one v1 event line; `None` on any malformed field. Shared by
/// [`Trace::decode`] and the line-streaming v1→v2 transcoder.
pub(crate) fn decode_line(line: &str) -> Option<TraceEvent> {
    let tokens: Vec<&str> = line.split(' ').collect();
    let num = |i: usize| -> Option<u64> { tokens.get(i)?.parse::<u64>().ok() };
    let at = |i: usize| -> Option<SimTime> { Some(SimTime::from_micros(num(i)?)) };
    let arity = |n: usize| -> Option<()> { (tokens.len() == n).then_some(()) };
    Some(match *tokens.first()? {
        "phase" => {
            if tokens.len() < 4 {
                return None;
            }
            TraceEvent::PhaseStart {
                at: at(1)?,
                clients: num(2)? as u32,
                // The free-form name is everything after the counts.
                name: tokens[3..].join(" "),
            }
        }
        "submit" => {
            arity(5)?;
            TraceEvent::Submitted {
                at: at(1)?,
                query: num(2)?,
                client: num(3)? as u32,
                class: num(4)? as usize,
            }
        }
        "gateway" => {
            arity(4)?;
            TraceEvent::GatewayBlocked {
                at: at(1)?,
                query: num(2)?,
                level: num(3)? as usize,
            }
        }
        "besteffort" => {
            arity(3)?;
            TraceEvent::BestEffort {
                at: at(1)?,
                query: num(2)?,
            }
        }
        "grantq" => {
            arity(4)?;
            TraceEvent::GrantQueued {
                at: at(1)?,
                query: num(2)?,
                bytes: num(3)?,
            }
        }
        "exec" => {
            arity(4)?;
            TraceEvent::ExecStarted {
                at: at(1)?,
                query: num(2)?,
                bytes: num(3)?,
            }
        }
        "done" => {
            arity(3)?;
            TraceEvent::Completed {
                at: at(1)?,
                query: num(2)?,
            }
        }
        "fail" => {
            arity(4)?;
            let kind = match tokens[3] {
                "oom" => FailureKind::OutOfMemory,
                "compile_timeout" => FailureKind::CompileTimeout,
                "grant_timeout" => FailureKind::GrantTimeout,
                _ => return None,
            };
            TraceEvent::Failed {
                at: at(1)?,
                query: num(2)?,
                kind,
            }
        }
        "cpeak" => {
            arity(3)?;
            TraceEvent::CompilePeak {
                at: at(1)?,
                bytes: num(2)?,
            }
        }
        "fault" => {
            arity(4)?;
            let at = at(1)?;
            let fault = num(2)? as u32;
            match tokens[3] {
                "inject" => TraceEvent::FaultInjected { at, fault },
                "clear" => TraceEvent::FaultCleared { at, fault },
                _ => return None,
            }
        }
        "shed" => {
            arity(3)?;
            TraceEvent::Shed {
                at: at(1)?,
                query: num(2)?,
            }
        }
        "breaker" => {
            arity(4)?;
            TraceEvent::BreakerTransition {
                at: at(1)?,
                class: num(2)? as usize,
                state: BreakerState::parse(tokens[3])?,
            }
        }
        "end" => {
            arity(2)?;
            TraceEvent::End { at: at(1)? }
        }
        _ => return None,
    })
}

/// Incremental replay: folds trace events one at a time into per-phase
/// [`PhaseReport`]s, so a multi-gigabyte stream replays at O(phases)
/// memory instead of O(events). [`Trace::replay`] is this fold applied to
/// a buffered trace; the streaming v2 reader feeds it frame by frame.
#[derive(Debug, Default)]
pub struct StreamingReplay {
    reports: Vec<PhaseReport>,
    open: bool,
    final_at: Option<SimTime>,
}

impl StreamingReplay {
    /// An empty replay: no phases seen yet.
    pub fn new() -> Self {
        StreamingReplay::default()
    }

    /// Fold one event, in stream order.
    pub fn observe(&mut self, ev: &TraceEvent) {
        if let TraceEvent::PhaseStart { at, name, clients } = ev {
            if let (true, Some(last)) = (self.open, self.reports.last_mut()) {
                last.end = *at;
            }
            self.reports.push(PhaseReport {
                name: name.clone(),
                start: *at,
                end: *at,
                clients: *clients,
                submitted: 0,
                completed: 0,
                failed: 0,
                shed: 0,
                oom_failures: 0,
                compile_timeouts: 0,
                grant_timeouts: 0,
                best_effort_plans: 0,
                peak_compile_bytes: 0,
            });
            self.open = true;
            return;
        }
        if let TraceEvent::End { at } = ev {
            self.final_at = Some(*at);
        }
        let Some(current) = self.reports.last_mut() else {
            return;
        };
        match ev {
            TraceEvent::Submitted { .. } => current.submitted += 1,
            TraceEvent::Completed { .. } => current.completed += 1,
            TraceEvent::BestEffort { .. } => current.best_effort_plans += 1,
            TraceEvent::Failed { kind, .. } => {
                current.failed += 1;
                match kind {
                    FailureKind::OutOfMemory => current.oom_failures += 1,
                    FailureKind::CompileTimeout => current.compile_timeouts += 1,
                    FailureKind::GrantTimeout => current.grant_timeouts += 1,
                }
            }
            TraceEvent::CompilePeak { bytes, .. } => {
                current.peak_compile_bytes = current.peak_compile_bytes.max(*bytes);
            }
            // A trace recorded before the chaos layer simply has no
            // `shed` lines, so old goldens replay with `shed: 0`.
            TraceEvent::Shed { .. } => current.shed += 1,
            TraceEvent::GatewayBlocked { .. }
            | TraceEvent::GrantQueued { .. }
            | TraceEvent::ExecStarted { .. }
            | TraceEvent::FaultInjected { .. }
            | TraceEvent::FaultCleared { .. }
            | TraceEvent::BreakerTransition { .. }
            | TraceEvent::PhaseStart { .. }
            | TraceEvent::End { .. } => {}
        }
    }

    /// Close the fold and return the per-phase reports.
    pub fn finish(mut self) -> Vec<PhaseReport> {
        if let (Some(at), Some(last)) = (self.final_at, self.reports.last_mut()) {
            last.end = at;
        }
        self.reports
    }
}

/// A recorded admission/grant event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// Why decoding a trace failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The input did not start with the `throttledb-trace v1` header.
    BadHeader,
    /// A line (1-based index after the header) could not be parsed.
    BadLine(usize, String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadHeader => write!(f, "missing or unsupported trace header"),
            TraceError::BadLine(n, line) => write!(f, "unparseable trace line {n}: {line:?}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// A trace from recorded events.
    pub fn new(events: Vec<TraceEvent>) -> Self {
        Trace { events }
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The recorded events, by value.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize to the line-oriented text format (one event per line,
    /// preceded by the version header). Timestamps are microseconds.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 24 + HEADER.len() + 1);
        out.push_str(HEADER);
        out.push('\n');
        for ev in &self.events {
            encode_event_into(&mut out, ev);
        }
        out
    }

    /// Parse a trace previously produced by [`Trace::encode`].
    pub fn decode(text: &str) -> Result<Trace, TraceError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(TraceError::BadHeader);
        }
        let mut events = Vec::new();
        for (idx, line) in lines.enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            events.push(
                decode_line(line).ok_or_else(|| TraceError::BadLine(idx + 1, line.to_string()))?,
            );
        }
        Ok(Trace { events })
    }

    /// A 64-bit FNV-1a digest of the encoded form — a compact fingerprint
    /// for quick "did anything change" comparisons (same hash the engine's
    /// plan-cache keys use).
    pub fn digest(&self) -> u64 {
        throttledb_workload::fnv1a_64(self.encode().as_bytes())
    }

    /// Replay the trace: reconstruct per-phase [`PhaseReport`]s from the
    /// event stream alone. For a trace recorded by the scenario runner,
    /// the result equals the live run's reports exactly — the regression
    /// contract a golden trace file enforces.
    pub fn replay(&self) -> Vec<PhaseReport> {
        let mut replay = StreamingReplay::new();
        for ev in &self.events {
            replay.observe(ev);
        }
        replay.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PhaseStart {
                at: SimTime::ZERO,
                name: "steady state".into(),
                clients: 4,
            },
            TraceEvent::Submitted {
                at: SimTime::from_secs(1),
                query: 0,
                client: 2,
                class: 0,
            },
            TraceEvent::GatewayBlocked {
                at: SimTime::from_secs(2),
                query: 0,
                level: 1,
            },
            TraceEvent::CompilePeak {
                at: SimTime::from_secs(2),
                bytes: 64 << 20,
            },
            TraceEvent::BestEffort {
                at: SimTime::from_secs(3),
                query: 0,
            },
            TraceEvent::GrantQueued {
                at: SimTime::from_secs(3),
                query: 0,
                bytes: 512 << 20,
            },
            TraceEvent::ExecStarted {
                at: SimTime::from_secs(4),
                query: 0,
                bytes: 256 << 20,
            },
            TraceEvent::Completed {
                at: SimTime::from_secs(9),
                query: 0,
            },
            TraceEvent::PhaseStart {
                at: SimTime::from_secs(10),
                name: "storm".into(),
                clients: 9,
            },
            TraceEvent::Submitted {
                at: SimTime::from_secs(11),
                query: 1,
                client: 7,
                class: 1,
            },
            TraceEvent::Failed {
                at: SimTime::from_secs(12),
                query: 1,
                kind: FailureKind::GrantTimeout,
            },
            TraceEvent::FaultInjected {
                at: SimTime::from_secs(13),
                fault: 0,
            },
            TraceEvent::BreakerTransition {
                at: SimTime::from_secs(14),
                class: 1,
                state: BreakerState::Open,
            },
            TraceEvent::Shed {
                at: SimTime::from_secs(15),
                query: 2,
            },
            TraceEvent::BreakerTransition {
                at: SimTime::from_secs(16),
                class: 1,
                state: BreakerState::HalfOpen,
            },
            TraceEvent::FaultCleared {
                at: SimTime::from_secs(17),
                fault: 0,
            },
            TraceEvent::End {
                at: SimTime::from_secs(20),
            },
        ]
    }

    #[test]
    fn codec_round_trips_every_event_kind() {
        let trace = Trace::new(sample_events());
        let encoded = trace.encode();
        let decoded = Trace::decode(&encoded).expect("decodes");
        assert_eq!(decoded, trace);
        // Encoding is stable: a second encode is byte-identical.
        assert_eq!(decoded.encode(), encoded);
    }

    #[test]
    fn phase_names_may_contain_spaces() {
        let trace = Trace::new(sample_events());
        let decoded = Trace::decode(&trace.encode()).unwrap();
        match &decoded.events()[0] {
            TraceEvent::PhaseStart { name, .. } => assert_eq!(name, "steady state"),
            other => panic!("unexpected first event {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Trace::decode("nonsense"), Err(TraceError::BadHeader));
        let bad_line = format!("{HEADER}\nsubmit not-a-number 1 2 3\n");
        assert!(matches!(
            Trace::decode(&bad_line),
            Err(TraceError::BadLine(1, _))
        ));
        let unknown_tag = format!("{HEADER}\nwibble 1 2\n");
        assert!(matches!(
            Trace::decode(&unknown_tag),
            Err(TraceError::BadLine(1, _))
        ));
    }

    #[test]
    fn replay_segments_by_phase() {
        let reports = Trace::new(sample_events()).replay();
        assert_eq!(reports.len(), 2);
        let steady = &reports[0];
        assert_eq!(steady.name, "steady state");
        assert_eq!(steady.start, SimTime::ZERO);
        assert_eq!(steady.end, SimTime::from_secs(10));
        assert_eq!(steady.clients, 4);
        assert_eq!(steady.submitted, 1);
        assert_eq!(steady.completed, 1);
        assert_eq!(steady.best_effort_plans, 1);
        assert_eq!(steady.failed, 0);
        assert_eq!(steady.peak_compile_bytes, 64 << 20);
        let storm = &reports[1];
        assert_eq!(storm.end, SimTime::from_secs(20));
        assert_eq!(storm.failed, 1);
        assert_eq!(storm.grant_timeouts, 1);
        assert_eq!(storm.shed, 1);
        assert_eq!(storm.peak_compile_bytes, 0);
        assert_eq!(steady.shed, 0);
    }

    #[test]
    fn pre_chaos_traces_still_decode_with_zero_shed() {
        // A golden recorded before the chaos layer has none of the new
        // line kinds; it must decode and replay unchanged.
        let old = format!(
            "{HEADER}\nphase 0 2 legacy\nsubmit 1000000 0 1 0\ndone 5000000 0\nend 9000000\n"
        );
        let trace = Trace::decode(&old).expect("pre-chaos trace decodes");
        let reports = trace.replay();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].completed, 1);
        assert_eq!(reports[0].shed, 0);
    }

    #[test]
    fn fault_and_breaker_lines_reject_unknown_tails() {
        let bad_fault = format!("{HEADER}\nfault 1000 0 explode\n");
        assert!(matches!(
            Trace::decode(&bad_fault),
            Err(TraceError::BadLine(1, _))
        ));
        let bad_state = format!("{HEADER}\nbreaker 1000 0 ajar\n");
        assert!(matches!(
            Trace::decode(&bad_state),
            Err(TraceError::BadLine(1, _))
        ));
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = Trace::new(sample_events());
        let b = Trace::new(sample_events());
        assert_eq!(a.digest(), b.digest());
        let mut events = sample_events();
        events.truncate(events.len() - 1);
        assert_ne!(Trace::new(events).digest(), a.digest());
    }

    #[test]
    fn empty_trace_is_fine() {
        let t = Trace::new(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(Trace::decode(&t.encode()), Ok(t.clone()));
        assert!(t.replay().is_empty());
    }
}
