//! The shared FIFO wait queue.
//!
//! Every choke point in the system — gateway-ladder levels, the execution
//! memory-grant queue, per-class admission pools — queues waiters the same
//! way: strict FIFO with a per-waiter deadline and O(1) cancellation. The
//! queue is a slab of slots plus a ring of `(slot, generation)` tickets:
//! cancelling a waiter vacates its slot in O(1) and leaves a stale ticket
//! behind, which later pops recognise by its generation mismatch and skip.
//! This replaces the `VecDeque::retain` linear scans the per-crate queues
//! used before the governor layer existed.

use throttledb_sim::{SimDuration, SimTime};

/// A ticket identifying one waiter in a [`WaitQueue`].
///
/// Keys are invalidated when the waiter is popped or cancelled; a stale key
/// never aliases a later waiter because the slot's generation is bumped on
/// every vacate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WaiterKey {
    index: u32,
    generation: u32,
}

/// A waiter handed back by [`WaitQueue::pop_front`] or [`WaitQueue::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter<T> {
    /// The caller's payload.
    pub payload: T,
    /// When the waiter joined the queue.
    pub enqueued_at: SimTime,
    /// The instant after which the waiter should be abandoned.
    pub deadline: SimTime,
}

impl<T> Waiter<T> {
    /// Time spent queued as of `now` (zero if `now` precedes the enqueue).
    pub fn waited(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.enqueued_at)
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    entry: Option<Waiter<T>>,
}

/// FIFO wait queue with deadlines and O(1) cancellation.
///
/// All operations are O(1) amortized: `push` and `cancel` are O(1) exact;
/// `pop_front`/`front` skip tickets invalidated by earlier cancels, each of
/// which is visited at most once over the queue's lifetime.
///
/// # Examples
///
/// ```
/// use throttledb_governor::WaitQueue;
/// use throttledb_sim::SimTime;
///
/// let mut q = WaitQueue::new();
/// let now = SimTime::from_secs(10);
/// let deadline = SimTime::from_secs(40);
/// let first = q.push("q1", now, deadline);
/// let second = q.push("q2", now, deadline);
///
/// // Cancelling is O(1) and hands back the waiter...
/// let cancelled = q.cancel(first).expect("still queued");
/// assert_eq!(cancelled.payload, "q1");
///
/// // ...and pops transparently skip the vacated ticket (strict FIFO
/// // over the survivors).
/// assert!(!q.contains(first) && q.contains(second));
/// let next = q.pop_front().expect("one waiter left");
/// assert_eq!(next.payload, "q2");
/// assert_eq!(next.deadline, deadline);
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct WaitQueue<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    order: std::collections::VecDeque<WaiterKey>,
    len: usize,
}

impl<T> Default for WaitQueue<T> {
    fn default() -> Self {
        WaitQueue::new()
    }
}

impl<T> WaitQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        WaitQueue {
            slots: Vec::new(),
            free: Vec::new(),
            order: std::collections::VecDeque::new(),
            len: 0,
        }
    }

    /// Number of live waiters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no one is waiting.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueue a waiter; returns the key used to cancel it in O(1).
    pub fn push(&mut self, payload: T, now: SimTime, deadline: SimTime) -> WaiterKey {
        let entry = Waiter {
            payload,
            enqueued_at: now,
            deadline,
        };
        let index = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize].entry = Some(entry);
                i
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    entry: Some(entry),
                });
                i
            }
        };
        let key = WaiterKey {
            index,
            generation: self.slots[index as usize].generation,
        };
        self.order.push_back(key);
        self.len += 1;
        key
    }

    /// True when `key` still refers to a live waiter.
    pub fn contains(&self, key: WaiterKey) -> bool {
        self.slots
            .get(key.index as usize)
            .map(|s| s.generation == key.generation && s.entry.is_some())
            .unwrap_or(false)
    }

    /// The deadline of a live waiter.
    pub fn deadline(&self, key: WaiterKey) -> Option<SimTime> {
        self.slots.get(key.index as usize).and_then(|s| {
            if s.generation == key.generation {
                s.entry.as_ref().map(|e| e.deadline)
            } else {
                None
            }
        })
    }

    /// Remove a waiter by key in O(1). Returns it if it was still queued.
    pub fn cancel(&mut self, key: WaiterKey) -> Option<Waiter<T>> {
        let slot = self.slots.get_mut(key.index as usize)?;
        if slot.generation != key.generation {
            return None;
        }
        let entry = slot.entry.take()?;
        self.vacate(key.index);
        Some(entry)
    }

    /// Pop the longest-waiting live waiter.
    pub fn pop_front(&mut self) -> Option<Waiter<T>> {
        loop {
            let key = self.order.pop_front()?;
            let slot = &mut self.slots[key.index as usize];
            if slot.generation != key.generation {
                continue; // stale ticket from a cancelled or popped waiter
            }
            let entry = slot.entry.take().expect("live ticket has an entry");
            self.vacate(key.index);
            return Some(entry);
        }
    }

    /// Peek at the longest-waiting live waiter's payload (drops stale
    /// tickets encountered at the head, hence `&mut`).
    pub fn front(&mut self) -> Option<&T> {
        self.skip_stale();
        let key = self.order.front()?;
        self.slots[key.index as usize]
            .entry
            .as_ref()
            .map(|e| &e.payload)
    }

    /// Iterate over live waiters in FIFO order (skipping cancelled tickets).
    pub fn iter(&self) -> impl Iterator<Item = &Waiter<T>> {
        self.order.iter().filter_map(|key| {
            let slot = &self.slots[key.index as usize];
            if slot.generation == key.generation {
                slot.entry.as_ref()
            } else {
                None
            }
        })
    }

    fn vacate(&mut self, index: u32) {
        let slot = &mut self.slots[index as usize];
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(index);
        self.len -= 1;
    }

    fn skip_stale(&mut self) {
        while let Some(key) = self.order.front() {
            let slot = &self.slots[key.index as usize];
            if slot.generation == key.generation && slot.entry.is_some() {
                break;
            }
            self.order.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_fifo_order() {
        let mut q = WaitQueue::new();
        for i in 0..5u32 {
            q.push(i, at(i as u64), SimTime::MAX);
        }
        assert_eq!(q.len(), 5);
        for i in 0..5u32 {
            let w = q.pop_front().unwrap();
            assert_eq!(w.payload, i);
            assert_eq!(w.enqueued_at, at(i as u64));
        }
        assert!(q.pop_front().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_is_o1_and_preserves_order_of_the_rest() {
        let mut q = WaitQueue::new();
        let _a = q.push("a", at(0), SimTime::MAX);
        let b = q.push("b", at(1), SimTime::MAX);
        let _c = q.push("c", at(2), SimTime::MAX);
        let cancelled = q.cancel(b).unwrap();
        assert_eq!(cancelled.payload, "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(b).is_none(), "double cancel is a no-op");
        assert_eq!(q.pop_front().unwrap().payload, "a");
        assert_eq!(q.pop_front().unwrap().payload, "c");
    }

    #[test]
    fn stale_keys_never_alias_reused_slots() {
        let mut q = WaitQueue::new();
        let a = q.push(1u32, at(0), SimTime::MAX);
        q.cancel(a);
        // The slot is reused, but the old key must stay dead.
        let b = q.push(2u32, at(1), SimTime::MAX);
        assert!(!q.contains(a));
        assert!(q.cancel(a).is_none());
        assert!(q.contains(b));
        assert_eq!(q.pop_front().unwrap().payload, 2);
    }

    #[test]
    fn front_skips_cancelled_heads() {
        let mut q = WaitQueue::new();
        let a = q.push("a", at(0), SimTime::MAX);
        let _b = q.push("b", at(1), SimTime::MAX);
        q.cancel(a);
        assert_eq!(q.front(), Some(&"b"));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn deadlines_and_wait_times_are_tracked() {
        let mut q = WaitQueue::new();
        let k = q.push("x", at(10), at(70));
        assert_eq!(q.deadline(k), Some(at(70)));
        let w = q.pop_front().unwrap();
        assert_eq!(w.deadline, at(70));
        assert_eq!(w.waited(at(25)), SimDuration::from_secs(15));
        assert_eq!(w.waited(at(5)), SimDuration::ZERO);
        assert_eq!(q.deadline(k), None);
    }

    #[test]
    fn iter_walks_live_waiters_in_order() {
        let mut q = WaitQueue::new();
        let _a = q.push(1u32, at(0), SimTime::MAX);
        let b = q.push(2u32, at(1), SimTime::MAX);
        let _c = q.push(3u32, at(2), SimTime::MAX);
        q.cancel(b);
        let seen: Vec<u32> = q.iter().map(|w| w.payload).collect();
        assert_eq!(seen, vec![1, 3]);
    }

    #[test]
    fn interleaved_push_pop_cancel_keeps_len_consistent() {
        let mut q = WaitQueue::new();
        let mut keys = Vec::new();
        for round in 0..50u64 {
            keys.push(q.push(round, at(round), SimTime::MAX));
            if round % 3 == 0 {
                q.pop_front();
            }
            if round % 7 == 0 {
                let k = keys[(round / 2) as usize];
                q.cancel(k);
            }
        }
        let mut drained = 0;
        let mut last = None;
        while let Some(w) = q.pop_front() {
            if let Some(prev) = last {
                assert!(w.payload > prev, "FIFO order violated");
            }
            last = Some(w.payload);
            drained += 1;
        }
        assert_eq!(q.len(), 0);
        assert!(drained > 0);
    }
}
