//! A per-class circuit breaker with a brownout load-shed mode.
//!
//! The degradation counterpart of the admission policies: where a
//! [`crate::Policy`] decides *when* a compilation may grow, the breaker
//! decides whether a class should accept new work *at all* while the
//! server is failing. It is a classic three-state machine driven by a
//! rolling window of recent outcomes:
//!
//! ```text
//!            failure rate >= threshold
//!   Closed ----------------------------> Open
//!     ^                                   |
//!     | half_open_probes                  | open_duration elapsed
//!     |   successes                       v
//!     +------------------------------ HalfOpen
//!                 (any probe failure reopens)
//! ```
//!
//! While `Open`, large arrivals are shed outright ([`AdmissionDecision::Reject`])
//! and small ones — at most [`BreakerConfig::exempt_bytes`] of estimated
//! compilation memory — are admitted in *brownout* mode
//! ([`AdmissionDecision::Degrade`]), so diagnostic and point queries keep
//! flowing while the expensive work that caused the failures is kept out.
//! `HalfOpen` admits a limited number of probes; enough successes close the
//! breaker, one failure reopens it.
//!
//! The breaker is fully deterministic (no randomness, virtual time only),
//! so runs that use it record and replay byte-identically.

use crate::decision::AdmissionDecision;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use throttledb_sim::{SimDuration, SimTime};

/// Configuration of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Master switch; a disabled breaker is never consulted.
    pub enabled: bool,
    /// Number of recent outcomes the rolling failure-rate window holds.
    pub window: usize,
    /// Minimum outcomes in the window before the failure rate is judged.
    pub min_samples: usize,
    /// Failure rate (failures / window samples) at or above which the
    /// breaker opens.
    pub failure_threshold: f64,
    /// How long the breaker stays open before probing again.
    pub open_duration: SimDuration,
    /// Number of probe admissions allowed in the half-open state; the same
    /// number of consecutive probe successes closes the breaker.
    pub half_open_probes: u32,
    /// Brownout exemption: arrivals estimated at or below this many bytes
    /// of compilation memory are admitted (degraded) even while open.
    pub exempt_bytes: u64,
}

impl Default for BreakerConfig {
    /// Disabled; the other fields hold sane defaults for when a scenario
    /// switches the breaker on.
    fn default() -> Self {
        BreakerConfig {
            enabled: false,
            window: 32,
            min_samples: 12,
            failure_threshold: 0.5,
            open_duration: SimDuration::from_secs(120),
            half_open_probes: 4,
            exempt_bytes: 10 << 20,
        }
    }
}

impl BreakerConfig {
    /// Panics on inconsistent settings.
    pub fn validate(&self) {
        if !self.enabled {
            return;
        }
        assert!(self.window > 0, "breaker window must be positive");
        assert!(
            self.min_samples > 0 && self.min_samples <= self.window,
            "breaker min_samples must be in 1..=window"
        );
        assert!(
            self.failure_threshold > 0.0 && self.failure_threshold <= 1.0,
            "breaker failure_threshold must be in (0,1]"
        );
        assert!(
            !self.open_duration.is_zero(),
            "breaker open_duration must be positive"
        );
        assert!(
            self.half_open_probes > 0,
            "breaker needs at least one half-open probe"
        );
    }
}

/// The breaker's current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BreakerState {
    /// Normal operation; outcomes feed the rolling window.
    Closed,
    /// Shedding: large arrivals rejected, small ones browned out.
    Open,
    /// Probing: a bounded number of arrivals admitted to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case name used in traces ("closed", "open", "halfopen").
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "halfopen",
        }
    }

    /// Parse a [`BreakerState::name`] back (trace decoding).
    pub fn parse(s: &str) -> Option<BreakerState> {
        match s {
            "closed" => Some(BreakerState::Closed),
            "open" => Some(BreakerState::Open),
            "halfopen" => Some(BreakerState::HalfOpen),
            _ => None,
        }
    }
}

/// A deterministic Closed / Open / HalfOpen circuit breaker over a rolling
/// failure-rate window (see the module docs for the state machine).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Rolling outcome window; `true` = failure.
    outcomes: VecDeque<bool>,
    failures_in_window: usize,
    opened_at: SimTime,
    probes_issued: u32,
    probe_successes: u32,
    transitions: u64,
    shed: u64,
    brownout_admits: u64,
}

impl CircuitBreaker {
    /// A closed breaker with an empty window.
    pub fn new(config: BreakerConfig) -> Self {
        config.validate();
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            outcomes: VecDeque::with_capacity(config.window),
            failures_in_window: 0,
            opened_at: SimTime::ZERO,
            probes_issued: 0,
            probe_successes: 0,
            transitions: 0,
            shed: 0,
            brownout_admits: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Number of state transitions so far (flapping shows up here).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Arrivals rejected outright while open / half-open.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Arrivals admitted in brownout mode (small enough for the exemption).
    pub fn brownout_admits(&self) -> u64 {
        self.brownout_admits
    }

    /// Current failure rate over the rolling window.
    pub fn failure_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.failures_in_window as f64 / self.outcomes.len() as f64
        }
    }

    /// Decide whether an arrival with `estimated_peak_bytes` of compilation
    /// memory may enter at `now`. May move an expired `Open` to `HalfOpen`.
    pub fn admit(&mut self, now: SimTime, estimated_peak_bytes: u64) -> AdmissionDecision {
        if self.state == BreakerState::Open && now >= self.opened_at + self.config.open_duration {
            self.transition(BreakerState::HalfOpen);
        }
        match self.state {
            BreakerState::Closed => AdmissionDecision::Admit { units: 1 },
            BreakerState::HalfOpen => {
                if self.probes_issued < self.config.half_open_probes {
                    self.probes_issued += 1;
                    AdmissionDecision::Admit { units: 1 }
                } else {
                    self.brownout_or_shed(estimated_peak_bytes)
                }
            }
            BreakerState::Open => self.brownout_or_shed(estimated_peak_bytes),
        }
    }

    /// Record a successful completion.
    pub fn record_success(&mut self, _now: SimTime) {
        match self.state {
            BreakerState::Closed => self.push_outcome(false),
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.config.half_open_probes {
                    self.reset_window();
                    self.transition(BreakerState::Closed);
                }
            }
            // Stragglers admitted before the breaker opened may complete
            // while it is open; they say nothing about recovery.
            BreakerState::Open => {}
        }
    }

    /// Record a failure.
    pub fn record_failure(&mut self, now: SimTime) {
        match self.state {
            BreakerState::Closed => {
                self.push_outcome(true);
                if self.outcomes.len() >= self.config.min_samples
                    && self.failure_rate() >= self.config.failure_threshold
                {
                    self.opened_at = now;
                    self.transition(BreakerState::Open);
                }
            }
            BreakerState::HalfOpen => {
                // A failed probe reopens for a full open_duration.
                self.opened_at = now;
                self.transition(BreakerState::Open);
            }
            BreakerState::Open => {}
        }
    }

    fn brownout_or_shed(&mut self, estimated_peak_bytes: u64) -> AdmissionDecision {
        if estimated_peak_bytes <= self.config.exempt_bytes {
            self.brownout_admits += 1;
            AdmissionDecision::Degrade { units: 1 }
        } else {
            self.shed += 1;
            AdmissionDecision::Reject
        }
    }

    fn transition(&mut self, next: BreakerState) {
        debug_assert_ne!(self.state, next);
        self.state = next;
        self.transitions += 1;
        if next == BreakerState::HalfOpen {
            self.probes_issued = 0;
            self.probe_successes = 0;
        }
    }

    fn push_outcome(&mut self, failure: bool) {
        if self.outcomes.len() == self.config.window {
            if let Some(old) = self.outcomes.pop_front() {
                if old {
                    self.failures_in_window -= 1;
                }
            }
        }
        self.outcomes.push_back(failure);
        if failure {
            self.failures_in_window += 1;
        }
    }

    fn reset_window(&mut self) {
        self.outcomes.clear();
        self.failures_in_window = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled() -> BreakerConfig {
        BreakerConfig {
            enabled: true,
            window: 8,
            min_samples: 4,
            failure_threshold: 0.5,
            open_duration: SimDuration::from_secs(60),
            half_open_probes: 2,
            exempt_bytes: 1 << 20,
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn stays_closed_under_scattered_failures() {
        let mut b = CircuitBreaker::new(enabled());
        for i in 0..20 {
            b.record_success(t(i));
            if i % 5 == 0 {
                b.record_failure(t(i));
            }
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.transitions(), 0);
        assert!(matches!(
            b.admit(t(21), 1 << 30),
            AdmissionDecision::Admit { .. }
        ));
    }

    #[test]
    fn opens_on_failure_rate_and_sheds_large_arrivals() {
        let mut b = CircuitBreaker::new(enabled());
        for i in 0..4 {
            b.record_failure(t(i));
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions(), 1);
        // Large arrival: shed. Small arrival: brownout-admitted.
        assert_eq!(b.admit(t(5), 1 << 30), AdmissionDecision::Reject);
        assert!(matches!(
            b.admit(t(5), 1 << 10),
            AdmissionDecision::Degrade { .. }
        ));
        assert_eq!(b.shed(), 1);
        assert_eq!(b.brownout_admits(), 1);
    }

    #[test]
    fn half_open_probes_then_closes_on_success() {
        let mut b = CircuitBreaker::new(enabled());
        for i in 0..4 {
            b.record_failure(t(i));
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Before open_duration elapses: still shedding.
        assert_eq!(b.admit(t(30), 1 << 30), AdmissionDecision::Reject);
        // After: half-open, two probes pass, further large arrivals shed.
        assert!(matches!(
            b.admit(t(70), 1 << 30),
            AdmissionDecision::Admit { .. }
        ));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(matches!(
            b.admit(t(71), 1 << 30),
            AdmissionDecision::Admit { .. }
        ));
        assert_eq!(b.admit(t(72), 1 << 30), AdmissionDecision::Reject);
        // Both probes succeed: closed again, window cleared.
        b.record_success(t(80));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success(t(81));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.failure_rate(), 0.0);
        assert!(matches!(
            b.admit(t(82), 1 << 30),
            AdmissionDecision::Admit { .. }
        ));
    }

    #[test]
    fn failed_probe_reopens_for_a_full_window() {
        let mut b = CircuitBreaker::new(enabled());
        for i in 0..4 {
            b.record_failure(t(i));
        }
        assert!(b.admit(t(70), 1 << 30).admitted()); // half-open probe
        b.record_failure(t(75));
        assert_eq!(b.state(), BreakerState::Open);
        // The reopen stamps a fresh opened_at: still shedding at t=100
        // (75 + 60 > 100), probing again at t=140.
        assert_eq!(b.admit(t(100), 1 << 30), AdmissionDecision::Reject);
        assert!(b.admit(t(140), 1 << 30).admitted());
    }

    #[test]
    fn state_names_round_trip() {
        for s in [
            BreakerState::Closed,
            BreakerState::Open,
            BreakerState::HalfOpen,
        ] {
            assert_eq!(BreakerState::parse(s.name()), Some(s));
        }
        assert_eq!(BreakerState::parse("ajar"), None);
    }

    #[test]
    #[should_panic(expected = "min_samples")]
    fn validate_rejects_min_samples_beyond_window() {
        let cfg = BreakerConfig {
            enabled: true,
            window: 4,
            min_samples: 8,
            ..enabled()
        };
        CircuitBreaker::new(cfg);
    }
}
