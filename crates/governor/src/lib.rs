//! # throttledb-governor
//!
//! The unified **resource-governor layer**: one waiting/admission substrate
//! shared by every choke point in the system.
//!
//! The paper's core idea is a single throttling *policy* — the gateway
//! ladder plus the memory broker — applied at several choke points: the
//! compilation ladder's per-level queues, the execution memory-grant queue,
//! and the broker's pressure notifications. This crate factors the common
//! machinery out of those call sites:
//!
//! * [`WaitQueue`] — the shared FIFO wait queue: deadlines per waiter and
//!   O(1) cancellation via slot-indexed tickets, replacing the per-crate
//!   `VecDeque` + linear-scan queues.
//! * [`AdmissionDecision`] — the common decision vocabulary
//!   (admit / degrade / wait-with-deadline / reject) that
//!   `LadderDecision`, `GrantOutcome` and broker notifications all
//!   translate into.
//! * [`ResourcePool`] — a budgeted pool (budget + queue + [`PoolStats`])
//!   used by the execution grant manager and by the engine's per-class
//!   workload pools.
//! * [`Policy`] — the pluggable compilation-admission policy interface,
//!   with a PID feedback controller ([`PidPolicy`]) and a cost-based
//!   planner ([`CostPolicy`]); the paper's gateway ladder implements the
//!   trait in `throttledb-core`.
//! * [`ThrottleStats`] — the admission counters every policy reports
//!   through (formerly private to the core crate's ladder).
//! * [`CircuitBreaker`] — a per-class Closed/Open/HalfOpen breaker over a
//!   rolling failure-rate window, with a brownout exemption for small
//!   arrivals; the graceful-degradation side of admission control.
//!
//! Layering: this crate depends only on `throttledb-sim` (virtual time and
//! histograms); `throttledb-core`, `throttledb-executor`,
//! `throttledb-membroker` and the engine all build on it.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod breaker;
pub mod decision;
pub mod policy;
pub mod pool;
pub mod queue;
pub mod stats;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use decision::AdmissionDecision;
pub use policy::{CostPolicy, PidPolicy, Policy, PolicyDecision, PolicySignals};
pub use pool::{PoolStats, ResourcePool};
pub use queue::{WaitQueue, Waiter, WaiterKey};
pub use stats::ThrottleStats;
