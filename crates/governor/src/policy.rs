//! Pluggable admission policies for compilation memory.
//!
//! The paper's contribution is one specific admission policy — the static
//! gateway ladder of §4 — but evaluating it requires rivals to compare
//! against. [`Policy`] is the seam that makes the engine policy-agnostic:
//! the compile stage reports each compilation's memory growth to *a*
//! policy and acts on its [`PolicyDecision`]; which policy answers is
//! chosen per run.
//!
//! Three implementations ship with the workspace:
//!
//! * the paper's ladder (`GatewayLadder` in `throttledb-core` implements
//!   this trait directly, so the baseline runs byte-identically to the
//!   pre-trait engine);
//! * [`PidPolicy`] — a PID feedback controller that servos a concurrency
//!   limit on the broker's predicted memory pressure, admitting from a
//!   single FIFO wait queue;
//! * [`CostPolicy`] — a cost-based planner that reserves each template's
//!   profiled peak compilation bytes against the broker's compilation
//!   target before admitting.
//!
//! Task identifiers are bare `u64`s at this layer; `throttledb-core`
//! wraps them in its `TaskId` newtype.

use crate::stats::ThrottleStats;
use std::collections::{HashMap, VecDeque};
use throttledb_sim::{SimDuration, SimTime};

/// Per-query hints a policy may consult when deciding admission. The
/// engine fills these from the template's compile profile (the same
/// profiles the workload model draws from), so a cost-based policy can
/// reserve a compilation's expected peak before it happens.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolicySignals {
    /// Profiled peak compilation memory of this query's template, bytes.
    pub estimated_peak_bytes: u64,
    /// Profiled compilation CPU cost, seconds.
    pub estimated_cpu_seconds: f64,
}

/// A policy's answer to a memory report — the same vocabulary as the
/// core crate's `LadderDecision`, lifted to the governor layer so every
/// policy can speak it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyDecision {
    /// Keep compiling.
    Proceed,
    /// Wait at admission `level`; abort on expiry of `timeout`.
    Wait {
        /// Level being waited at (gateway index for the ladder, 0 for the
        /// single-queue policies).
        level: usize,
        /// How long the caller may wait before timing out.
        timeout: SimDuration,
    },
    /// Stop exploring and return the best plan found so far.
    FinishBestEffort,
}

/// A pluggable compilation-admission policy.
///
/// The engine drives every policy through the same five-call protocol the
/// gateway ladder defined: `begin` registers a compilation, `report` is
/// invoked after every memory-growth step, `timeout` cancels an expired
/// wait, `finish_into` releases the task and returns resumed waiters, and
/// `tick` delivers the broker's periodic budget/pressure refresh (which
/// may also resume waiters).
pub trait Policy: std::fmt::Debug + Send {
    /// Short static name ("ladder", "pid", "cost").
    fn name(&self) -> &'static str;

    /// Register a new compilation and return its task id.
    fn begin(&mut self) -> u64;

    /// Report the compilation's current allocated bytes and get a decision.
    /// Callers must re-invoke this after being resumed from a wait.
    fn report(
        &mut self,
        task: u64,
        bytes: u64,
        signals: &PolicySignals,
        now: SimTime,
    ) -> PolicyDecision;

    /// A waiting compilation gave up (its wait timeout expired). The caller
    /// should abort the compilation and then call
    /// [`Policy::finish_into`] to release whatever it already held.
    fn timeout(&mut self, task: u64, now: SimTime);

    /// The compilation finished (successfully, best-effort, aborted or
    /// timed out): release everything it holds and drop it. Tasks admitted
    /// as a result are appended to `resumed`; the caller must resume them
    /// and have them re-report their memory.
    fn finish_into(&mut self, task: u64, now: SimTime, resumed: &mut Vec<u64>);

    /// Broker refresh: the current compilation-memory target (None when
    /// unconstrained) and the predicted pressure on that target
    /// (`predicted bytes / target`, so 1.0 means "exactly at target").
    /// Tasks admitted by a loosened policy are appended to `resumed`.
    fn tick(
        &mut self,
        now: SimTime,
        compile_target: Option<u64>,
        pressure: f64,
        resumed: &mut Vec<u64>,
    );

    /// Statistics so far.
    fn stats(&self) -> &ThrottleStats;

    /// Number of live (registered, unfinished) compilations.
    fn active(&self) -> usize;

    /// Number of compilations currently blocked waiting for admission.
    fn waiting(&self) -> usize;
}

/// Per-task state shared by the two single-queue policies.
#[derive(Debug, Clone, Copy, Default)]
struct QueuedTask {
    /// Last reported allocation.
    bytes: u64,
    /// Bytes reserved against the budget ([`CostPolicy`] only).
    reservation: u64,
    /// Peak-byte estimate captured when the task first contended.
    want: u64,
    admitted: bool,
    waiting: bool,
    wait_started: Option<SimTime>,
    best_effort: bool,
}

/// A PID feedback controller servoing a compilation-concurrency limit.
///
/// The measured variable is the broker's *predicted* compilation-memory
/// pressure (trend-extrapolated usage over the target); the setpoint is
/// 1.0. Headroom raises the limit, overshoot lowers it, and waiters are
/// admitted from a single FIFO queue whenever the limit opens up. The
/// integral term only winds while there is either overshoot or a
/// non-empty queue, so an idle system does not accumulate correction.
#[derive(Debug)]
pub struct PidPolicy {
    exempt_bytes: u64,
    wait_timeout: SimDuration,
    min_limit: f64,
    max_limit: f64,
    kp: f64,
    ki: f64,
    kd: f64,
    base_limit: f64,
    integral: f64,
    last_error: f64,
    last_tick: Option<SimTime>,
    limit: f64,
    admitted_count: usize,
    waiting_count: usize,
    tasks: HashMap<u64, QueuedTask>,
    queue: VecDeque<u64>,
    stats: ThrottleStats,
    next_task: u64,
}

impl PidPolicy {
    /// Controller for a machine with `cpus` CPUs. The limit starts at the
    /// paper ladder's small-gateway capacity (4 per CPU) and may range
    /// from 1 to 8 per CPU.
    pub fn new(cpus: u32, exempt_bytes: u64, wait_timeout: SimDuration) -> Self {
        let base = (4 * cpus.max(1)) as f64;
        PidPolicy {
            exempt_bytes,
            wait_timeout,
            min_limit: 1.0,
            max_limit: 2.0 * base,
            kp: base / 2.0,
            ki: base / 8.0,
            kd: base / 16.0,
            base_limit: base,
            integral: 0.0,
            last_error: 0.0,
            last_tick: None,
            limit: base,
            admitted_count: 0,
            waiting_count: 0,
            tasks: HashMap::new(),
            queue: VecDeque::new(),
            stats: ThrottleStats::new(1),
            next_task: 0,
        }
    }

    /// The current concurrency limit (whole admissions).
    pub fn limit(&self) -> usize {
        self.limit.floor().max(1.0) as usize
    }

    fn admit(&mut self, task: u64, now: SimTime) {
        let state = self.tasks.get_mut(&task).expect("task exists");
        if state.waiting {
            state.waiting = false;
            self.waiting_count -= 1;
            if let Some(started) = state.wait_started.take() {
                self.stats.record_wait(0, now.saturating_since(started));
            }
        }
        state.admitted = true;
        self.admitted_count += 1;
        self.stats.acquisitions[0] += 1;
    }

    fn drain_queue(&mut self, now: SimTime, resumed: &mut Vec<u64>) {
        while self.admitted_count < self.limit() {
            let Some(next) = self.queue.pop_front() else {
                break;
            };
            // Entries for tasks that timed out or finished are tombstones.
            if !self.tasks.get(&next).is_some_and(|t| t.waiting) {
                continue;
            }
            self.admit(next, now);
            resumed.push(next);
        }
    }
}

impl Policy for PidPolicy {
    fn name(&self) -> &'static str {
        "pid"
    }

    fn begin(&mut self) -> u64 {
        let id = self.next_task;
        self.next_task += 1;
        self.tasks.insert(id, QueuedTask::default());
        self.stats.compilations_started += 1;
        id
    }

    fn report(
        &mut self,
        task: u64,
        bytes: u64,
        _signals: &PolicySignals,
        now: SimTime,
    ) -> PolicyDecision {
        let limit = self.limit();
        let Some(state) = self.tasks.get_mut(&task) else {
            return PolicyDecision::Proceed;
        };
        state.bytes = bytes;
        if state.admitted || bytes <= self.exempt_bytes {
            return PolicyDecision::Proceed;
        }
        if state.waiting {
            // Still queued; the caller re-asked without being resumed.
            return PolicyDecision::Wait {
                level: 0,
                timeout: self.wait_timeout,
            };
        }
        if self.admitted_count < limit {
            self.admit(task, now);
            return PolicyDecision::Proceed;
        }
        let state = self.tasks.get_mut(&task).expect("task exists");
        state.waiting = true;
        state.wait_started = Some(now);
        self.waiting_count += 1;
        self.stats.waits[0] += 1;
        self.queue.push_back(task);
        PolicyDecision::Wait {
            level: 0,
            timeout: self.wait_timeout,
        }
    }

    fn timeout(&mut self, task: u64, now: SimTime) {
        if let Some(state) = self.tasks.get_mut(&task) {
            if state.waiting {
                state.waiting = false;
                self.waiting_count -= 1;
                if let Some(started) = state.wait_started.take() {
                    self.stats.record_wait(0, now.saturating_since(started));
                }
                self.stats.timeouts += 1;
            }
        }
    }

    fn finish_into(&mut self, task: u64, now: SimTime, resumed: &mut Vec<u64>) {
        let Some(state) = self.tasks.remove(&task) else {
            return;
        };
        self.stats.compilations_finished += 1;
        if state.bytes <= self.exempt_bytes {
            self.stats.exempt_compilations += 1;
        }
        if state.admitted {
            self.admitted_count -= 1;
        }
        if state.waiting {
            self.waiting_count -= 1;
            if let Some(started) = state.wait_started {
                self.stats.record_wait(0, now.saturating_since(started));
            }
        }
        self.drain_queue(now, resumed);
    }

    fn tick(
        &mut self,
        now: SimTime,
        _compile_target: Option<u64>,
        pressure: f64,
        resumed: &mut Vec<u64>,
    ) {
        let error = 1.0 - pressure;
        let dt = match self.last_tick {
            Some(t) => now.saturating_since(t).as_micros() as f64 / 1e6,
            None => 0.0,
        };
        self.last_tick = Some(now);
        if dt > 0.0 {
            // Anti-windup: integrate while the correction can act —
            // overshoot always, headroom while someone is waiting — and let
            // waiter-less headroom only unwind leftover negative correction
            // (never accumulate positive credit an idle system can't use).
            if error < 0.0 || self.waiting_count > 0 || self.integral < 0.0 {
                let cap = self.base_limit / self.ki.max(1e-9);
                let mut next = (self.integral + error * dt).clamp(-cap, cap);
                if error > 0.0 && self.waiting_count == 0 {
                    next = next.min(0.0);
                }
                self.integral = next;
            }
            let derivative = (error - self.last_error) / dt;
            self.limit = (self.base_limit
                + self.kp * error
                + self.ki * self.integral
                + self.kd * derivative)
                .clamp(self.min_limit, self.max_limit);
        }
        self.last_error = error;
        self.drain_queue(now, resumed);
    }

    fn stats(&self) -> &ThrottleStats {
        &self.stats
    }

    fn active(&self) -> usize {
        self.tasks.len()
    }

    fn waiting(&self) -> usize {
        self.waiting_count
    }
}

/// A cost-based admission planner keyed on per-template compile profiles.
///
/// Where the ladder reacts to memory a compilation has *already*
/// allocated, this policy reserves each compilation's profiled peak
/// upfront against the broker's compilation target and only admits when
/// the reservation fits. One compilation is always admitted regardless of
/// budget so the system cannot wedge on a single oversized estimate; a
/// compilation that overruns its reservation grows it if the budget
/// allows, and is told to finish best-effort (once) if not.
#[derive(Debug)]
pub struct CostPolicy {
    exempt_bytes: u64,
    wait_timeout: SimDuration,
    static_budget: u64,
    effective_budget: u64,
    reserved: u64,
    admitted_count: usize,
    waiting_count: usize,
    tasks: HashMap<u64, QueuedTask>,
    queue: VecDeque<u64>,
    stats: ThrottleStats,
    next_task: u64,
}

impl CostPolicy {
    /// Planner over `static_budget` bytes of compilation memory (used
    /// until — and whenever — the broker reports no explicit target).
    pub fn new(static_budget: u64, exempt_bytes: u64, wait_timeout: SimDuration) -> Self {
        CostPolicy {
            exempt_bytes,
            wait_timeout,
            static_budget: static_budget.max(1),
            effective_budget: static_budget.max(1),
            reserved: 0,
            admitted_count: 0,
            waiting_count: 0,
            tasks: HashMap::new(),
            queue: VecDeque::new(),
            stats: ThrottleStats::new(1),
            next_task: 0,
        }
    }

    /// Bytes currently reserved by admitted compilations.
    pub fn reserved_bytes(&self) -> u64 {
        self.reserved
    }

    /// The budget currently being planned against.
    pub fn effective_budget(&self) -> u64 {
        self.effective_budget
    }

    fn admit(&mut self, task: u64, now: SimTime) {
        let state = self.tasks.get_mut(&task).expect("task exists");
        if state.waiting {
            state.waiting = false;
            self.waiting_count -= 1;
            if let Some(started) = state.wait_started.take() {
                self.stats.record_wait(0, now.saturating_since(started));
            }
        }
        state.admitted = true;
        state.reservation = state.want;
        self.reserved += state.want;
        self.admitted_count += 1;
        self.stats.acquisitions[0] += 1;
    }

    fn drain_queue(&mut self, now: SimTime, resumed: &mut Vec<u64>) {
        while let Some(&next) = self.queue.front() {
            let Some(state) = self.tasks.get(&next) else {
                self.queue.pop_front();
                continue;
            };
            if !state.waiting {
                // Tombstone: the task timed out or finished while queued.
                self.queue.pop_front();
                continue;
            }
            let fits = self.admitted_count == 0
                || self.reserved.saturating_add(state.want) <= self.effective_budget;
            if !fits {
                break;
            }
            self.queue.pop_front();
            self.admit(next, now);
            resumed.push(next);
        }
    }
}

impl Policy for CostPolicy {
    fn name(&self) -> &'static str {
        "cost"
    }

    fn begin(&mut self) -> u64 {
        let id = self.next_task;
        self.next_task += 1;
        self.tasks.insert(id, QueuedTask::default());
        self.stats.compilations_started += 1;
        id
    }

    fn report(
        &mut self,
        task: u64,
        bytes: u64,
        signals: &PolicySignals,
        now: SimTime,
    ) -> PolicyDecision {
        let budget = self.effective_budget;
        let Some(state) = self.tasks.get_mut(&task) else {
            return PolicyDecision::Proceed;
        };
        state.bytes = bytes;
        if state.admitted {
            if bytes > state.reservation {
                // Overrun: grow the reservation if the budget allows,
                // otherwise direct the compilation to wrap up (once).
                let grow = bytes - state.reservation;
                if self.reserved.saturating_add(grow) <= budget || self.admitted_count == 1 {
                    state.reservation = bytes;
                    self.reserved += grow;
                } else if !state.best_effort {
                    state.best_effort = true;
                    self.stats.best_effort_completions += 1;
                    return PolicyDecision::FinishBestEffort;
                }
            }
            return PolicyDecision::Proceed;
        }
        if bytes <= self.exempt_bytes {
            return PolicyDecision::Proceed;
        }
        if state.waiting {
            return PolicyDecision::Wait {
                level: 0,
                timeout: self.wait_timeout,
            };
        }
        state.want = signals.estimated_peak_bytes.max(bytes);
        let fits = self.admitted_count == 0
            || self.reserved.saturating_add(state.want) <= self.effective_budget;
        if fits {
            self.admit(task, now);
            return PolicyDecision::Proceed;
        }
        let state = self.tasks.get_mut(&task).expect("task exists");
        state.waiting = true;
        state.wait_started = Some(now);
        self.waiting_count += 1;
        self.stats.waits[0] += 1;
        self.queue.push_back(task);
        PolicyDecision::Wait {
            level: 0,
            timeout: self.wait_timeout,
        }
    }

    fn timeout(&mut self, task: u64, now: SimTime) {
        if let Some(state) = self.tasks.get_mut(&task) {
            if state.waiting {
                state.waiting = false;
                self.waiting_count -= 1;
                if let Some(started) = state.wait_started.take() {
                    self.stats.record_wait(0, now.saturating_since(started));
                }
                self.stats.timeouts += 1;
            }
        }
    }

    fn finish_into(&mut self, task: u64, now: SimTime, resumed: &mut Vec<u64>) {
        let Some(state) = self.tasks.remove(&task) else {
            return;
        };
        self.stats.compilations_finished += 1;
        if state.bytes <= self.exempt_bytes {
            self.stats.exempt_compilations += 1;
        }
        if state.admitted {
            self.admitted_count -= 1;
            self.reserved = self.reserved.saturating_sub(state.reservation);
        }
        if state.waiting {
            self.waiting_count -= 1;
            if let Some(started) = state.wait_started {
                self.stats.record_wait(0, now.saturating_since(started));
            }
        }
        self.drain_queue(now, resumed);
    }

    fn tick(
        &mut self,
        now: SimTime,
        compile_target: Option<u64>,
        _pressure: f64,
        resumed: &mut Vec<u64>,
    ) {
        self.effective_budget = compile_target.unwrap_or(self.static_budget).max(1);
        self.drain_queue(now, resumed);
    }

    fn stats(&self) -> &ThrottleStats {
        &self.stats
    }

    fn active(&self) -> usize {
        self.tasks.len()
    }

    fn waiting(&self) -> usize {
        self.waiting_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;
    const EXEMPT: u64 = 2 * MB;

    fn now(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn timeout() -> SimDuration {
        SimDuration::from_secs(120)
    }

    fn signals(peak: u64) -> PolicySignals {
        PolicySignals {
            estimated_peak_bytes: peak,
            estimated_cpu_seconds: 1.0,
        }
    }

    #[test]
    fn pid_admits_up_to_limit_then_queues() {
        let mut p = PidPolicy::new(1, EXEMPT, timeout());
        assert_eq!(p.limit(), 4);
        let tasks: Vec<u64> = (0..5).map(|_| p.begin()).collect();
        for &t in &tasks[..4] {
            assert_eq!(
                p.report(t, 5 * MB, &signals(0), now(0)),
                PolicyDecision::Proceed
            );
        }
        assert_eq!(
            p.report(tasks[4], 5 * MB, &signals(0), now(1)),
            PolicyDecision::Wait {
                level: 0,
                timeout: timeout()
            }
        );
        assert_eq!(p.waiting(), 1);
        // A finishing holder admits the waiter.
        let mut resumed = Vec::new();
        p.finish_into(tasks[0], now(10), &mut resumed);
        assert_eq!(resumed, vec![tasks[4]]);
        assert_eq!(p.waiting(), 0);
        assert_eq!(p.stats().wait_summary(0).count, 1);
        assert!(p.stats().wait_summary(0).min >= 8_000_000);
    }

    #[test]
    fn pid_exempt_tasks_bypass_the_queue() {
        let mut p = PidPolicy::new(1, EXEMPT, timeout());
        let tasks: Vec<u64> = (0..6).map(|_| p.begin()).collect();
        for &t in &tasks[..4] {
            p.report(t, 5 * MB, &signals(0), now(0));
        }
        let small = tasks[5];
        assert_eq!(
            p.report(small, MB, &signals(0), now(0)),
            PolicyDecision::Proceed
        );
        let mut resumed = Vec::new();
        p.finish_into(small, now(1), &mut resumed);
        assert_eq!(p.stats().exempt_compilations, 1);
    }

    #[test]
    fn pid_timeout_counts_and_tombstones_the_queue_entry() {
        let mut p = PidPolicy::new(1, EXEMPT, timeout());
        let tasks: Vec<u64> = (0..5).map(|_| p.begin()).collect();
        for &t in &tasks[..4] {
            p.report(t, 5 * MB, &signals(0), now(0));
        }
        assert!(matches!(
            p.report(tasks[4], 5 * MB, &signals(0), now(0)),
            PolicyDecision::Wait { .. }
        ));
        p.timeout(tasks[4], now(121));
        let mut resumed = Vec::new();
        p.finish_into(tasks[4], now(121), &mut resumed);
        assert_eq!(p.stats().timeouts, 1);
        // The stale queue entry must not resume the dead task.
        p.finish_into(tasks[0], now(122), &mut resumed);
        assert!(resumed.is_empty());
    }

    #[test]
    fn pid_overshoot_lowers_and_headroom_restores_the_limit() {
        let mut p = PidPolicy::new(2, EXEMPT, timeout());
        let base = p.limit();
        let mut resumed = Vec::new();
        p.tick(now(0), Some(100 * MB), 2.0, &mut resumed);
        p.tick(now(10), Some(100 * MB), 2.0, &mut resumed);
        assert!(p.limit() < base, "overshoot must shrink the limit");
        for s in 2..8 {
            p.tick(now(10 * s), Some(100 * MB), 0.2, &mut resumed);
        }
        assert!(p.limit() >= base, "sustained headroom must restore it");
    }

    #[test]
    fn pid_tick_resumes_waiters_when_the_limit_rises() {
        let mut p = PidPolicy::new(1, EXEMPT, timeout());
        let tasks: Vec<u64> = (0..6).map(|_| p.begin()).collect();
        for &t in &tasks[..4] {
            p.report(t, 5 * MB, &signals(0), now(0));
        }
        for &t in &tasks[4..] {
            assert!(matches!(
                p.report(t, 5 * MB, &signals(0), now(0)),
                PolicyDecision::Wait { .. }
            ));
        }
        // Sustained strong headroom with waiters raises the limit.
        let mut resumed = Vec::new();
        for s in 0..20 {
            p.tick(now(10 * (s + 1)), None, 0.0, &mut resumed);
        }
        assert!(!resumed.is_empty(), "a raised limit must admit waiters");
    }

    #[test]
    fn cost_reserves_profiles_and_queues_past_budget() {
        let mut p = CostPolicy::new(100 * MB, EXEMPT, timeout());
        let a = p.begin();
        let b = p.begin();
        assert_eq!(
            p.report(a, 5 * MB, &signals(60 * MB), now(0)),
            PolicyDecision::Proceed
        );
        assert_eq!(p.reserved_bytes(), 60 * MB);
        // b's 60 MB estimate does not fit the remaining 40 MB.
        assert!(matches!(
            p.report(b, 5 * MB, &signals(60 * MB), now(0)),
            PolicyDecision::Wait { .. }
        ));
        let mut resumed = Vec::new();
        p.finish_into(a, now(5), &mut resumed);
        assert_eq!(resumed, vec![b]);
        assert_eq!(p.reserved_bytes(), 60 * MB);
    }

    #[test]
    fn cost_always_admits_one_compilation() {
        let mut p = CostPolicy::new(10 * MB, EXEMPT, timeout());
        let a = p.begin();
        // Estimate far beyond the budget still admits: no wedging.
        assert_eq!(
            p.report(a, 5 * MB, &signals(500 * MB), now(0)),
            PolicyDecision::Proceed
        );
        assert_eq!(p.active(), 1);
    }

    #[test]
    fn cost_overrun_grows_or_directs_best_effort() {
        let mut p = CostPolicy::new(100 * MB, EXEMPT, timeout());
        let a = p.begin();
        let b = p.begin();
        p.report(a, 5 * MB, &signals(50 * MB), now(0));
        p.report(b, 5 * MB, &signals(45 * MB), now(0));
        // a overruns its 50 MB reservation; 5 MB of headroom remain, so a
        // small overrun grows the reservation...
        assert_eq!(
            p.report(a, 54 * MB, &signals(50 * MB), now(1)),
            PolicyDecision::Proceed
        );
        assert_eq!(p.reserved_bytes(), 99 * MB);
        // ...but the next overrun exceeds the budget: finish best-effort,
        // delivered exactly once.
        assert_eq!(
            p.report(a, 60 * MB, &signals(50 * MB), now(2)),
            PolicyDecision::FinishBestEffort
        );
        assert_eq!(
            p.report(a, 61 * MB, &signals(50 * MB), now(3)),
            PolicyDecision::Proceed
        );
        assert_eq!(p.stats().best_effort_completions, 1);
    }

    #[test]
    fn cost_tick_installs_target_and_resumes_fitting_waiters() {
        let mut p = CostPolicy::new(50 * MB, EXEMPT, timeout());
        let a = p.begin();
        let b = p.begin();
        p.report(a, 5 * MB, &signals(40 * MB), now(0));
        assert!(matches!(
            p.report(b, 5 * MB, &signals(40 * MB), now(0)),
            PolicyDecision::Wait { .. }
        ));
        // The broker grants a larger target; the waiter now fits.
        let mut resumed = Vec::new();
        p.tick(now(10), Some(100 * MB), 0.5, &mut resumed);
        assert_eq!(p.effective_budget(), 100 * MB);
        assert_eq!(resumed, vec![b]);
        // Clearing the target falls back to the static budget.
        p.tick(now(20), None, 0.5, &mut resumed);
        assert_eq!(p.effective_budget(), 50 * MB);
    }

    #[test]
    fn policies_tolerate_unknown_tasks() {
        let mut p = PidPolicy::new(1, EXEMPT, timeout());
        assert_eq!(
            p.report(999, 50 * MB, &signals(0), now(0)),
            PolicyDecision::Proceed
        );
        p.timeout(999, now(1));
        let mut resumed = Vec::new();
        p.finish_into(999, now(2), &mut resumed);
        let mut c = CostPolicy::new(MB, EXEMPT, timeout());
        assert_eq!(
            c.report(999, 50 * MB, &signals(0), now(0)),
            PolicyDecision::Proceed
        );
        c.finish_into(999, now(1), &mut resumed);
        assert!(resumed.is_empty());
    }

    #[test]
    fn stats_track_the_single_level() {
        let mut p = PidPolicy::new(1, EXEMPT, timeout());
        let t = p.begin();
        p.report(t, 5 * MB, &signals(0), now(0));
        assert_eq!(p.stats().levels(), 1);
        assert_eq!(p.stats().acquisitions[0], 1);
        assert_eq!(p.stats().compilations_started, 1);
        let mut resumed = Vec::new();
        p.finish_into(t, now(1), &mut resumed);
        assert_eq!(p.stats().compilations_finished, 1);
    }
}
