//! Admission statistics, the raw material of the paper's figures.
//!
//! [`ThrottleStats`] started life inside the core crate's gateway ladder;
//! it now lives in the governor layer so that *every* admission policy
//! (the static ladder, the PID controller, the cost-based planner) reports
//! through the same counters and the engine's metrics pipeline stays
//! policy-agnostic. Level-indexed vectors hold one slot per gateway for the
//! ladder and a single slot for the one-queue policies.

use serde::{Deserialize, Serialize};
use throttledb_sim::{Histogram, SimDuration, Summary};

/// Counters kept by an admission policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThrottleStats {
    /// Compilations registered with the policy.
    pub compilations_started: u64,
    /// Compilations that finished (successfully or not) and released their
    /// admission slots.
    pub compilations_finished: u64,
    /// Compilations that never crossed the exemption floor (small
    /// diagnostic / OLTP queries).
    pub exempt_compilations: u64,
    /// Admissions per level (gateway acquisitions for the ladder; a single
    /// slot for one-queue policies).
    pub acquisitions: Vec<u64>,
    /// Times a compilation had to wait at each level.
    pub waits: Vec<u64>,
    /// Total time spent waiting at each level.
    pub total_wait: Vec<SimDuration>,
    /// Distribution of individual wait durations at each level, in
    /// microseconds (each completed or abandoned wait is one sample).
    pub wait_histograms: Vec<Histogram>,
    /// Compilations aborted because an admission wait exceeded its timeout.
    pub timeouts: u64,
    /// Compilations told to finish with the best plan found so far.
    pub best_effort_completions: u64,
}

impl ThrottleStats {
    /// Zeroed statistics for a policy with `levels` admission levels.
    pub fn new(levels: usize) -> Self {
        ThrottleStats {
            compilations_started: 0,
            compilations_finished: 0,
            exempt_compilations: 0,
            acquisitions: vec![0; levels],
            waits: vec![0; levels],
            total_wait: vec![SimDuration::ZERO; levels],
            wait_histograms: (0..levels)
                .map(|i| Histogram::new(format!("gateway{i}-wait-us")))
                .collect(),
            timeouts: 0,
            best_effort_completions: 0,
        }
    }

    /// Record one finished (or abandoned) wait of `duration` at `level`.
    pub fn record_wait(&mut self, level: usize, duration: SimDuration) {
        self.total_wait[level] += duration;
        self.wait_histograms[level].record(duration.as_micros());
    }

    /// Summary of the wait-time distribution at `level` (microseconds).
    pub fn wait_summary(&self, level: usize) -> Summary {
        self.wait_histograms[level].summary()
    }

    /// Number of admission levels these statistics cover.
    pub fn levels(&self) -> usize {
        self.acquisitions.len()
    }

    /// Total waits across all levels.
    pub fn total_waits(&self) -> u64 {
        self.waits.iter().sum()
    }

    /// Total time spent blocked across all levels.
    pub fn total_wait_time(&self) -> SimDuration {
        self.total_wait
            .iter()
            .fold(SimDuration::ZERO, |acc, d| acc + *d)
    }

    /// Mean wait duration at `level`, zero if nothing ever waited there.
    pub fn mean_wait(&self, level: usize) -> SimDuration {
        let n = self.waits.get(level).copied().unwrap_or(0);
        if n == 0 {
            SimDuration::ZERO
        } else {
            self.total_wait[level] / n
        }
    }

    /// Merge another set of statistics into this one (same level count).
    pub fn merge(&mut self, other: &ThrottleStats) {
        assert_eq!(self.levels(), other.levels(), "level counts must match");
        self.compilations_started += other.compilations_started;
        self.compilations_finished += other.compilations_finished;
        self.exempt_compilations += other.exempt_compilations;
        self.timeouts += other.timeouts;
        self.best_effort_completions += other.best_effort_completions;
        for i in 0..self.levels() {
            self.acquisitions[i] += other.acquisitions[i];
            self.waits[i] += other.waits[i];
            self.total_wait[i] += other.total_wait[i];
            self.wait_histograms[i].merge(&other.wait_histograms[i]);
        }
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "compiles={} exempt={} acquisitions={:?} waits={:?} timeouts={} best-effort={}",
            self.compilations_started,
            self.exempt_compilations,
            self.acquisitions,
            self.waits,
            self.timeouts,
            self.best_effort_completions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_stats_are_zeroed() {
        let s = ThrottleStats::new(3);
        assert_eq!(s.levels(), 3);
        assert_eq!(s.total_waits(), 0);
        assert_eq!(s.total_wait_time(), SimDuration::ZERO);
        assert_eq!(s.mean_wait(0), SimDuration::ZERO);
    }

    #[test]
    fn record_wait_feeds_totals_and_histograms() {
        let mut s = ThrottleStats::new(2);
        s.record_wait(1, SimDuration::from_secs(4));
        s.record_wait(1, SimDuration::from_secs(12));
        assert_eq!(s.total_wait[1], SimDuration::from_secs(16));
        let summary = s.wait_summary(1);
        assert_eq!(summary.count, 2);
        assert_eq!(summary.min, 4_000_000);
        assert_eq!(summary.max, 12_000_000);
        assert_eq!(s.wait_summary(0).count, 0);
    }

    #[test]
    fn merge_combines_wait_histograms() {
        let mut a = ThrottleStats::new(1);
        let mut b = ThrottleStats::new(1);
        a.record_wait(0, SimDuration::from_secs(1));
        b.record_wait(0, SimDuration::from_secs(3));
        a.merge(&b);
        assert_eq!(a.wait_summary(0).count, 2);
        assert_eq!(a.wait_summary(0).max, 3_000_000);
    }

    #[test]
    fn mean_wait_divides_by_count() {
        let mut s = ThrottleStats::new(2);
        s.waits[1] = 4;
        s.total_wait[1] = SimDuration::from_secs(20);
        assert_eq!(s.mean_wait(1), SimDuration::from_secs(5));
        assert_eq!(s.mean_wait(0), SimDuration::ZERO);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = ThrottleStats::new(2);
        let mut b = ThrottleStats::new(2);
        a.compilations_started = 3;
        a.acquisitions[0] = 5;
        b.compilations_started = 2;
        b.acquisitions[0] = 7;
        b.timeouts = 1;
        b.total_wait[1] = SimDuration::from_secs(2);
        a.merge(&b);
        assert_eq!(a.compilations_started, 5);
        assert_eq!(a.acquisitions[0], 12);
        assert_eq!(a.timeouts, 1);
        assert_eq!(a.total_wait[1], SimDuration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "level counts")]
    fn merge_rejects_mismatched_levels() {
        let mut a = ThrottleStats::new(2);
        let b = ThrottleStats::new(3);
        a.merge(&b);
    }

    #[test]
    fn summary_line_mentions_key_counters() {
        let mut s = ThrottleStats::new(3);
        s.timeouts = 7;
        let line = s.summary_line();
        assert!(line.contains("timeouts=7"));
        assert!(line.contains("compiles=0"));
    }
}
