//! The common admission-decision vocabulary.
//!
//! The paper applies one throttling *policy* at several choke points:
//! gateway-ladder levels gate compilations, the grant queue gates
//! executions, and the memory broker gates every subcomponent's growth.
//! Before the governor layer each choke point answered in its own dialect
//! (`LadderDecision`, `GrantOutcome`, `NotificationKind`); this module is
//! the shared vocabulary they all translate into.

use serde::{Deserialize, Serialize};
use std::fmt;
use throttledb_sim::SimTime;

/// What an admission point decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Admitted with `units` of the resource (gateway slots, grant bytes).
    Admit {
        /// Units granted (1 for slot-like resources, bytes for grants).
        units: u64,
    },
    /// Admitted with degraded service: a reduced grant (the query spills),
    /// or a best-effort plan instead of further exploration.
    Degrade {
        /// Units granted, less than requested.
        units: u64,
    },
    /// Must wait; abandon the request after `deadline`.
    Wait {
        /// The instant after which waiting becomes a timeout failure.
        deadline: SimTime,
    },
    /// Refused outright (the resource cannot serve the request at all).
    Reject,
}

impl AdmissionDecision {
    /// True when the requester may proceed right now (fully or degraded).
    pub fn admitted(&self) -> bool {
        matches!(
            self,
            AdmissionDecision::Admit { .. } | AdmissionDecision::Degrade { .. }
        )
    }

    /// Units granted, if admitted.
    pub fn units(&self) -> Option<u64> {
        match self {
            AdmissionDecision::Admit { units } | AdmissionDecision::Degrade { units } => {
                Some(*units)
            }
            _ => None,
        }
    }

    /// The wait deadline, if waiting.
    pub fn deadline(&self) -> Option<SimTime> {
        match self {
            AdmissionDecision::Wait { deadline } => Some(*deadline),
            _ => None,
        }
    }
}

impl fmt::Display for AdmissionDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionDecision::Admit { units } => write!(f, "admit({units})"),
            AdmissionDecision::Degrade { units } => write!(f, "degrade({units})"),
            AdmissionDecision::Wait { deadline } => {
                write!(f, "wait(until {}s)", deadline.as_secs())
            }
            AdmissionDecision::Reject => f.write_str("reject"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admitted_covers_full_and_degraded() {
        assert!(AdmissionDecision::Admit { units: 4 }.admitted());
        assert!(AdmissionDecision::Degrade { units: 1 }.admitted());
        assert!(!AdmissionDecision::Wait {
            deadline: SimTime::MAX
        }
        .admitted());
        assert!(!AdmissionDecision::Reject.admitted());
    }

    #[test]
    fn accessors_extract_payloads() {
        assert_eq!(AdmissionDecision::Admit { units: 7 }.units(), Some(7));
        assert_eq!(AdmissionDecision::Reject.units(), None);
        let d = AdmissionDecision::Wait {
            deadline: SimTime::from_secs(30),
        };
        assert_eq!(d.deadline(), Some(SimTime::from_secs(30)));
        assert_eq!(AdmissionDecision::Reject.deadline(), None);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            AdmissionDecision::Admit { units: 2 }.to_string(),
            "admit(2)"
        );
        assert_eq!(AdmissionDecision::Reject.to_string(), "reject");
    }
}
