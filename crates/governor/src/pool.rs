//! A budgeted resource pool: budget + shared wait queue + statistics.
//!
//! A [`ResourcePool`] hands out units of a divisible resource (execution
//! memory bytes, per-class admission slots) against a fixed budget. When a
//! request does not fit it either receives a *degraded* allocation — the
//! caller accepts less than it asked for, e.g. a reduced memory grant that
//! will spill — or joins the pool's FIFO [`WaitQueue`]. Releases admit
//! waiters in strict FIFO order, so large requests cannot be starved by
//! small latecomers.

use crate::decision::AdmissionDecision;
use crate::queue::{WaitQueue, WaiterKey};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;
use throttledb_sim::{Histogram, SimTime};

/// Lifetime counters of one [`ResourcePool`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Requests admitted in full.
    pub admitted: u64,
    /// Requests admitted with a degraded (reduced) allocation.
    pub degraded: u64,
    /// Requests that had to queue.
    pub queued: u64,
    /// Queued requests abandoned before admission (timeouts / cancels).
    pub cancelled: u64,
    /// Time spent queued before admission, in microseconds.
    pub wait_time: Histogram,
}

impl PoolStats {
    fn new(name: &str) -> Self {
        PoolStats {
            admitted: 0,
            degraded: 0,
            queued: 0,
            cancelled: 0,
            wait_time: Histogram::new(format!("{name}-wait-us")),
        }
    }
}

/// A budgeted admission pool keyed by caller-chosen tags.
///
/// `T` identifies one request across its lifetime (request → wait → admit →
/// release); the pool keeps the tag→queue-ticket index so cancellation stays
/// O(1).
#[derive(Debug)]
pub struct ResourcePool<T: Copy + Eq + Hash> {
    budget: u64,
    in_use: u64,
    min_fraction: f64,
    outstanding: HashMap<T, u64>,
    queue: WaitQueue<(T, u64)>,
    keys: HashMap<T, WaiterKey>,
    stats: PoolStats,
}

impl<T: Copy + Eq + Hash> ResourcePool<T> {
    /// A pool over `budget` units. `min_fraction` is the smallest fraction
    /// of its request a degraded admission may receive (0 disables degraded
    /// admissions entirely; 1 makes every admission all-or-nothing).
    pub fn new(name: &str, budget: u64, min_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&min_fraction),
            "min_fraction must be in [0,1]"
        );
        ResourcePool {
            budget,
            in_use: 0,
            min_fraction,
            outstanding: HashMap::new(),
            queue: WaitQueue::new(),
            keys: HashMap::new(),
            stats: PoolStats::new(name),
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Change the budget. Outstanding allocations are not revoked; future
    /// requests and releases see the new value.
    pub fn set_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Units currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Number of queued requests.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// The pool's lifetime counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Units held by `tag`, if it has an outstanding allocation.
    pub fn held(&self, tag: T) -> Option<u64> {
        self.outstanding.get(&tag).copied()
    }

    /// Request `units` for `tag`. Admitted in full when it fits and no one
    /// is queued ahead; admitted degraded when at least the minimum fraction
    /// fits; queued (FIFO, with `deadline`) otherwise.
    ///
    /// A tag identifies at most one request at a time; panics if `tag`
    /// already holds an allocation or is already queued (reuse would
    /// silently corrupt the budget accounting).
    pub fn request(
        &mut self,
        tag: T,
        units: u64,
        now: SimTime,
        deadline: SimTime,
    ) -> AdmissionDecision {
        assert!(
            !self.outstanding.contains_key(&tag) && !self.keys.contains_key(&tag),
            "tag already has an outstanding or queued request"
        );
        let wanted = units.max(1);
        let available = self.budget.saturating_sub(self.in_use);
        if self.queue.is_empty() && wanted <= available {
            self.in_use += wanted;
            self.outstanding.insert(tag, wanted);
            self.stats.admitted += 1;
            return AdmissionDecision::Admit { units: wanted };
        }
        let minimum = self.minimum_for(wanted);
        if self.min_fraction > 0.0 && self.queue.is_empty() && minimum <= available && available > 0
        {
            self.in_use += available;
            self.outstanding.insert(tag, available);
            self.stats.degraded += 1;
            return AdmissionDecision::Degrade { units: available };
        }
        let key = self.queue.push((tag, wanted), now, deadline);
        self.keys.insert(tag, key);
        self.stats.queued += 1;
        AdmissionDecision::Wait { deadline }
    }

    /// Release the allocation held by `tag` and admit queued requests FIFO
    /// while they fit. `now` is used to record wait times; pass
    /// [`SimTime::MAX`] from time-free contexts to skip recording. If `tag`
    /// was still queued this cancels it instead.
    pub fn release(&mut self, tag: T, now: SimTime) -> Vec<(T, AdmissionDecision)> {
        let mut admitted = Vec::new();
        self.release_into(tag, now, &mut admitted);
        admitted
    }

    /// Allocation-free variant of [`ResourcePool::release`]: admitted
    /// waiters are appended to `out` instead of returned in a fresh vector,
    /// so a steady-state caller can recycle one scratch buffer across every
    /// release (the engine's event loop does exactly that).
    pub fn release_into(&mut self, tag: T, now: SimTime, out: &mut Vec<(T, AdmissionDecision)>) {
        match self.outstanding.remove(&tag) {
            Some(units) => {
                self.in_use = self.in_use.saturating_sub(units);
            }
            None => {
                self.cancel(tag);
                return;
            }
        }
        self.admit_waiters_into(now, out)
    }

    /// Abandon a queued request (timeout / caller gave up). Returns true if
    /// it was actually queued. O(1).
    pub fn cancel(&mut self, tag: T) -> bool {
        let Some(key) = self.keys.remove(&tag) else {
            return false;
        };
        let cancelled = self.queue.cancel(key).is_some();
        if cancelled {
            self.stats.cancelled += 1;
        }
        cancelled
    }

    fn minimum_for(&self, wanted: u64) -> u64 {
        ((wanted as f64 * self.min_fraction) as u64).max(1)
    }

    fn admit_waiters_into(&mut self, now: SimTime, admitted: &mut Vec<(T, AdmissionDecision)>) {
        while let Some((_, wanted)) = self.queue.front().copied() {
            let available = self.budget.saturating_sub(self.in_use);
            let decision = if wanted <= available {
                self.stats.admitted += 1;
                AdmissionDecision::Admit { units: wanted }
            } else if self.min_fraction > 0.0
                && self.minimum_for(wanted) <= available
                && available > 0
            {
                self.stats.degraded += 1;
                AdmissionDecision::Degrade { units: available }
            } else {
                break;
            };
            let waiter = self.queue.pop_front().expect("front exists");
            let (tag, _) = waiter.payload;
            self.keys.remove(&tag);
            if now != SimTime::MAX {
                self.stats.wait_time.record(waiter.waited(now).as_micros());
            }
            let units = decision.units().expect("admissions carry units");
            self.in_use += units;
            self.outstanding.insert(tag, units);
            admitted.push((tag, decision));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn pool(budget: u64) -> ResourcePool<u64> {
        ResourcePool::new("test", budget, 0.25)
    }

    fn now() -> SimTime {
        SimTime::from_secs(1)
    }

    #[test]
    fn admits_within_budget() {
        let mut p = pool(100 * MB);
        assert_eq!(
            p.request(1, 40 * MB, now(), SimTime::MAX),
            AdmissionDecision::Admit { units: 40 * MB }
        );
        assert_eq!(p.in_use(), 40 * MB);
        assert_eq!(p.held(1), Some(40 * MB));
    }

    #[test]
    fn degrades_when_minimum_fraction_fits() {
        let mut p = pool(100 * MB);
        p.request(1, 70 * MB, now(), SimTime::MAX);
        assert_eq!(
            p.request(2, 80 * MB, now(), SimTime::MAX),
            AdmissionDecision::Degrade { units: 30 * MB }
        );
        assert_eq!(p.stats().degraded, 1);
    }

    #[test]
    fn queues_below_minimum_and_admits_fifo_on_release() {
        let mut p = pool(100 * MB);
        p.request(1, 90 * MB, now(), SimTime::MAX);
        let d2 = p.request(2, 60 * MB, now(), SimTime::from_secs(100));
        let d3 = p.request(3, 10 * MB, now(), SimTime::from_secs(100));
        assert!(matches!(d2, AdmissionDecision::Wait { .. }));
        assert!(matches!(d3, AdmissionDecision::Wait { .. }));
        let admitted = p.release(1, SimTime::from_secs(20));
        assert_eq!(admitted.len(), 2);
        assert_eq!(admitted[0].0, 2, "FIFO: 2 before 3");
        assert_eq!(admitted[0].1, AdmissionDecision::Admit { units: 60 * MB });
        assert_eq!(admitted[1].0, 3);
        assert_eq!(p.stats().wait_time.count(), 2);
    }

    #[test]
    fn fifo_prevents_starvation() {
        let mut p = pool(100 * MB);
        p.request(1, 90 * MB, now(), SimTime::MAX);
        assert!(matches!(
            p.request(2, 80 * MB, now(), SimTime::MAX),
            AdmissionDecision::Wait { .. }
        ));
        assert!(matches!(
            p.request(3, 5 * MB, now(), SimTime::MAX),
            AdmissionDecision::Wait { .. }
        ));
        let admitted = p.release(1, SimTime::MAX);
        assert_eq!(admitted[0].0, 2, "large waiter admitted first");
        assert_eq!(admitted[0].1, AdmissionDecision::Admit { units: 80 * MB });
    }

    #[test]
    fn cancel_removes_queued_requests() {
        let mut p = pool(10 * MB);
        p.request(1, 10 * MB, now(), SimTime::MAX);
        p.request(2, 10 * MB, now(), SimTime::MAX);
        assert!(p.cancel(2));
        assert!(!p.cancel(2));
        assert!(p.release(1, SimTime::MAX).is_empty());
        assert_eq!(p.queued_len(), 0);
        assert_eq!(p.stats().cancelled, 1);
    }

    #[test]
    fn release_of_queued_tag_cancels_it() {
        let mut p = pool(10 * MB);
        p.request(1, 10 * MB, now(), SimTime::MAX);
        p.request(2, 10 * MB, now(), SimTime::MAX);
        assert!(p.release(2, SimTime::MAX).is_empty());
        assert_eq!(p.queued_len(), 0);
        assert_eq!(p.in_use(), 10 * MB);
    }

    #[test]
    fn shrunken_budget_blocks_new_requests() {
        let mut p = pool(100 * MB);
        p.request(1, 50 * MB, now(), SimTime::MAX);
        p.set_budget(40 * MB);
        assert!(matches!(
            p.request(2, 30 * MB, now(), SimTime::MAX),
            AdmissionDecision::Wait { .. }
        ));
        assert_eq!(p.stats().admitted, 1);
        assert_eq!(p.stats().queued, 1);
    }

    #[test]
    fn zero_min_fraction_disables_degraded_admissions() {
        let mut p: ResourcePool<u64> = ResourcePool::new("strict", 100 * MB, 0.0);
        p.request(1, 99 * MB, now(), SimTime::MAX);
        // 1 MB is available, but a degraded 1 MB grant must NOT be handed
        // out: the request queues until the full amount fits.
        assert!(matches!(
            p.request(2, 80 * MB, now(), SimTime::MAX),
            AdmissionDecision::Wait { .. }
        ));
        assert_eq!(p.stats().degraded, 0);
        let admitted = p.release(1, SimTime::MAX);
        assert_eq!(
            admitted,
            vec![(2, AdmissionDecision::Admit { units: 80 * MB })]
        );
    }

    #[test]
    fn all_or_nothing_pool_never_degrades() {
        let mut p: ResourcePool<u64> = ResourcePool::new("slots", 2, 1.0);
        assert_eq!(
            p.request(1, 1, now(), SimTime::MAX),
            AdmissionDecision::Admit { units: 1 }
        );
        assert_eq!(
            p.request(2, 2, now(), SimTime::MAX),
            AdmissionDecision::Wait {
                deadline: SimTime::MAX
            }
        );
        let admitted = p.release(1, SimTime::MAX);
        assert_eq!(admitted, vec![(2, AdmissionDecision::Admit { units: 2 })]);
    }
}
