//! Property test: the slot-indexed [`WaitQueue`] behaves exactly like a
//! naive `VecDeque` model under arbitrary push/pop/cancel interleavings.

use proptest::prelude::*;
use std::collections::VecDeque;
use throttledb_governor::{WaitQueue, WaiterKey};
use throttledb_sim::SimTime;

proptest! {
    #[test]
    fn wait_queue_matches_vecdeque_model(
        ops in proptest::collection::vec((0u8..3, 0usize..16), 1..300),
    ) {
        let mut q: WaitQueue<u64> = WaitQueue::new();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut keys: Vec<(WaiterKey, u64)> = Vec::new();
        let mut next = 0u64;

        for (op, pick) in ops {
            match op {
                0 => {
                    let key = q.push(next, SimTime::from_secs(next), SimTime::MAX);
                    model.push_back(next);
                    keys.push((key, next));
                    next += 1;
                }
                1 => {
                    let popped = q.pop_front().map(|w| w.payload);
                    prop_assert_eq!(popped, model.pop_front());
                    if let Some(v) = popped {
                        keys.retain(|(_, payload)| *payload != v);
                    }
                }
                _ => {
                    if !keys.is_empty() {
                        let (key, payload) = keys.remove(pick % keys.len());
                        let cancelled = q.cancel(key).map(|w| w.payload);
                        prop_assert_eq!(cancelled, Some(payload));
                        model.retain(|v| *v != payload);
                        // Cancelled keys are dead forever.
                        prop_assert!(q.cancel(key).is_none());
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len());
            let live: Vec<u64> = q.iter().map(|w| w.payload).collect();
            let expected: Vec<u64> = model.iter().copied().collect();
            prop_assert_eq!(live, expected, "FIFO order must match the model");
        }
    }
}
