//! Property test: the slot-indexed [`WaitQueue`] behaves exactly like a
//! naive `VecDeque` model under arbitrary push/pop/cancel interleavings.

use proptest::prelude::*;
use std::collections::VecDeque;
use throttledb_governor::{WaitQueue, WaiterKey};
use throttledb_sim::SimTime;

proptest! {
    #[test]
    fn wait_queue_matches_vecdeque_model(
        ops in proptest::collection::vec((0u8..3, 0usize..16), 1..300),
    ) {
        let mut q: WaitQueue<u64> = WaitQueue::new();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut keys: Vec<(WaiterKey, u64)> = Vec::new();
        let mut next = 0u64;

        for (op, pick) in ops {
            match op {
                0 => {
                    let key = q.push(next, SimTime::from_secs(next), SimTime::MAX);
                    model.push_back(next);
                    keys.push((key, next));
                    next += 1;
                }
                1 => {
                    let popped = q.pop_front().map(|w| w.payload);
                    prop_assert_eq!(popped, model.pop_front());
                    if let Some(v) = popped {
                        keys.retain(|(_, payload)| *payload != v);
                    }
                }
                _ => {
                    if !keys.is_empty() {
                        let (key, payload) = keys.remove(pick % keys.len());
                        let cancelled = q.cancel(key).map(|w| w.payload);
                        prop_assert_eq!(cancelled, Some(payload));
                        model.retain(|v| *v != payload);
                        // Cancelled keys are dead forever.
                        prop_assert!(q.cancel(key).is_none());
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len());
            let live: Vec<u64> = q.iter().map(|w| w.payload).collect();
            let expected: Vec<u64> = model.iter().copied().collect();
            prop_assert_eq!(live, expected, "FIFO order must match the model");
        }
    }

    /// The timeout-then-cancel race: a grant-timeout event fires holding a
    /// [`WaiterKey`], but the waiter it pointed at was already released by a
    /// pop (or cancelled), and its slot may since have been reused by a new
    /// waiter. The late `cancel` must be a generation-checked no-op — it may
    /// never double-free the slot or evict the slot's new occupant — and the
    /// stale key must read as dead through `contains`/`deadline` too.
    #[test]
    fn stale_tickets_never_release_a_reused_slot(
        ops in proptest::collection::vec((0u8..4, 0usize..16), 1..400),
    ) {
        let mut q: WaitQueue<u64> = WaitQueue::new();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut live_keys: Vec<(WaiterKey, u64)> = Vec::new();
        let mut stale_keys: Vec<WaiterKey> = Vec::new();
        let mut next = 0u64;

        for (op, pick) in ops {
            match op {
                0 => {
                    let key = q.push(next, SimTime::from_secs(next), SimTime::MAX);
                    model.push_back(next);
                    live_keys.push((key, next));
                    next += 1;
                }
                1 => {
                    // Release from the front; the released key becomes the
                    // ticket a pending timeout still holds.
                    let popped = q.pop_front().map(|w| w.payload);
                    prop_assert_eq!(popped, model.pop_front());
                    if let Some(v) = popped {
                        let at = live_keys
                            .iter()
                            .position(|(_, payload)| *payload == v)
                            .expect("popped waiter was live");
                        stale_keys.push(live_keys.remove(at).0);
                    }
                }
                2 => {
                    // A timeout cancels its (still-live) waiter, then keeps
                    // the now-dead ticket around.
                    if !live_keys.is_empty() {
                        let (key, payload) = live_keys.remove(pick % live_keys.len());
                        prop_assert_eq!(q.cancel(key).map(|w| w.payload), Some(payload));
                        model.retain(|v| *v != payload);
                        stale_keys.push(key);
                    }
                }
                _ => {
                    // The race itself: fire a long-dead ticket at the queue,
                    // after any number of pushes may have reused its slot.
                    if !stale_keys.is_empty() {
                        let key = stale_keys[pick % stale_keys.len()];
                        prop_assert!(q.cancel(key).is_none(), "stale cancel released a waiter");
                        prop_assert!(!q.contains(key), "stale key reads as live");
                        prop_assert!(q.deadline(key).is_none(), "stale key still has a deadline");
                    }
                }
            }
            // No interleaving of stale-ticket fires may perturb the queue:
            // every live waiter survives, in FIFO order.
            prop_assert_eq!(q.len(), model.len());
            let live: Vec<u64> = q.iter().map(|w| w.payload).collect();
            let expected: Vec<u64> = model.iter().copied().collect();
            prop_assert_eq!(live, expected, "stale tickets disturbed the live waiters");
            for (key, payload) in &live_keys {
                prop_assert_eq!(q.deadline(*key), Some(SimTime::MAX), "live waiter {} lost", payload);
            }
        }
    }
}
