//! # throttledb-bufferpool
//!
//! The database page buffer pool substrate. Two layers:
//!
//! * [`pool::BufferPool`] — a real page-level pool with CLOCK (second-chance)
//!   replacement, per-page pin counts, and broker-driven shrink/grow: the
//!   paper's observation that "replacement policies ... can also be used to
//!   enable the buffer pool to identify candidates necessary to shrink its
//!   size" is implemented literally.
//! * [`model::HitRateModel`] — the analytic footprint model the
//!   discrete-event engine uses to translate "buffer pool of X bytes against
//!   a working set of Y bytes" into a physical-I/O fraction, so multi-hour
//!   SALES runs over a 524 GB warehouse do not need 64 million page frames
//!   in the simulator's memory.
//!
//! Both layers report through the same
//! [`Clerk`](throttledb_membroker::Clerk), so the Memory Broker sees buffer
//! pool memory exactly as it sees compilation memory.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod model;
pub mod pool;

pub use model::HitRateModel;
pub use pool::{BufferPool, PageId, PAGE_BYTES};
