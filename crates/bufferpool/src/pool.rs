//! A page-level buffer pool with CLOCK replacement.

use parking_lot::Mutex;
use std::collections::HashMap;
use throttledb_membroker::Clerk;

/// Size of one database page.
pub const PAGE_BYTES: u64 = 8 * 1024;

/// Identifies a page: (table id, page number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Table identifier.
    pub table: u32,
    /// Page number within the table.
    pub page: u64,
}

#[derive(Debug, Clone)]
struct Frame {
    page: PageId,
    referenced: bool,
    pinned: u32,
}

#[derive(Debug, Default)]
struct PoolState {
    frames: Vec<Frame>,
    by_page: HashMap<PageId, usize>,
    clock_hand: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A buffer pool bounded by a page capacity that can be resized at runtime
/// (e.g. in response to broker shrink notifications).
#[derive(Debug)]
pub struct BufferPool {
    capacity_pages: Mutex<usize>,
    state: Mutex<PoolState>,
    clerk: Option<Clerk>,
}

impl BufferPool {
    /// A pool holding at most `capacity_pages` pages, optionally reporting
    /// its memory to a broker clerk.
    pub fn new(capacity_pages: usize, clerk: Option<Clerk>) -> Self {
        assert!(capacity_pages > 0, "buffer pool needs at least one page");
        BufferPool {
            capacity_pages: Mutex::new(capacity_pages),
            state: Mutex::new(PoolState::default()),
            clerk,
        }
    }

    /// Current capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        *self.capacity_pages.lock()
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.state.lock().frames.len()
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_pages() as u64 * PAGE_BYTES
    }

    /// Lifetime (hits, misses, evictions).
    pub fn counters(&self) -> (u64, u64, u64) {
        let s = self.state.lock();
        (s.hits, s.misses, s.evictions)
    }

    /// Hit rate so far (0 when nothing was accessed).
    pub fn hit_rate(&self) -> f64 {
        let (h, m, _) = self.counters();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Access a page: returns `true` on a hit, `false` when the page had to
    /// be "read from disk" (and possibly evicted another page). The page is
    /// left unpinned.
    pub fn access(&self, page: PageId) -> bool {
        let capacity = *self.capacity_pages.lock();
        let mut s = self.state.lock();
        if let Some(&idx) = s.by_page.get(&page) {
            s.frames[idx].referenced = true;
            s.hits += 1;
            return true;
        }
        s.misses += 1;
        // Room available?
        if s.frames.len() < capacity {
            let idx = s.frames.len();
            s.frames.push(Frame {
                page,
                referenced: true,
                pinned: 0,
            });
            s.by_page.insert(page, idx);
            if let Some(clerk) = &self.clerk {
                clerk.allocate(PAGE_BYTES);
            }
            return false;
        }
        // CLOCK eviction: find an unpinned, unreferenced victim.
        let n = s.frames.len();
        for _ in 0..2 * n {
            let hand = s.clock_hand % n;
            s.clock_hand = (s.clock_hand + 1) % n;
            if s.frames[hand].pinned > 0 {
                continue;
            }
            if s.frames[hand].referenced {
                s.frames[hand].referenced = false;
                continue;
            }
            // Victim found.
            let old = s.frames[hand].page;
            s.by_page.remove(&old);
            s.frames[hand] = Frame {
                page,
                referenced: true,
                pinned: 0,
            };
            s.by_page.insert(page, hand);
            s.evictions += 1;
            return false;
        }
        // Everything pinned: the access proceeds without caching.
        false
    }

    /// Pin a resident page (it will not be evicted until unpinned).
    /// Returns false when the page is not resident.
    pub fn pin(&self, page: PageId) -> bool {
        let mut s = self.state.lock();
        match s.by_page.get(&page).copied() {
            Some(idx) => {
                s.frames[idx].pinned += 1;
                true
            }
            None => false,
        }
    }

    /// Unpin a previously pinned page.
    pub fn unpin(&self, page: PageId) {
        let mut s = self.state.lock();
        if let Some(&idx) = s.by_page.get(&page) {
            let f = &mut s.frames[idx];
            debug_assert!(f.pinned > 0, "unpin without pin");
            f.pinned = f.pinned.saturating_sub(1);
        }
    }

    /// Resize the pool. Shrinking evicts unpinned pages immediately (the
    /// "shrink" response to a broker notification); growing just raises the
    /// ceiling. Returns the number of pages evicted.
    pub fn resize(&self, new_capacity_pages: usize) -> usize {
        assert!(new_capacity_pages > 0);
        *self.capacity_pages.lock() = new_capacity_pages;
        let mut s = self.state.lock();
        let mut evicted = 0;
        while s.frames.len() > new_capacity_pages {
            // Evict the first unpinned frame (preferring unreferenced ones).
            let victim = s
                .frames
                .iter()
                .position(|f| f.pinned == 0 && !f.referenced)
                .or_else(|| s.frames.iter().position(|f| f.pinned == 0));
            let Some(idx) = victim else {
                break; // everything pinned
            };
            let frame = s.frames.swap_remove(idx);
            s.by_page.remove(&frame.page);
            // Fix the index of the frame that was swapped into `idx`.
            if idx < s.frames.len() {
                let moved = s.frames[idx].page;
                s.by_page.insert(moved, idx);
            }
            s.evictions += 1;
            evicted += 1;
        }
        if evicted > 0 {
            if let Some(clerk) = &self.clerk {
                clerk.free(evicted as u64 * PAGE_BYTES);
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use throttledb_membroker::{BrokerConfig, MemoryBroker, SubcomponentKind};

    fn page(table: u32, page: u64) -> PageId {
        PageId { table, page }
    }

    #[test]
    fn repeated_access_hits_after_first_miss() {
        let pool = BufferPool::new(10, None);
        assert!(!pool.access(page(1, 0)));
        assert!(pool.access(page(1, 0)));
        assert!(pool.access(page(1, 0)));
        assert_eq!(pool.counters(), (2, 1, 0));
        assert!(pool.hit_rate() > 0.6);
    }

    #[test]
    fn capacity_bound_is_respected_and_clock_evicts() {
        let pool = BufferPool::new(4, None);
        for i in 0..8 {
            pool.access(page(1, i));
        }
        assert_eq!(pool.resident_pages(), 4);
        let (_, misses, evictions) = pool.counters();
        assert_eq!(misses, 8);
        assert_eq!(evictions, 4);
    }

    #[test]
    fn hot_pages_survive_a_scan() {
        let pool = BufferPool::new(8, None);
        // Touch a hot page repeatedly while streaming many cold pages through.
        pool.access(page(1, 0));
        for i in 1..100 {
            pool.access(page(2, i));
            pool.access(page(1, 0)); // keep it referenced
        }
        // The hot page should still be resident.
        assert!(
            pool.access(page(1, 0)),
            "hot page should not have been evicted"
        );
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let pool = BufferPool::new(2, None);
        pool.access(page(1, 0));
        assert!(pool.pin(page(1, 0)));
        for i in 1..50 {
            pool.access(page(2, i));
        }
        assert!(pool.access(page(1, 0)), "pinned page must remain resident");
        pool.unpin(page(1, 0));
        assert!(!pool.pin(page(9, 9)), "cannot pin a non-resident page");
    }

    #[test]
    fn resize_shrinks_and_reports_to_clerk() {
        let broker = MemoryBroker::new(BrokerConfig::with_total_memory(1 << 30));
        let clerk = broker.register(SubcomponentKind::BufferPool);
        let pool = BufferPool::new(100, Some(clerk.clone()));
        for i in 0..100 {
            pool.access(page(1, i));
        }
        assert_eq!(clerk.used_bytes(), 100 * PAGE_BYTES);
        let evicted = pool.resize(30);
        assert_eq!(evicted, 70);
        assert_eq!(pool.resident_pages(), 30);
        assert_eq!(clerk.used_bytes(), 30 * PAGE_BYTES);
        // Growing does not admit pages by itself.
        assert_eq!(pool.resize(200), 0);
        assert_eq!(pool.resident_pages(), 30);
    }

    #[test]
    fn hit_rate_improves_with_larger_pool() {
        let run = |capacity: usize| {
            let pool = BufferPool::new(capacity, None);
            // Cyclic access over 50 distinct pages, 10 rounds.
            for _ in 0..10 {
                for i in 0..50 {
                    pool.access(page(1, i));
                }
            }
            pool.hit_rate()
        };
        assert!(
            run(60) > run(10),
            "bigger pool must hit more on a cyclic workload"
        );
    }
}
