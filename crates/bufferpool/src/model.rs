//! Analytic hit-rate model used by the discrete-event engine.
//!
//! A 524 GB warehouse has ~64 million 8 KiB pages — too many to simulate
//! frame-by-frame inside a multi-hour, 40-client experiment. The engine
//! instead uses this closed-form approximation: given the bytes a query's
//! plan touches (its footprint) and the bytes the buffer pool currently has,
//! estimate the fraction of accesses served from memory. The shape follows
//! the classic concave "more memory helps, with diminishing returns" curve
//! and is anchored so that a pool as large as the working set approaches a
//! configurable maximum hit rate (re-reads within a query, shared dimension
//! tables), and a tiny pool approaches a configurable floor.

use serde::{Deserialize, Serialize};

/// Closed-form buffer pool hit-rate model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HitRateModel {
    /// Hit rate approached when the pool is much larger than the working set.
    pub max_hit_rate: f64,
    /// Hit rate approached when the pool is negligible.
    pub min_hit_rate: f64,
    /// Curvature exponent in (0, 1]: lower = faster saturation.
    pub exponent: f64,
}

impl Default for HitRateModel {
    fn default() -> Self {
        HitRateModel {
            max_hit_rate: 0.97,
            min_hit_rate: 0.05,
            exponent: 0.6,
        }
    }
}

impl HitRateModel {
    /// Estimated hit rate for a working set of `working_set_bytes` against a
    /// pool of `pool_bytes`.
    pub fn hit_rate(&self, pool_bytes: u64, working_set_bytes: u64) -> f64 {
        if working_set_bytes == 0 {
            return self.max_hit_rate;
        }
        let ratio = (pool_bytes as f64 / working_set_bytes as f64).clamp(0.0, 1.0);
        let curve = ratio.powf(self.exponent);
        self.min_hit_rate + (self.max_hit_rate - self.min_hit_rate) * curve
    }

    /// Physical-read fraction (`1 - hit_rate`).
    pub fn miss_rate(&self, pool_bytes: u64, working_set_bytes: u64) -> f64 {
        1.0 - self.hit_rate(pool_bytes, working_set_bytes)
    }

    /// Estimated physical I/O seconds for a scan of `footprint_bytes` given
    /// the pool size and a sequential throughput in bytes/second.
    pub fn io_seconds(
        &self,
        footprint_bytes: u64,
        pool_bytes: u64,
        working_set_bytes: u64,
        sequential_bytes_per_sec: f64,
    ) -> f64 {
        assert!(sequential_bytes_per_sec > 0.0);
        let miss = self.miss_rate(pool_bytes, working_set_bytes);
        footprint_bytes as f64 * miss / sequential_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn hit_rate_is_monotone_in_pool_size() {
        let m = HitRateModel::default();
        let ws = 100 * GB;
        let mut last = -1.0;
        for pool_gb in [0u64, 1, 2, 4, 8, 16, 32, 64, 100, 200] {
            let hr = m.hit_rate(pool_gb * GB, ws);
            assert!(hr >= last, "hit rate must not decrease with pool size");
            assert!((0.0..=1.0).contains(&hr));
            last = hr;
        }
    }

    #[test]
    fn extremes_approach_configured_bounds() {
        let m = HitRateModel::default();
        let ws = 100 * GB;
        assert!((m.hit_rate(0, ws) - m.min_hit_rate).abs() < 1e-9);
        assert!((m.hit_rate(1000 * GB, ws) - m.max_hit_rate).abs() < 1e-9);
        assert_eq!(
            m.hit_rate(0, 0),
            m.max_hit_rate,
            "empty working set always hits"
        );
    }

    #[test]
    fn squeezing_the_pool_increases_io_time() {
        let m = HitRateModel::default();
        let ws = 200 * GB;
        let footprint = 10 * GB;
        let healthy = m.io_seconds(footprint, 64 * GB, ws, 60.0e6);
        let squeezed = m.io_seconds(footprint, 3 * GB, ws, 60.0e6);
        let starved = m.io_seconds(footprint, GB / 2, ws, 60.0e6);
        assert!(
            starved > squeezed && squeezed > healthy * 1.5,
            "shrinking the pool must cost noticeably more I/O: {starved} > {squeezed} > {healthy}"
        );
    }

    #[test]
    fn miss_rate_complements_hit_rate() {
        let m = HitRateModel::default();
        let hr = m.hit_rate(2 * GB, 50 * GB);
        let mr = m.miss_rate(2 * GB, 50 * GB);
        assert!((hr + mr - 1.0).abs() < 1e-12);
    }
}
