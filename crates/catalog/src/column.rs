//! Column definitions.

use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A column of a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (unique within its table, case-insensitive).
    pub name: String,
    /// Data type.
    pub data_type: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl ColumnDef {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into().to_ascii_lowercase(),
            data_type,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into().to_ascii_lowercase(),
            data_type,
            nullable: true,
        }
    }

    /// Average stored width of this column in bytes (adds the null bitmap
    /// overhead for nullable columns).
    pub fn avg_width_bytes(&self) -> u32 {
        self.data_type.avg_width_bytes() + if self.nullable { 1 } else { 0 }
    }
}

impl fmt::Display for ColumnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}{}",
            self.name,
            self.data_type,
            if self.nullable { "" } else { " NOT NULL" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_lowercased() {
        let c = ColumnDef::new("OrderKey", DataType::BigInt);
        assert_eq!(c.name, "orderkey");
        assert!(!c.nullable);
    }

    #[test]
    fn nullable_adds_width_overhead() {
        let a = ColumnDef::new("a", DataType::Int);
        let b = ColumnDef::nullable("b", DataType::Int);
        assert_eq!(a.avg_width_bytes(), 4);
        assert_eq!(b.avg_width_bytes(), 5);
    }

    #[test]
    fn display_includes_nullability() {
        assert_eq!(
            ColumnDef::new("id", DataType::BigInt).to_string(),
            "id BIGINT NOT NULL"
        );
        assert_eq!(
            ColumnDef::nullable("note", DataType::Varchar(10)).to_string(),
            "note VARCHAR(10)"
        );
    }
}
