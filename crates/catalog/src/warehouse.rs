//! Schema builders for the paper's two workloads.
//!
//! * [`sales_schema`] — the SALES decision-support warehouse of §5.1: a
//!   \>400-million-row fact table plus a constellation of dimension tables,
//!   totalling roughly 524 GB, with enough dimensions that "average" queries
//!   join 15–20 tables.
//! * [`tpch_schema`] — a TPC-H-like schema (8 tables, 0–8 join queries) used
//!   for the compile-memory comparison in §5.1 ("one to two orders of
//!   magnitude more memory than TPC-H queries of similar scale").

use crate::builder::TableBuilder;
use crate::schema::Catalog;
use crate::types::DataType;

/// Column spec triple: name, type, distinct-value count.
type ColumnSpec = (&'static str, DataType, u64);
/// Dimension-table spec: name, row count, columns.
type DimSpec = (&'static str, u64, Vec<ColumnSpec>);

/// Scale knobs for the SALES warehouse.
///
/// Statistics always describe the full-scale warehouse; the scale only
/// matters if a caller wants a smaller *statistical* database (e.g. to test
/// optimizer sensitivity to table sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SalesScale {
    /// Rows in the main fact table.
    pub fact_rows: u64,
    /// Rows in the secondary (order-line style) fact table.
    pub secondary_fact_rows: u64,
    /// Rows in the largest dimension (customers).
    pub large_dimension_rows: u64,
}

impl SalesScale {
    /// The scale described in the paper: a fact table of over 400 million
    /// rows and a 524 GB data mart.
    pub fn paper() -> Self {
        SalesScale {
            fact_rows: 410_000_000,
            secondary_fact_rows: 1_200_000_000,
            large_dimension_rows: 18_000_000,
        }
    }

    /// A small scale for unit tests (same shape, tiny counts).
    pub fn tiny() -> Self {
        SalesScale {
            fact_rows: 100_000,
            secondary_fact_rows: 300_000,
            large_dimension_rows: 10_000,
        }
    }
}

impl Default for SalesScale {
    fn default() -> Self {
        SalesScale::paper()
    }
}

/// Build the SALES warehouse catalog.
///
/// The schema is a star/snowflake with two fact tables and 20 dimension
/// tables, so that a query joining the fact table to most of its dimensions
/// (the paper's "average" 15–20 join query) is natural to express.
pub fn sales_schema(scale: SalesScale) -> Catalog {
    let mut cat = Catalog::new("sales");

    // --- Fact tables -------------------------------------------------------
    let mut fact = TableBuilder::new("fact_sales", scale.fact_rows)
        .key("sale_id")
        .foreign_key("product_id", 2_500_000)
        .foreign_key("customer_id", scale.large_dimension_rows)
        .foreign_key("store_id", 60_000)
        .foreign_key("date_id", 3_650)
        .foreign_key("promotion_id", 25_000)
        .foreign_key("channel_id", 12)
        .foreign_key("currency_id", 180)
        .foreign_key("salesrep_id", 250_000)
        .foreign_key("shipmode_id", 8)
        .foreign_key("warehouse_id", 1_200)
        .foreign_key("region_id", 500)
        .foreign_key("category_id", 4_000)
        .foreign_key("brand_id", 30_000)
        .foreign_key("supplier_id", 120_000)
        .foreign_key("payment_id", 15)
        .foreign_key("segment_id", 40)
        .foreign_key("campaign_id", 9_000)
        .foreign_key("returnreason_id", 60)
        .measure("quantity")
        .measure("unit_price")
        .measure("discount")
        .measure("net_amount")
        .measure("cost_amount")
        .date("order_date", 10);
    fact = fact
        .index(vec!["date_id", "store_id"])
        .index(vec!["product_id", "date_id"]);
    let mut fact = fact.build();
    // Real warehouse fact rows carry degenerate dimensions, audit columns and
    // index leaf overhead well beyond the declared columns; widen the stored
    // width so the data mart lands at the paper's ≈524 GB.
    fact.statistics.avg_row_bytes = 340;
    cat.add_table(fact);

    let mut line_fact = TableBuilder::new("fact_sales_line", scale.secondary_fact_rows)
        .key("line_id")
        .foreign_key("sale_id", scale.fact_rows)
        .foreign_key("product_id", 2_500_000)
        .foreign_key("warehouse_id", 1_200)
        .foreign_key("shipmode_id", 8)
        .measure("line_quantity")
        .measure("line_amount")
        .measure("line_cost")
        .build();
    line_fact.statistics.avg_row_bytes = 280;
    cat.add_table(line_fact);

    // --- Dimension tables --------------------------------------------------
    let dims: Vec<DimSpec> = vec![
        (
            "dim_product",
            2_500_000,
            vec![
                ("product_name", DataType::Varchar(60), 2_400_000),
                ("brand_id", DataType::BigInt, 30_000),
                ("category_id", DataType::BigInt, 4_000),
                ("unit_cost", DataType::Decimal, 100_000),
                ("introduced_year", DataType::Int, 30),
            ],
        ),
        (
            "dim_customer",
            scale.large_dimension_rows,
            vec![
                (
                    "customer_name",
                    DataType::Varchar(50),
                    scale.large_dimension_rows,
                ),
                ("segment_id", DataType::BigInt, 40),
                ("country", DataType::Varchar(30), 195),
                ("city", DataType::Varchar(40), 60_000),
                ("credit_limit", DataType::Decimal, 10_000),
            ],
        ),
        (
            "dim_store",
            60_000,
            vec![
                ("store_name", DataType::Varchar(40), 60_000),
                ("region_id", DataType::BigInt, 500),
                ("sqft", DataType::Int, 4_000),
                ("open_year", DataType::Int, 40),
            ],
        ),
        (
            "dim_date",
            3_650,
            vec![
                ("calendar_year", DataType::Int, 10),
                ("quarter", DataType::Int, 4),
                ("month", DataType::Int, 12),
                ("week", DataType::Int, 53),
                ("is_holiday", DataType::Bool, 2),
            ],
        ),
        (
            "dim_promotion",
            25_000,
            vec![
                ("promo_name", DataType::Varchar(40), 25_000),
                ("promo_type", DataType::Varchar(20), 25),
                ("discount_pct", DataType::Decimal, 100),
            ],
        ),
        (
            "dim_channel",
            12,
            vec![("channel_name", DataType::Varchar(20), 12)],
        ),
        (
            "dim_currency",
            180,
            vec![
                ("currency_code", DataType::Varchar(3), 180),
                ("exchange_rate", DataType::Decimal, 180),
            ],
        ),
        (
            "dim_salesrep",
            250_000,
            vec![
                ("rep_name", DataType::Varchar(40), 250_000),
                ("territory", DataType::Varchar(30), 800),
                ("hire_year", DataType::Int, 35),
            ],
        ),
        (
            "dim_shipmode",
            8,
            vec![("shipmode_name", DataType::Varchar(20), 8)],
        ),
        (
            "dim_warehouse",
            1_200,
            vec![
                ("warehouse_name", DataType::Varchar(40), 1_200),
                ("region_id", DataType::BigInt, 500),
                ("capacity", DataType::Int, 900),
            ],
        ),
        (
            "dim_region",
            500,
            vec![
                ("region_name", DataType::Varchar(30), 500),
                ("country", DataType::Varchar(30), 195),
                ("continent", DataType::Varchar(15), 7),
            ],
        ),
        (
            "dim_category",
            4_000,
            vec![
                ("category_name", DataType::Varchar(40), 4_000),
                ("department", DataType::Varchar(30), 120),
            ],
        ),
        (
            "dim_brand",
            30_000,
            vec![
                ("brand_name", DataType::Varchar(40), 30_000),
                ("manufacturer", DataType::Varchar(40), 5_000),
            ],
        ),
        (
            "dim_supplier",
            120_000,
            vec![
                ("supplier_name", DataType::Varchar(50), 120_000),
                ("country", DataType::Varchar(30), 195),
                ("rating", DataType::Int, 10),
            ],
        ),
        (
            "dim_payment",
            15,
            vec![("payment_name", DataType::Varchar(20), 15)],
        ),
        (
            "dim_segment",
            40,
            vec![("segment_name", DataType::Varchar(30), 40)],
        ),
        (
            "dim_campaign",
            9_000,
            vec![
                ("campaign_name", DataType::Varchar(50), 9_000),
                ("budget", DataType::Decimal, 5_000),
                ("start_year", DataType::Int, 10),
            ],
        ),
        (
            "dim_returnreason",
            60,
            vec![("reason_text", DataType::Varchar(60), 60)],
        ),
        (
            "dim_employee",
            400_000,
            vec![
                ("employee_name", DataType::Varchar(40), 400_000),
                ("store_id", DataType::BigInt, 60_000),
                ("role", DataType::Varchar(30), 50),
            ],
        ),
        (
            "dim_household",
            9_000_000,
            vec![
                ("income_band", DataType::Int, 20),
                ("size", DataType::Int, 9),
                ("urbanicity", DataType::Varchar(20), 5),
            ],
        ),
    ];

    for (name, rows, attrs) in dims {
        let key_name = format!("{}_key", name.trim_start_matches("dim_"));
        let mut b = TableBuilder::new(name, rows).key(&key_name);
        for (col, ty, distinct) in attrs {
            b = b.attribute(col, ty, distinct);
        }
        cat.add_table(b.build());
    }

    cat
}

/// Build a TPC-H-like schema at scale factor `sf` (1.0 ≈ 1 GB).
pub fn tpch_schema(sf: f64) -> Catalog {
    assert!(sf > 0.0, "scale factor must be positive");
    let mut cat = Catalog::new("tpch");
    let sf_rows = |base: u64| ((base as f64) * sf).round().max(1.0) as u64;

    cat.add_table(
        TableBuilder::new("region", 5)
            .key("r_regionkey")
            .attribute("r_name", DataType::Varchar(25), 5)
            .build(),
    );
    cat.add_table(
        TableBuilder::new("nation", 25)
            .key("n_nationkey")
            .foreign_key("n_regionkey", 5)
            .attribute("n_name", DataType::Varchar(25), 25)
            .build(),
    );
    cat.add_table(
        TableBuilder::new("supplier", sf_rows(10_000))
            .key("s_suppkey")
            .foreign_key("s_nationkey", 25)
            .attribute("s_name", DataType::Varchar(25), sf_rows(10_000))
            .measure("s_acctbal")
            .build(),
    );
    cat.add_table(
        TableBuilder::new("customer", sf_rows(150_000))
            .key("c_custkey")
            .foreign_key("c_nationkey", 25)
            .attribute("c_mktsegment", DataType::Varchar(10), 5)
            .measure("c_acctbal")
            .build(),
    );
    cat.add_table(
        TableBuilder::new("part", sf_rows(200_000))
            .key("p_partkey")
            .attribute("p_brand", DataType::Varchar(10), 25)
            .attribute("p_type", DataType::Varchar(25), 150)
            .attribute("p_size", DataType::Int, 50)
            .measure("p_retailprice")
            .build(),
    );
    cat.add_table(
        TableBuilder::new("partsupp", sf_rows(800_000))
            .key("ps_id")
            .foreign_key("ps_partkey", sf_rows(200_000))
            .foreign_key("ps_suppkey", sf_rows(10_000))
            .measure("ps_supplycost")
            .build(),
    );
    cat.add_table(
        TableBuilder::new("orders", sf_rows(1_500_000))
            .key("o_orderkey")
            .foreign_key("o_custkey", sf_rows(150_000))
            .attribute("o_orderstatus", DataType::Varchar(1), 3)
            .attribute("o_orderpriority", DataType::Varchar(15), 5)
            .date("o_orderdate", 7)
            .measure("o_totalprice")
            .build(),
    );
    cat.add_table(
        TableBuilder::new("lineitem", sf_rows(6_000_000))
            .key("l_id")
            .foreign_key("l_orderkey", sf_rows(1_500_000))
            .foreign_key("l_partkey", sf_rows(200_000))
            .foreign_key("l_suppkey", sf_rows(10_000))
            .attribute("l_returnflag", DataType::Varchar(1), 3)
            .attribute("l_linestatus", DataType::Varchar(1), 2)
            .date("l_shipdate", 7)
            .measure("l_quantity")
            .measure("l_extendedprice")
            .measure("l_discount")
            .build(),
    );
    cat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sales_schema_matches_paper_shape() {
        let cat = sales_schema(SalesScale::paper());
        // Two fact tables + 20 dimensions.
        assert_eq!(cat.table_count(), 22);
        let fact = cat.table("fact_sales").unwrap();
        assert!(
            fact.row_count() > 400_000_000,
            "fact table must exceed 400M rows"
        );
        // Enough foreign keys to express 15-20 join queries.
        assert!(
            fact.indexes.len() >= 18,
            "fact table needs FK indexes, has {}",
            fact.indexes.len()
        );
    }

    #[test]
    fn sales_schema_is_roughly_524_gb() {
        let cat = sales_schema(SalesScale::paper());
        let gb = cat.total_bytes() as f64 / (1u64 << 30) as f64;
        assert!(
            (350.0..=700.0).contains(&gb),
            "warehouse should be in the paper's ballpark (524 GB), got {gb:.0} GB"
        );
    }

    #[test]
    fn tiny_scale_keeps_shape_but_shrinks() {
        let cat = sales_schema(SalesScale::tiny());
        assert_eq!(cat.table_count(), 22);
        assert_eq!(cat.table("fact_sales").unwrap().row_count(), 100_000);
    }

    #[test]
    fn tpch_schema_has_eight_tables() {
        let cat = tpch_schema(1.0);
        assert_eq!(cat.table_count(), 8);
        assert_eq!(cat.table("lineitem").unwrap().row_count(), 6_000_000);
        assert_eq!(cat.table("region").unwrap().row_count(), 5);
    }

    #[test]
    fn tpch_scale_factor_scales_rows() {
        let cat = tpch_schema(10.0);
        assert_eq!(cat.table("orders").unwrap().row_count(), 15_000_000);
        // Fixed-size tables do not scale.
        assert_eq!(cat.table("nation").unwrap().row_count(), 25);
    }

    #[test]
    fn sales_is_much_larger_than_tpch() {
        let sales = sales_schema(SalesScale::paper());
        let tpch = tpch_schema(1.0);
        assert!(sales.total_bytes() > 100 * tpch.total_bytes());
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_factor_rejected() {
        let _ = tpch_schema(0.0);
    }
}
