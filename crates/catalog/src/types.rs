//! Column data types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The SQL-subset data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 32-bit signed integer.
    Int,
    /// 64-bit signed integer (surrogate keys in the warehouse).
    BigInt,
    /// Fixed-point decimal; width/scale are not modelled, storage is 8 bytes.
    Decimal,
    /// 64-bit float.
    Float,
    /// Calendar date (stored as days).
    Date,
    /// Variable-length string with a declared maximum length.
    Varchar(u32),
    /// Boolean flag.
    Bool,
}

impl DataType {
    /// Average on-disk/in-memory width in bytes, used by the row-size model
    /// and therefore by buffer-pool footprints and hash-table sizing.
    pub fn avg_width_bytes(self) -> u32 {
        match self {
            DataType::Int => 4,
            DataType::BigInt => 8,
            DataType::Decimal => 8,
            DataType::Float => 8,
            DataType::Date => 4,
            DataType::Bool => 1,
            // Assume strings are on average half their declared maximum.
            DataType::Varchar(n) => (n / 2).max(1),
        }
    }

    /// Whether equality predicates and joins on this type are hashable in
    /// the execution engine (everything is in this engine, but the hook keeps
    /// the operator selection honest).
    pub fn is_hashable(self) -> bool {
        true
    }

    /// True for types with a natural total order usable by merge joins and
    /// range predicates.
    pub fn is_ordered(self) -> bool {
        !matches!(self, DataType::Bool)
    }

    /// True for numeric types (aggregable with SUM/AVG).
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            DataType::Int | DataType::BigInt | DataType::Decimal | DataType::Float
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::BigInt => write!(f, "BIGINT"),
            DataType::Decimal => write!(f, "DECIMAL"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Date => write!(f, "DATE"),
            DataType::Varchar(n) => write!(f, "VARCHAR({n})"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_are_sensible() {
        assert_eq!(DataType::Int.avg_width_bytes(), 4);
        assert_eq!(DataType::BigInt.avg_width_bytes(), 8);
        assert_eq!(DataType::Varchar(100).avg_width_bytes(), 50);
        assert_eq!(DataType::Varchar(1).avg_width_bytes(), 1);
        assert_eq!(DataType::Bool.avg_width_bytes(), 1);
    }

    #[test]
    fn numeric_classification() {
        assert!(DataType::Decimal.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Varchar(10).is_numeric());
        assert!(!DataType::Date.is_numeric());
    }

    #[test]
    fn ordering_excludes_bool() {
        assert!(DataType::Date.is_ordered());
        assert!(!DataType::Bool.is_ordered());
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(DataType::Varchar(32).to_string(), "VARCHAR(32)");
        assert_eq!(DataType::BigInt.to_string(), "BIGINT");
    }
}
