//! Table and column statistics.
//!
//! The optimizer's cardinality estimation — and therefore its cost model,
//! and therefore how long and how much memory it spends exploring
//! alternatives — is driven entirely by these statistics. They describe the
//! *full-scale* warehouse (e.g. a 400-million-row fact table) even though the
//! execution engine only materializes a sample, which is how the reproduction
//! gets paper-scale compilation behaviour on laptop-scale hardware.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One bucket of an equi-depth histogram over a column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive lower bound of the bucket (values are normalized to f64).
    pub lo: f64,
    /// Inclusive upper bound of the bucket.
    pub hi: f64,
    /// Rows falling in the bucket.
    pub rows: u64,
    /// Distinct values in the bucket.
    pub distinct: u64,
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStatistics {
    /// Number of distinct values.
    pub distinct_values: u64,
    /// Fraction of NULL rows in `[0, 1]`.
    pub null_fraction: f64,
    /// Minimum value (normalized to f64; strings hash to a number).
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Optional equi-depth histogram; empty means "assume uniform".
    pub histogram: Vec<HistogramBucket>,
}

impl ColumnStatistics {
    /// Uniform statistics over `[min, max]` with `distinct_values` NDV.
    pub fn uniform(distinct_values: u64, min: f64, max: f64) -> Self {
        ColumnStatistics {
            distinct_values: distinct_values.max(1),
            null_fraction: 0.0,
            min,
            max,
            histogram: Vec::new(),
        }
    }

    /// Statistics for a dense surrogate-key column `0..n`.
    pub fn key_column(n: u64) -> Self {
        ColumnStatistics::uniform(n.max(1), 0.0, n.saturating_sub(1) as f64)
    }

    /// Selectivity of an equality predicate `col = literal`.
    pub fn eq_selectivity(&self) -> f64 {
        (1.0 - self.null_fraction) / self.distinct_values.max(1) as f64
    }

    /// Selectivity of a range predicate covering `fraction` of the domain,
    /// refined by the histogram when one is present.
    pub fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        let lo = lo.max(self.min);
        let hi = hi.min(self.max);
        if hi <= lo {
            return 0.0;
        }
        if self.histogram.is_empty() {
            let domain = (self.max - self.min).max(f64::EPSILON);
            ((hi - lo) / domain).clamp(0.0, 1.0) * (1.0 - self.null_fraction)
        } else {
            let total: u64 = self.histogram.iter().map(|b| b.rows).sum();
            if total == 0 {
                return 0.0;
            }
            let mut covered = 0.0;
            for b in &self.histogram {
                let blo = b.lo.max(lo);
                let bhi = b.hi.min(hi);
                if bhi > blo {
                    let width = (b.hi - b.lo).max(f64::EPSILON);
                    covered += b.rows as f64 * ((bhi - blo) / width).clamp(0.0, 1.0);
                }
            }
            (covered / total as f64).clamp(0.0, 1.0) * (1.0 - self.null_fraction)
        }
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStatistics {
    /// Total number of rows at full scale.
    pub row_count: u64,
    /// Average row width in bytes (computed from the columns if zero).
    pub avg_row_bytes: u32,
    /// Per-column statistics keyed by column name.
    pub columns: BTreeMap<String, ColumnStatistics>,
}

impl TableStatistics {
    /// Empty statistics for a table of `row_count` rows.
    pub fn new(row_count: u64) -> Self {
        TableStatistics {
            row_count,
            avg_row_bytes: 0,
            columns: BTreeMap::new(),
        }
    }

    /// Add or replace statistics for a column.
    pub fn with_column(mut self, name: impl Into<String>, stats: ColumnStatistics) -> Self {
        self.columns.insert(name.into().to_ascii_lowercase(), stats);
        self
    }

    /// Look up a column's statistics.
    pub fn column(&self, name: &str) -> Option<&ColumnStatistics> {
        self.columns.get(&name.to_ascii_lowercase())
    }

    /// Distinct values for a column, defaulting to 10% of rows (a common
    /// optimizer guess) when no statistics exist.
    pub fn distinct_or_default(&self, name: &str) -> u64 {
        self.column(name)
            .map(|c| c.distinct_values)
            .unwrap_or_else(|| (self.row_count / 10).max(1))
    }

    /// Total bytes this table occupies at full scale.
    pub fn total_bytes(&self, computed_row_width: u32) -> u64 {
        let width = if self.avg_row_bytes > 0 {
            self.avg_row_bytes
        } else {
            computed_row_width
        };
        self.row_count * width as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_selectivity_is_one_over_ndv() {
        let s = ColumnStatistics::uniform(100, 0.0, 99.0);
        assert!((s.eq_selectivity() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn eq_selectivity_accounts_for_nulls() {
        let mut s = ColumnStatistics::uniform(10, 0.0, 9.0);
        s.null_fraction = 0.5;
        assert!((s.eq_selectivity() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn range_selectivity_uniform() {
        let s = ColumnStatistics::uniform(1000, 0.0, 100.0);
        let sel = s.range_selectivity(0.0, 50.0);
        assert!((sel - 0.5).abs() < 1e-9);
        assert_eq!(s.range_selectivity(200.0, 300.0), 0.0);
        assert!((s.range_selectivity(-100.0, 200.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn range_selectivity_uses_histogram() {
        // 90% of rows in [0,10), 10% in [10,100).
        let s = ColumnStatistics {
            distinct_values: 100,
            null_fraction: 0.0,
            min: 0.0,
            max: 100.0,
            histogram: vec![
                HistogramBucket {
                    lo: 0.0,
                    hi: 10.0,
                    rows: 900,
                    distinct: 10,
                },
                HistogramBucket {
                    lo: 10.0,
                    hi: 100.0,
                    rows: 100,
                    distinct: 90,
                },
            ],
        };
        let sel = s.range_selectivity(0.0, 10.0);
        assert!(
            (sel - 0.9).abs() < 1e-9,
            "histogram should concentrate selectivity, got {sel}"
        );
        // Uniform assumption would have said 0.1.
    }

    #[test]
    fn key_column_spans_zero_to_n() {
        let s = ColumnStatistics::key_column(1000);
        assert_eq!(s.distinct_values, 1000);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 999.0);
    }

    #[test]
    fn table_statistics_lookup_is_case_insensitive() {
        let t =
            TableStatistics::new(500).with_column("OrderKey", ColumnStatistics::key_column(500));
        assert!(t.column("orderkey").is_some());
        assert!(t.column("ORDERKEY").is_some());
        assert_eq!(t.distinct_or_default("orderkey"), 500);
        assert_eq!(t.distinct_or_default("missing"), 50);
    }

    #[test]
    fn total_bytes_prefers_explicit_width() {
        let mut t = TableStatistics::new(100);
        assert_eq!(t.total_bytes(40), 4000);
        t.avg_row_bytes = 80;
        assert_eq!(t.total_bytes(40), 8000);
    }
}
