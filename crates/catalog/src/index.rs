//! Index definitions.
//!
//! Indexes matter to the reproduction for two reasons: they expand the
//! optimizer's search space (index-scan and index-join alternatives are what
//! makes compilation memory grow with schema complexity — the paper notes
//! TPC-H has "similar numbers of indexes per table" to SALES), and they give
//! the cost model cheaper access paths.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A (possibly composite) index over one table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index name, unique within the catalog.
    pub name: String,
    /// Columns in key order.
    pub key_columns: Vec<String>,
    /// Whether the key is unique.
    pub unique: bool,
    /// Whether this is the clustered (primary storage) index.
    pub clustered: bool,
}

impl IndexDef {
    /// A non-unique secondary index.
    pub fn secondary(name: impl Into<String>, key_columns: Vec<&str>) -> Self {
        IndexDef {
            name: name.into().to_ascii_lowercase(),
            key_columns: key_columns.iter().map(|c| c.to_ascii_lowercase()).collect(),
            unique: false,
            clustered: false,
        }
    }

    /// A unique clustered primary-key index.
    pub fn primary(name: impl Into<String>, key_columns: Vec<&str>) -> Self {
        IndexDef {
            name: name.into().to_ascii_lowercase(),
            key_columns: key_columns.iter().map(|c| c.to_ascii_lowercase()).collect(),
            unique: true,
            clustered: true,
        }
    }

    /// True when `column` is the leading key column (the index can seek on
    /// an equality or range predicate over it).
    pub fn covers_prefix(&self, column: &str) -> bool {
        self.key_columns
            .first()
            .map(|c| c == &column.to_ascii_lowercase())
            .unwrap_or(false)
    }
}

impl fmt::Display for IndexDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{} {}({})",
            if self.unique { "UNIQUE " } else { "" },
            if self.clustered { "CLUSTERED" } else { "INDEX" },
            self.name,
            self.key_columns.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_is_unique_and_clustered() {
        let idx = IndexDef::primary("pk_orders", vec!["O_OrderKey"]);
        assert!(idx.unique);
        assert!(idx.clustered);
        assert_eq!(idx.key_columns, vec!["o_orderkey"]);
    }

    #[test]
    fn secondary_is_neither() {
        let idx = IndexDef::secondary("ix_cust", vec!["o_custkey", "o_orderdate"]);
        assert!(!idx.unique);
        assert!(!idx.clustered);
        assert_eq!(idx.key_columns.len(), 2);
    }

    #[test]
    fn covers_prefix_checks_leading_column() {
        let idx = IndexDef::secondary("ix", vec!["a", "b"]);
        assert!(idx.covers_prefix("A"));
        assert!(!idx.covers_prefix("b"));
    }

    #[test]
    fn display_is_readable() {
        let idx = IndexDef::primary("pk", vec!["id"]);
        assert_eq!(idx.to_string(), "UNIQUE CLUSTERED pk(id)");
    }
}
