//! Table definitions.

use crate::column::ColumnDef;
use crate::index::IndexDef;
use crate::statistics::TableStatistics;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default page size used to convert table bytes into page counts for the
/// buffer-pool footprint model (8 KiB, as in SQL Server).
pub const PAGE_SIZE_BYTES: u64 = 8 * 1024;

/// A table: columns, indexes and full-scale statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDef {
    /// Table name, unique within the catalog (case-insensitive, stored
    /// lower-case).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Indexes on this table.
    pub indexes: Vec<IndexDef>,
    /// Full-scale statistics.
    pub statistics: TableStatistics,
}

impl TableDef {
    /// Create a table with the given columns and row count, no indexes and
    /// default (empty) column statistics.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>, row_count: u64) -> Self {
        TableDef {
            name: name.into().to_ascii_lowercase(),
            columns,
            indexes: Vec::new(),
            statistics: TableStatistics::new(row_count),
        }
    }

    /// Number of rows at full scale.
    pub fn row_count(&self) -> u64 {
        self.statistics.row_count
    }

    /// Find a column by name (case-insensitive).
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().find(|c| c.name == lower)
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Average row width in bytes, computed from the column types unless the
    /// statistics carry an explicit value.
    pub fn avg_row_bytes(&self) -> u32 {
        if self.statistics.avg_row_bytes > 0 {
            self.statistics.avg_row_bytes
        } else {
            // Row header overhead plus column widths.
            9 + self
                .columns
                .iter()
                .map(|c| c.avg_width_bytes())
                .sum::<u32>()
        }
    }

    /// Total size at full scale, in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.statistics.total_bytes(self.avg_row_bytes())
    }

    /// Total size at full scale, in 8 KiB pages (rounded up, at least 1).
    pub fn total_pages(&self) -> u64 {
        self.total_bytes().div_ceil(PAGE_SIZE_BYTES).max(1)
    }

    /// Indexes whose leading key column is `column`.
    pub fn indexes_on(&self, column: &str) -> Vec<&IndexDef> {
        self.indexes
            .iter()
            .filter(|ix| ix.covers_prefix(column))
            .collect()
    }

    /// Number of alternatives an optimizer has for accessing this table
    /// (heap/clustered scan plus each index). Used by tests asserting the
    /// search-space size scales with schema complexity.
    pub fn access_path_count(&self) -> usize {
        1 + self.indexes.len()
    }
}

impl fmt::Display for TableDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE {} ({} rows)", self.name, self.row_count())?;
        for c in &self.columns {
            writeln!(f, "  {c}")?;
        }
        for ix in &self.indexes {
            writeln!(f, "  {ix}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn orders() -> TableDef {
        let mut t = TableDef::new(
            "Orders",
            vec![
                ColumnDef::new("o_orderkey", DataType::BigInt),
                ColumnDef::new("o_custkey", DataType::BigInt),
                ColumnDef::nullable("o_comment", DataType::Varchar(80)),
            ],
            1_000_000,
        );
        t.indexes
            .push(IndexDef::primary("pk_orders", vec!["o_orderkey"]));
        t.indexes
            .push(IndexDef::secondary("ix_orders_cust", vec!["o_custkey"]));
        t
    }

    #[test]
    fn names_are_lowercased_and_lookups_case_insensitive() {
        let t = orders();
        assert_eq!(t.name, "orders");
        assert!(t.column("O_CUSTKEY").is_some());
        assert_eq!(t.column_index("o_comment"), Some(2));
        assert!(t.column("nope").is_none());
    }

    #[test]
    fn row_width_sums_columns_plus_header() {
        let t = orders();
        // 9 header + 8 + 8 + (40 + 1 null byte) = 66
        assert_eq!(t.avg_row_bytes(), 66);
        assert_eq!(t.total_bytes(), 66 * 1_000_000);
        assert!(t.total_pages() > 0);
    }

    #[test]
    fn statistics_width_overrides_computed() {
        let mut t = orders();
        t.statistics.avg_row_bytes = 100;
        assert_eq!(t.avg_row_bytes(), 100);
    }

    #[test]
    fn indexes_on_matches_leading_column() {
        let t = orders();
        assert_eq!(t.indexes_on("o_custkey").len(), 1);
        assert_eq!(t.indexes_on("o_comment").len(), 0);
        assert_eq!(t.access_path_count(), 3);
    }

    #[test]
    fn pages_round_up() {
        let t = TableDef::new("tiny", vec![ColumnDef::new("a", DataType::Int)], 1);
        assert_eq!(t.total_pages(), 1);
    }
}
