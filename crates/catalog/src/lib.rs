//! # throttledb-catalog
//!
//! Catalog substrate for the `throttledb` reproduction: table and column
//! definitions, indexes, per-table and per-column statistics, and builders
//! for the two schemas the paper's evaluation needs:
//!
//! * the **SALES** data-warehouse schema (§5.1): one large fact table
//!   (>400 million rows) and a constellation of dimension tables, totalling
//!   roughly 524 GB, and
//! * a **TPC-H-like** schema used as the "moderate compile memory" baseline.
//!
//! The catalog stores *statistics*, not data. The optimizer derives
//! cardinality estimates and the buffer-pool footprint model from these
//! statistics; the execution engine scales a small in-memory sample by them.
//! This is the substitution documented in `DESIGN.md`: compilation memory —
//! the paper's subject — depends on schema complexity and statistics, not on
//! the stored bytes themselves.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod column;
pub mod index;
pub mod schema;
pub mod statistics;
pub mod table;
pub mod types;
pub mod warehouse;

pub use builder::TableBuilder;
pub use column::ColumnDef;
pub use index::IndexDef;
pub use schema::Catalog;
pub use statistics::{ColumnStatistics, HistogramBucket, TableStatistics};
pub use table::TableDef;
pub use types::DataType;
pub use warehouse::{sales_schema, tpch_schema, SalesScale};
