//! A fluent builder for table definitions.
//!
//! The schema builders in [`crate::warehouse`] declare dozens of tables; the
//! builder keeps those declarations compact and fills in sensible column
//! statistics (dense keys, uniform attributes) automatically.

use crate::column::ColumnDef;
use crate::index::IndexDef;
use crate::statistics::{ColumnStatistics, TableStatistics};
use crate::table::TableDef;
use crate::types::DataType;

/// Builds a [`TableDef`] column by column.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    row_count: u64,
    columns: Vec<ColumnDef>,
    indexes: Vec<IndexDef>,
    stats: Vec<(String, ColumnStatistics)>,
}

impl TableBuilder {
    /// Start a table with the given name and full-scale row count.
    pub fn new(name: impl Into<String>, row_count: u64) -> Self {
        TableBuilder {
            name: name.into(),
            row_count,
            columns: Vec::new(),
            indexes: Vec::new(),
            stats: Vec::new(),
        }
    }

    /// A dense surrogate-key column (`0..row_count` distinct values) with a
    /// unique clustered primary-key index.
    pub fn key(mut self, name: &str) -> Self {
        self.columns.push(ColumnDef::new(name, DataType::BigInt));
        self.stats.push((
            name.to_string(),
            ColumnStatistics::key_column(self.row_count),
        ));
        self.indexes.push(IndexDef::primary(
            format!("pk_{}", self.name.to_ascii_lowercase()),
            vec![name],
        ));
        self
    }

    /// A foreign-key column referencing a dimension of `referenced_rows`
    /// rows, with a secondary index (the typical star-schema layout).
    pub fn foreign_key(mut self, name: &str, referenced_rows: u64) -> Self {
        self.columns.push(ColumnDef::new(name, DataType::BigInt));
        self.stats.push((
            name.to_string(),
            ColumnStatistics::key_column(referenced_rows),
        ));
        self.indexes.push(IndexDef::secondary(
            format!(
                "ix_{}_{}",
                self.name.to_ascii_lowercase(),
                name.to_ascii_lowercase()
            ),
            vec![name],
        ));
        self
    }

    /// A plain attribute column with `distinct` distinct values uniformly
    /// spread over `[0, distinct)`.
    pub fn attribute(mut self, name: &str, data_type: DataType, distinct: u64) -> Self {
        self.columns.push(ColumnDef::new(name, data_type));
        self.stats.push((
            name.to_string(),
            ColumnStatistics::uniform(distinct, 0.0, distinct.saturating_sub(1) as f64),
        ));
        self
    }

    /// A numeric measure column (e.g. sales amount) with many distinct
    /// values.
    pub fn measure(mut self, name: &str) -> Self {
        self.columns.push(ColumnDef::new(name, DataType::Decimal));
        self.stats.push((
            name.to_string(),
            ColumnStatistics::uniform(self.row_count.max(1000) / 10, 0.0, 1.0e6),
        ));
        self
    }

    /// A date column covering roughly `years` years of days.
    pub fn date(mut self, name: &str, years: u64) -> Self {
        let days = years * 365;
        self.columns.push(ColumnDef::new(name, DataType::Date));
        self.stats.push((
            name.to_string(),
            ColumnStatistics::uniform(days.max(1), 0.0, days.saturating_sub(1) as f64),
        ));
        self
    }

    /// Add an explicit secondary index.
    pub fn index(mut self, columns: Vec<&str>) -> Self {
        let idx_name = format!(
            "ix_{}_{}",
            self.name.to_ascii_lowercase(),
            columns.join("_").to_ascii_lowercase()
        );
        self.indexes.push(IndexDef::secondary(idx_name, columns));
        self
    }

    /// Finish building the table.
    pub fn build(self) -> TableDef {
        assert!(
            !self.columns.is_empty(),
            "a table needs at least one column"
        );
        let mut table = TableDef::new(self.name, self.columns, self.row_count);
        table.indexes = self.indexes;
        let mut stats = TableStatistics::new(self.row_count);
        for (name, column_stats) in self.stats {
            stats = stats.with_column(name, column_stats);
        }
        table.statistics = stats;
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_schema_fact_table_builds() {
        let fact = TableBuilder::new("fact_sales", 1_000_000)
            .key("sale_id")
            .foreign_key("product_id", 10_000)
            .foreign_key("store_id", 500)
            .date("sale_date", 5)
            .measure("amount")
            .attribute("quantity", DataType::Int, 100)
            .build();
        assert_eq!(fact.columns.len(), 6);
        assert_eq!(fact.row_count(), 1_000_000);
        // primary + 2 FK indexes
        assert_eq!(fact.indexes.len(), 3);
        assert_eq!(
            fact.statistics.column("sale_id").unwrap().distinct_values,
            1_000_000
        );
        assert_eq!(
            fact.statistics
                .column("product_id")
                .unwrap()
                .distinct_values,
            10_000
        );
    }

    #[test]
    fn explicit_index_is_added() {
        let t = TableBuilder::new("dim", 100)
            .key("id")
            .attribute("region", DataType::Varchar(20), 10)
            .index(vec!["region"])
            .build();
        assert_eq!(t.indexes.len(), 2);
        assert!(t.indexes_on("region").len() == 1);
    }

    #[test]
    fn date_statistics_cover_years() {
        let t = TableBuilder::new("d", 10).key("id").date("day", 2).build();
        let stats = t.statistics.column("day").unwrap();
        assert_eq!(stats.distinct_values, 730);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_table_rejected() {
        let _ = TableBuilder::new("empty", 0).build();
    }
}
