//! The catalog: a named collection of tables.

use crate::table::TableDef;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A database catalog holding table definitions and their statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    name: String,
    tables: BTreeMap<String, TableDef>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new(name: impl Into<String>) -> Self {
        Catalog {
            name: name.into(),
            tables: BTreeMap::new(),
        }
    }

    /// The catalog (database) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a table, replacing any previous definition with the same name.
    pub fn add_table(&mut self, table: TableDef) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Look up a table by name (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&TableDef> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// True when the table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Iterate all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &TableDef> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total size of the database at full scale, in bytes. The SALES catalog
    /// reports ≈524 GB here, matching the paper's data-mart snapshot.
    pub fn total_bytes(&self) -> u64 {
        self.tables.values().map(|t| t.total_bytes()).sum()
    }

    /// Total size in 8 KiB pages.
    pub fn total_pages(&self) -> u64 {
        self.tables.values().map(|t| t.total_pages()).sum()
    }

    /// Total number of indexes across all tables.
    pub fn index_count(&self) -> usize {
        self.tables.values().map(|t| t.indexes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnDef;
    use crate::types::DataType;

    fn simple_catalog() -> Catalog {
        let mut cat = Catalog::new("test");
        cat.add_table(TableDef::new(
            "T1",
            vec![ColumnDef::new("a", DataType::Int)],
            100,
        ));
        cat.add_table(TableDef::new(
            "t2",
            vec![ColumnDef::new("b", DataType::BigInt)],
            200,
        ));
        cat
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let cat = simple_catalog();
        assert!(cat.table("t1").is_some());
        assert!(cat.table("T1").is_some());
        assert!(cat.contains("T2"));
        assert!(!cat.contains("t3"));
        assert_eq!(cat.table_count(), 2);
    }

    #[test]
    fn add_table_replaces_existing() {
        let mut cat = simple_catalog();
        cat.add_table(TableDef::new(
            "t1",
            vec![ColumnDef::new("a", DataType::Int)],
            999,
        ));
        assert_eq!(cat.table("t1").unwrap().row_count(), 999);
        assert_eq!(cat.table_count(), 2);
    }

    #[test]
    fn totals_aggregate_tables() {
        let cat = simple_catalog();
        let expected: u64 = cat.tables().map(|t| t.total_bytes()).sum();
        assert_eq!(cat.total_bytes(), expected);
        assert!(cat.total_pages() >= 2);
        assert_eq!(cat.index_count(), 0);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let cat = simple_catalog();
        let names: Vec<_> = cat.tables().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["t1", "t2"]);
    }
}
