//! # throttledb-plancache
//!
//! The compiled-plan cache. In the paper's problem statement, excessive
//! compilation memory "causes excessive eviction of compiled plans from the
//! plan cache (forcing additional compilation CPU load in the future)" — so
//! the cache matters twice: it is a memory consumer the broker can squeeze,
//! and its hit rate determines how many compilations happen at all. The
//! SALES workload deliberately defeats it by uniquifying every query (§5.1).
//!
//! The eviction policy is cost-based: each entry carries the (estimated)
//! cost of recompiling it, and eviction removes the entries with the lowest
//! `recompile_cost / size` value first — cheap-to-rebuild, memory-hungry
//! plans go first, exactly the trade-off a production cache makes.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;
use throttledb_membroker::Clerk;

/// A cached plan entry's metadata (the engine stores its plan separately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry<P> {
    /// The cached payload (a compiled plan).
    pub plan: P,
    /// Size of the cached plan in bytes.
    pub size_bytes: u64,
    /// Estimated cost (seconds) to recompile if evicted.
    pub recompile_cost: f64,
    /// Number of times this entry has been reused.
    pub hits: u64,
    /// Logical insertion/last-touch tick (for LRU tie-breaks).
    last_touch: u64,
}

/// Counters describing cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCacheStats {
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room or on shrink requests.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
}

/// A size-bounded plan cache with cost-based eviction.
///
/// Generic over the key type `K` (default `String`, the classic
/// normalized-query-text key). The engine keys its cache with a compact
/// 16-byte digest type instead, so the admission hot path never clones
/// query text — see `throttledb-engine`'s `PlanKey`.
#[derive(Debug)]
pub struct PlanCache<P, K = String> {
    capacity_bytes: Mutex<u64>,
    inner: Mutex<Inner<P, K>>,
    clerk: Option<Clerk>,
}

#[derive(Debug)]
struct Inner<P, K> {
    entries: HashMap<K, CacheEntry<P>>,
    used_bytes: u64,
    tick: u64,
    stats: PlanCacheStats,
}

impl<P: Clone, K: Eq + Hash + Clone> PlanCache<P, K> {
    /// A cache bounded by `capacity_bytes`, optionally reporting memory to a
    /// broker clerk.
    pub fn new(capacity_bytes: u64, clerk: Option<Clerk>) -> Self {
        PlanCache {
            capacity_bytes: Mutex::new(capacity_bytes),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                used_bytes: 0,
                tick: 0,
                stats: PlanCacheStats::default(),
            }),
            clerk,
        }
    }

    /// The configured capacity.
    pub fn capacity_bytes(&self) -> u64 {
        *self.capacity_bytes.lock()
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used_bytes
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache behaviour counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.inner.lock().stats
    }

    /// Look up a plan by its key (e.g. normalized query text or a digest).
    pub fn get<Q>(&self, key: &Q) -> Option<P>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(e) => {
                e.hits += 1;
                e.last_touch = tick;
                let plan = e.plan.clone();
                inner.stats.hits += 1;
                Some(plan)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a plan. Evicts lower-value entries as needed; if the plan is
    /// larger than the whole cache it is simply not cached.
    pub fn insert(&self, key: impl Into<K>, plan: P, size_bytes: u64, recompile_cost: f64) {
        let capacity = *self.capacity_bytes.lock();
        if size_bytes > capacity {
            return;
        }
        let key = key.into();
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        // Replace an existing entry outright.
        if let Some(old) = inner.entries.remove(&key) {
            inner.used_bytes -= old.size_bytes;
            if let Some(c) = &self.clerk {
                c.free(old.size_bytes);
            }
        }
        self.evict_until(&mut inner, capacity.saturating_sub(size_bytes));
        inner.entries.insert(
            key,
            CacheEntry {
                plan,
                size_bytes,
                recompile_cost,
                hits: 0,
                last_touch: tick,
            },
        );
        inner.used_bytes += size_bytes;
        inner.stats.insertions += 1;
        if let Some(c) = &self.clerk {
            c.allocate(size_bytes);
        }
    }

    /// Respond to memory pressure: shrink the cache to at most
    /// `target_bytes`, evicting the lowest-value entries. Returns the number
    /// of bytes released.
    pub fn shrink_to(&self, target_bytes: u64) -> u64 {
        let mut inner = self.inner.lock();
        let before = inner.used_bytes;
        self.evict_until(&mut inner, target_bytes);
        before - inner.used_bytes
    }

    /// Evict entries (lowest `value = recompile_cost·(hits+1) / size`, then
    /// least recently touched) until `used_bytes <= limit`.
    fn evict_until(&self, inner: &mut Inner<P, K>, limit: u64) {
        while inner.used_bytes > limit {
            let victim = inner
                .entries
                .iter()
                .min_by(|(_, a), (_, b)| {
                    let va = a.recompile_cost * (a.hits + 1) as f64 / a.size_bytes.max(1) as f64;
                    let vb = b.recompile_cost * (b.hits + 1) as f64 / b.size_bytes.max(1) as f64;
                    va.partial_cmp(&vb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.last_touch.cmp(&b.last_touch))
                })
                .map(|(k, _)| k.clone());
            let Some(key) = victim else { break };
            if let Some(e) = inner.entries.remove(&key) {
                inner.used_bytes -= e.size_bytes;
                inner.stats.evictions += 1;
                if let Some(c) = &self.clerk {
                    c.free(e.size_bytes);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use throttledb_membroker::{BrokerConfig, MemoryBroker, SubcomponentKind};

    const MB: u64 = 1 << 20;

    #[test]
    fn hit_and_miss_accounting() {
        let cache: PlanCache<&'static str> = PlanCache::new(10 * MB, None);
        assert!(cache.get("q1").is_none());
        cache.insert("q1", "plan1", MB, 5.0);
        assert_eq!(cache.get("q1"), Some("plan1"));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn capacity_is_enforced_via_eviction() {
        let cache: PlanCache<u32> = PlanCache::new(5 * MB, None);
        for i in 0..10u32 {
            cache.insert(format!("q{i}"), i, MB, 1.0);
        }
        assert!(cache.used_bytes() <= 5 * MB);
        assert!(cache.len() <= 5);
        assert!(cache.stats().evictions >= 5);
    }

    #[test]
    fn expensive_to_recompile_plans_are_kept() {
        let cache: PlanCache<&'static str> = PlanCache::new(3 * MB, None);
        cache.insert("cheap", "a", MB, 0.1);
        cache.insert("pricey", "b", MB, 100.0);
        cache.insert("newcomer1", "c", MB, 1.0);
        cache.insert("newcomer2", "d", MB, 1.0);
        // The cheap-to-recompile plan should be the one that went.
        assert!(cache.get("pricey").is_some());
        assert!(cache.get("cheap").is_none());
    }

    #[test]
    fn frequently_used_plans_are_kept() {
        let cache: PlanCache<&'static str> = PlanCache::new(3 * MB, None);
        cache.insert("hot", "a", MB, 1.0);
        for _ in 0..50 {
            cache.get("hot");
        }
        cache.insert("cold", "b", MB, 1.0);
        cache.insert("x1", "c", MB, 1.0);
        cache.insert("x2", "d", MB, 1.0);
        assert!(
            cache.get("hot").is_some(),
            "hot entry must survive eviction"
        );
    }

    #[test]
    fn shrink_to_responds_to_pressure() {
        let broker = MemoryBroker::new(BrokerConfig::with_total_memory(1 << 30));
        let clerk = broker.register(SubcomponentKind::PlanCache);
        let cache: PlanCache<u32> = PlanCache::new(100 * MB, Some(clerk.clone()));
        for i in 0..20u32 {
            cache.insert(format!("q{i}"), i, MB, 1.0);
        }
        assert_eq!(clerk.used_bytes(), 20 * MB);
        let released = cache.shrink_to(5 * MB);
        assert_eq!(released, 15 * MB);
        assert_eq!(cache.used_bytes(), 5 * MB);
        assert_eq!(clerk.used_bytes(), 5 * MB);
    }

    #[test]
    fn oversized_plans_are_not_cached() {
        let cache: PlanCache<&'static str> = PlanCache::new(MB, None);
        cache.insert("huge", "x", 10 * MB, 100.0);
        assert!(cache.is_empty());
    }

    #[test]
    fn replacing_a_key_does_not_leak_bytes() {
        let cache: PlanCache<u32> = PlanCache::new(10 * MB, None);
        cache.insert("q", 1, 2 * MB, 1.0);
        cache.insert("q", 2, 3 * MB, 1.0);
        assert_eq!(cache.used_bytes(), 3 * MB);
        assert_eq!(cache.get("q"), Some(2));
        assert_eq!(cache.len(), 1);
    }
}
