//! Satellite tests for the gateway ladder state machine: FIFO wait-queue
//! ordering, the timeout-versus-OOM error split (§4: a blocked compilation
//! that waits too long fails with a *timeout* error, while predicted memory
//! exhaustion yields a best-effort plan, never an out-of-memory failure),
//! and the release-in-reverse-order invariant of `finish_task`.

use throttledb_core::{
    Gateway, GatewayAdmission, GatewayLadder, LadderDecision, TaskId, ThrottleConfig,
};
use throttledb_sim::SimTime;

const MB: u64 = 1 << 20;

fn now(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

/// 1-CPU ladder: gateway capacities 4 / 1 / 1 — the smallest configuration
/// where every queueing behaviour is reachable with a handful of tasks.
fn ladder() -> GatewayLadder {
    GatewayLadder::new(ThrottleConfig::for_cpus(1))
}

#[test]
fn waiters_resume_in_fifo_order_across_successive_releases() {
    let mut g = Gateway::new(1);
    let ids: Vec<TaskId> = (0..6).map(TaskId).collect();
    assert_eq!(g.request(ids[0]), GatewayAdmission::Acquired);
    for id in &ids[1..] {
        assert_eq!(g.request(*id), GatewayAdmission::Queued);
    }
    // Drain: each release must admit exactly the longest-queued waiter.
    let mut resumed = Vec::new();
    let mut current = ids[0];
    while g.in_use() > 0 {
        let admitted = g.release(current);
        assert!(admitted.len() <= 1);
        if let Some(next) = admitted.first() {
            resumed.push(*next);
            current = *next;
        } else {
            break;
        }
    }
    assert_eq!(
        resumed,
        ids[1..].to_vec(),
        "strict FIFO across the whole queue"
    );
}

#[test]
fn ladder_admits_small_gateway_waiters_in_arrival_order() {
    let mut l = ladder();
    // Fill the small gateway (capacity 4 on 1 CPU).
    let holders: Vec<TaskId> = (0..4).map(|_| l.begin_task()).collect();
    for t in &holders {
        assert_eq!(l.report_memory(*t, 5 * MB, now(0)), LadderDecision::Proceed);
    }
    // Three more queue up behind it, in order.
    let w1 = l.begin_task();
    let w2 = l.begin_task();
    let w3 = l.begin_task();
    for w in [w1, w2, w3] {
        assert!(matches!(
            l.report_memory(w, 5 * MB, now(1)),
            LadderDecision::Wait { level: 0, .. }
        ));
    }
    assert_eq!(l.waiting_at(0), 3);
    // Releases admit w1, then w2, then w3 — never out of order.
    assert_eq!(l.finish_task(holders[0], now(2)), vec![w1]);
    assert_eq!(l.finish_task(holders[1], now(3)), vec![w2]);
    assert_eq!(l.finish_task(holders[2], now(4)), vec![w3]);
    assert_eq!(l.waiting_at(0), 0);
}

#[test]
fn timed_out_wait_is_a_timeout_not_an_oom_and_frees_the_queue_slot() {
    let mut l = ladder();
    let holder = l.begin_task();
    assert_eq!(
        l.report_memory(holder, 30 * MB, now(0)),
        LadderDecision::Proceed
    );
    let blocked = l.begin_task();
    let LadderDecision::Wait { level, timeout } = l.report_memory(blocked, 30 * MB, now(0)) else {
        panic!("second medium compilation must wait");
    };
    assert_eq!(level, 1);
    // The caller observes the timeout expire and reports it.
    let deadline = now(0) + timeout;
    l.timeout_task(blocked, deadline);
    l.finish_task(blocked, deadline);
    let stats = l.stats();
    assert_eq!(stats.timeouts, 1, "counted as a timeout");
    assert_eq!(stats.best_effort_completions, 0, "not as memory exhaustion");
    assert_eq!(l.waiting_at(1), 0, "queue slot reclaimed");
    // The holder is unaffected and the next waiter in line is not blocked by
    // the corpse of the timed-out task.
    let next = l.begin_task();
    assert!(matches!(
        l.report_memory(next, 30 * MB, now(10)),
        LadderDecision::Wait { level: 1, .. }
    ));
    assert_eq!(l.finish_task(holder, now(11)), vec![next]);
}

#[test]
fn predicted_exhaustion_is_best_effort_not_a_failure() {
    let mut l = ladder();
    l.set_compilation_target(Some(40 * MB));
    let t = l.begin_task();
    assert_eq!(l.report_memory(t, 10 * MB, now(0)), LadderDecision::Proceed);
    // Crossing the best-effort limit asks the optimizer for its best plan so
    // far — the §4.1 alternative to returning an out-of-memory error.
    assert_eq!(
        l.report_memory(t, 30 * MB, now(1)),
        LadderDecision::FinishBestEffort
    );
    l.finish_task(t, now(2));
    let stats = l.stats();
    assert_eq!(stats.best_effort_completions, 1);
    assert_eq!(stats.timeouts, 0);
    assert_eq!(stats.compilations_finished, 1);
}

#[test]
fn finish_releases_every_level_and_admits_waiters_at_each() {
    let mut l = ladder();
    // `big` climbs all three gateways.
    let big = l.begin_task();
    assert_eq!(
        l.report_memory(big, 200 * MB, now(0)),
        LadderDecision::Proceed
    );
    assert_eq!(l.holders_at(0), 1);
    assert_eq!(l.holders_at(1), 1);
    assert_eq!(l.holders_at(2), 1);
    // `mid` holds the small gateway and waits at the medium one.
    let mid = l.begin_task();
    assert!(matches!(
        l.report_memory(mid, 30 * MB, now(1)),
        LadderDecision::Wait { level: 1, .. }
    ));
    // Fill the rest of the small gateway and queue one more behind it.
    let fillers: Vec<TaskId> = (0..2).map(|_| l.begin_task()).collect();
    for f in &fillers {
        assert_eq!(l.report_memory(*f, 5 * MB, now(2)), LadderDecision::Proceed);
    }
    let small_waiter = l.begin_task();
    assert!(matches!(
        l.report_memory(small_waiter, 5 * MB, now(3)),
        LadderDecision::Wait { level: 0, .. }
    ));
    // One finish releases big's three gateways in reverse order; the medium
    // waiter and the small waiter are both admitted by the same call.
    let resumed = l.finish_task(big, now(4));
    assert_eq!(resumed.len(), 2, "one waiter per freed level: {resumed:?}");
    assert!(resumed.contains(&mid));
    assert!(resumed.contains(&small_waiter));
    // Resumed tasks re-report and proceed.
    assert_eq!(
        l.report_memory(mid, 30 * MB, now(4)),
        LadderDecision::Proceed
    );
    assert_eq!(
        l.report_memory(small_waiter, 5 * MB, now(4)),
        LadderDecision::Proceed
    );
}

#[test]
fn gateways_are_fully_released_after_every_lifecycle_path() {
    // Success, timeout and best-effort terminations must all end with zero
    // holders at every level — the reverse-order release may not leak.
    for scenario in ["success", "timeout", "best_effort"] {
        let mut l = ladder();
        match scenario {
            "success" => {
                let t = l.begin_task();
                l.report_memory(t, 200 * MB, now(0));
                l.finish_task(t, now(1));
            }
            "timeout" => {
                let a = l.begin_task();
                let b = l.begin_task();
                l.report_memory(a, 30 * MB, now(0));
                l.report_memory(b, 30 * MB, now(0));
                l.timeout_task(b, now(301));
                l.finish_task(b, now(301));
                l.finish_task(a, now(302));
            }
            _ => {
                l.set_compilation_target(Some(40 * MB));
                let t = l.begin_task();
                l.report_memory(t, 30 * MB, now(0));
                l.finish_task(t, now(1));
            }
        }
        for level in 0..3 {
            assert_eq!(
                l.holders_at(level),
                0,
                "{scenario}: level {level} leaked a holder"
            );
            assert_eq!(
                l.waiting_at(level),
                0,
                "{scenario}: level {level} leaked a waiter"
            );
        }
        assert_eq!(l.active_tasks(), 0, "{scenario}: task table must drain");
    }
}

#[test]
fn held_levels_are_always_a_contiguous_prefix() {
    // A task holding gateway k must hold every gateway below k (monitors are
    // acquired in order and released in reverse), so the per-level holder
    // counts are non-increasing with level whenever tasks climb one at a time.
    let mut l = ladder();
    let sizes = [1, 5, 30, 200, 5, 30];
    let tasks: Vec<TaskId> = sizes.iter().map(|_| l.begin_task()).collect();
    for (t, size) in tasks.iter().zip(sizes) {
        let _ = l.report_memory(*t, size * MB, now(0));
        assert!(
            l.holders_at(0) >= l.holders_at(1) && l.holders_at(1) >= l.holders_at(2),
            "holder counts must be monotone across levels: {} {} {}",
            l.holders_at(0),
            l.holders_at(1),
            l.holders_at(2)
        );
    }
}
