//! # throttledb-core
//!
//! The paper's primary contribution: **query compilation throttling** via a
//! ladder of memory monitors ("gateways"), with the two §4.1 extensions —
//! dynamic thresholds derived from the Memory Broker's compilation target,
//! and best-effort plans instead of out-of-memory failures.
//!
//! ## The mechanism (§4 of the paper)
//!
//! A compilation is blocked not at fixed points in the compilation process
//! but *as a function of the memory it has allocated*. The ladder has three
//! monitors with progressively higher memory thresholds and progressively
//! lower concurrency limits:
//!
//! | monitor | acquired when compile memory exceeds | concurrent holders |
//! |---------|--------------------------------------|--------------------|
//! | small   | a per-architecture floor (small diagnostic queries never reach it) | 4 × CPUs |
//! | medium  | the medium threshold (dynamic under pressure) | 1 × CPU |
//! | big     | the big threshold (dynamic under pressure) | 1 (serialized) |
//!
//! Monitors are acquired in order as a compilation grows and released in
//! reverse order when it completes. A compilation that cannot acquire the
//! next monitor waits; if it waits longer than that monitor's timeout, it is
//! aborted with a *timeout* error (not an out-of-memory error). Preference
//! goes to compilations that have already made the most progress — later
//! monitors have longer timeouts and fewer competitors.
//!
//! ## Crate layout
//!
//! * [`config`] — thresholds, concurrency limits, timeouts, the per-CPU
//!   scaling rules and the `F` fractions for dynamic thresholds.
//! * [`gateway`] — a single admission gate: a counting semaphore expressed
//!   as an explicit, non-blocking state machine with a FIFO wait queue.
//! * [`ladder`] — the ordered set of gateways plus per-task state: decides,
//!   on every memory report, whether a compilation proceeds or waits.
//! * [`dynamic`] — §4.1 extension 1: thresholds recomputed from the broker's
//!   compilation-memory target (`threshold = target · F / S`).
//! * [`threaded`] — a real, blocking deployment of the ladder for
//!   multi-threaded embedders: implements the optimizer's
//!   [`MemoryGovernor`](throttledb_optimizer::MemoryGovernor) hook via
//!   condition variables. (The discrete-event engine drives the same
//!   [`ladder`] state machine directly.)
//! * [`stats`] — counters for every figure: waits, wait time, timeouts,
//!   exemptions, best-effort completions.
//!
//! ## Quick example (threaded deployment)
//!
//! ```
//! use std::sync::Arc;
//! use throttledb_core::{ThreadedThrottle, ThrottleConfig};
//! use throttledb_membroker::{MemoryBroker, BrokerConfig, SubcomponentKind};
//! use throttledb_optimizer::Optimizer;
//! use throttledb_catalog::{tpch_schema};
//! use throttledb_sqlparse::parse;
//!
//! let broker = MemoryBroker::new(BrokerConfig::paper_machine());
//! let throttle = Arc::new(ThreadedThrottle::new(ThrottleConfig::for_cpus(8), broker.clone()));
//! let catalog = tpch_schema(1.0);
//! let optimizer = Optimizer::new(&catalog);
//!
//! let stmt = parse("SELECT COUNT(*) FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey").unwrap();
//! let clerk = broker.register(SubcomponentKind::Compilation);
//! let governor = throttle.governor();
//! let outcome = optimizer.optimize_with_governor(&stmt, governor, Some(clerk)).unwrap();
//! assert!(outcome.plan.join_count() > 0);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod dynamic;
pub mod gateway;
pub mod ladder;
pub mod stats;
pub mod threaded;

pub use config::{Concurrency, MonitorConfig, ThrottleConfig};
pub use dynamic::DynamicThresholds;
pub use gateway::{Gateway, GatewayAdmission};
pub use ladder::{GatewayLadder, LadderDecision, TaskId};
pub use stats::ThrottleStats;
pub use threaded::ThreadedThrottle;
