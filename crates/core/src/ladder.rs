//! The gateway ladder: the throttling policy itself.
//!
//! The ladder is a pure, non-blocking state machine. Callers report a
//! compilation's current memory; the ladder answers *proceed*, *wait at
//! gateway k (with this timeout)*, or *finish with the best plan so far*.
//! How the wait is realised — a blocked thread
//! ([`crate::threaded::ThreadedThrottle`]) or a virtual-time event in the
//! discrete-event engine — is the caller's business, which is what lets the
//! figure-scale experiments and the real threaded deployment share exactly
//! the same policy code.

use crate::config::ThrottleConfig;
use crate::dynamic::DynamicThresholds;
use crate::gateway::{Gateway, GatewayAdmission};
use crate::stats::ThrottleStats;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use throttledb_sim::{SimDuration, SimTime};

/// Identifies one compilation task registered with the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

/// The ladder's answer to a memory report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderDecision {
    /// Keep compiling.
    Proceed,
    /// The compilation must wait for gateway `level`; if it is still waiting
    /// after `timeout` it should be aborted with a timeout error.
    Wait {
        /// Gateway level being waited for (0-based).
        level: usize,
        /// That gateway's timeout.
        timeout: SimDuration,
    },
    /// The compilation should stop exploring and return the best plan found
    /// so far (§4.1: predicted memory exhaustion).
    FinishBestEffort,
}

impl LadderDecision {
    /// Translate into the resource-governor layer's common
    /// [`AdmissionDecision`](throttledb_governor::AdmissionDecision)
    /// vocabulary: *proceed* is a (single-slot) admission, *wait* carries an
    /// absolute deadline derived from the gateway timeout, and *finish
    /// best-effort* is a degraded admission — the compilation continues, but
    /// with reduced service.
    pub fn admission(self, now: SimTime) -> throttledb_governor::AdmissionDecision {
        match self {
            LadderDecision::Proceed => throttledb_governor::AdmissionDecision::Admit { units: 1 },
            LadderDecision::Wait { timeout, .. } => throttledb_governor::AdmissionDecision::Wait {
                deadline: now.saturating_add(timeout),
            },
            LadderDecision::FinishBestEffort => {
                throttledb_governor::AdmissionDecision::Degrade { units: 1 }
            }
        }
    }
}

impl From<LadderDecision> for throttledb_governor::PolicyDecision {
    fn from(d: LadderDecision) -> Self {
        match d {
            LadderDecision::Proceed => throttledb_governor::PolicyDecision::Proceed,
            LadderDecision::Wait { level, timeout } => {
                throttledb_governor::PolicyDecision::Wait { level, timeout }
            }
            LadderDecision::FinishBestEffort => {
                throttledb_governor::PolicyDecision::FinishBestEffort
            }
        }
    }
}

#[derive(Debug, Clone, Default)]
struct TaskState {
    bytes: u64,
    /// Gateways `0..held` are currently held.
    held: usize,
    /// Level currently queued at, if any.
    waiting_at: Option<usize>,
    /// When the current wait started.
    wait_started: Option<SimTime>,
    /// Set once the task has been told to finish best-effort.
    best_effort: bool,
}

/// The ordered set of memory-monitor gateways plus per-task state.
#[derive(Debug)]
pub struct GatewayLadder {
    config: ThrottleConfig,
    gateways: Vec<Gateway>,
    tasks: HashMap<TaskId, TaskState>,
    compilation_target: Option<u64>,
    stats: ThrottleStats,
    next_task: u64,
    /// Scratch buffer bridging `finish_task_into`'s [`TaskId`] output to
    /// the governor [`Policy`](throttledb_governor::Policy) trait's bare
    /// `u64` ids without allocating per release.
    policy_scratch: Vec<TaskId>,
}

impl GatewayLadder {
    /// Build a ladder from a configuration.
    pub fn new(config: ThrottleConfig) -> Self {
        config.validate();
        let gateways = config
            .monitors
            .iter()
            .map(|m| Gateway::new(m.concurrency.resolve(config.cpus)))
            .collect();
        let stats = ThrottleStats::new(config.monitor_count());
        GatewayLadder {
            config,
            gateways,
            tasks: HashMap::new(),
            compilation_target: None,
            stats,
            next_task: 0,
            policy_scratch: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ThrottleConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ThrottleStats {
        &self.stats
    }

    /// Number of live (registered, unfinished) compilations.
    pub fn active_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of holders of gateway `level`.
    pub fn holders_at(&self, level: usize) -> u32 {
        self.gateways[level].in_use()
    }

    /// Number of compilations queued at gateway `level`.
    pub fn waiting_at(&self, level: usize) -> usize {
        self.gateways[level].queued()
    }

    /// Install (or clear) the broker's compilation-memory target used by the
    /// dynamic thresholds. The engine refreshes this after every broker
    /// recalculation.
    pub fn set_compilation_target(&mut self, target: Option<u64>) {
        self.compilation_target = target;
    }

    /// The currently effective thresholds (static, or dynamic under a target).
    pub fn effective_thresholds(&self) -> Vec<u64> {
        DynamicThresholds::effective(
            &self.config,
            self.compilation_target,
            &self.category_counts(),
        )
    }

    /// Number of active compilations per category (holding exactly `k`
    /// gateways).
    pub fn category_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.config.monitor_count() + 1];
        for t in self.tasks.values() {
            counts[t.held] += 1;
        }
        counts
    }

    /// Register a new compilation and return its task id.
    pub fn begin_task(&mut self) -> TaskId {
        let id = TaskId(self.next_task);
        self.next_task += 1;
        self.tasks.insert(id, TaskState::default());
        self.stats.compilations_started += 1;
        id
    }

    /// Report the compilation's current allocated bytes and get a decision.
    ///
    /// Callers must re-invoke this after being resumed from a wait (the
    /// ladder may require the next gateway immediately).
    pub fn report_memory(&mut self, task: TaskId, bytes: u64, now: SimTime) -> LadderDecision {
        if !self.config.enabled {
            return LadderDecision::Proceed;
        }
        let thresholds = self.effective_thresholds();
        let Some(state) = self.tasks.get_mut(&task) else {
            // Unknown task: treat as unthrottled rather than panic, matching
            // the robustness stance of a production gate.
            return LadderDecision::Proceed;
        };
        state.bytes = bytes;

        // Small diagnostic queries never touch the ladder.
        if bytes <= self.config.exempt_bytes {
            return LadderDecision::Proceed;
        }

        // §4.1 extension 2: predicted memory exhaustion -> best-effort plan.
        if self.config.best_effort_plans && !state.best_effort {
            if let Some(target) = self.compilation_target {
                let limit = (target as f64 * self.config.best_effort_fraction) as u64;
                if bytes > limit.max(self.config.monitors[0].threshold_bytes) {
                    state.best_effort = true;
                    self.stats.best_effort_completions += 1;
                    return LadderDecision::FinishBestEffort;
                }
            }
        }

        // How many gateways should this compilation hold now?
        let required = thresholds.iter().filter(|t| bytes > **t).count();

        // Climb the ladder one gateway at a time.
        while {
            let held = self.tasks[&task].held;
            held < required
        } {
            let level = self.tasks[&task].held;
            let deadline = now.saturating_add(self.config.monitors[level].timeout);
            match self.gateways[level].request_at(task, now, deadline) {
                GatewayAdmission::Acquired | GatewayAdmission::AlreadyHeld => {
                    let state = self.tasks.get_mut(&task).expect("task exists");
                    state.held = level + 1;
                    state.waiting_at = None;
                    state.wait_started = None;
                    self.stats.acquisitions[level] += 1;
                }
                GatewayAdmission::Queued => {
                    let state = self.tasks.get_mut(&task).expect("task exists");
                    if state.waiting_at != Some(level) {
                        state.waiting_at = Some(level);
                        state.wait_started = Some(now);
                        self.stats.waits[level] += 1;
                    }
                    return LadderDecision::Wait {
                        level,
                        timeout: self.config.monitors[level].timeout,
                    };
                }
            }
        }
        LadderDecision::Proceed
    }

    /// A waiting compilation gave up (its gateway timeout expired). The
    /// caller should abort the compilation and then call
    /// [`GatewayLadder::finish_task`] to release whatever it already held.
    pub fn timeout_task(&mut self, task: TaskId, now: SimTime) {
        if let Some(state) = self.tasks.get_mut(&task) {
            if let Some(level) = state.waiting_at.take() {
                self.gateways[level].cancel_wait(task);
                if let Some(started) = state.wait_started.take() {
                    self.stats.record_wait(level, now.saturating_since(started));
                }
                self.stats.timeouts += 1;
            }
        }
    }

    /// The compilation finished (successfully, best-effort, aborted or timed
    /// out): release every gateway it holds, in reverse order, and drop it.
    ///
    /// Returns the tasks that were admitted to a gateway as a result — the
    /// caller must resume them (unblock the thread / schedule the event) and
    /// have them re-report their memory.
    pub fn finish_task(&mut self, task: TaskId, now: SimTime) -> Vec<TaskId> {
        let mut admitted = Vec::new();
        self.finish_task_into(task, now, &mut admitted);
        admitted
    }

    /// Allocation-free variant of [`GatewayLadder::finish_task`]: admitted
    /// tasks are appended to `out` (existing contents untouched), so the
    /// engine can recycle one scratch buffer across every release instead
    /// of allocating a vector per completed query.
    pub fn finish_task_into(&mut self, task: TaskId, now: SimTime, out: &mut Vec<TaskId>) {
        let Some(state) = self.tasks.remove(&task) else {
            return;
        };
        self.stats.compilations_finished += 1;
        if state.bytes <= self.config.exempt_bytes {
            self.stats.exempt_compilations += 1;
        }
        // If it was still queued somewhere, leave the queue.
        if let Some(level) = state.waiting_at {
            self.gateways[level].cancel_wait(task);
        }
        // Release held gateways in reverse acquisition order.
        let first_admitted = out.len();
        for level in (0..state.held).rev() {
            self.gateways[level].release_into(task, out);
        }
        // Update the state of every newly admitted task.
        for &resumed in &out[first_admitted..] {
            if let Some(s) = self.tasks.get_mut(&resumed) {
                let level = s.waiting_at.take().unwrap_or(s.held);
                if let Some(started) = s.wait_started.take() {
                    self.stats.record_wait(level, now.saturating_since(started));
                }
                s.held = s.held.max(level + 1);
                self.stats.acquisitions[level] += 1;
            }
        }
    }
}

/// The paper's ladder as a pluggable [`Policy`](throttledb_governor::Policy):
/// the baseline every rival policy is measured against. Each trait call maps
/// 1:1 onto the corresponding inherent method (with bare `u64` ids wrapped
/// into [`TaskId`]), so a ladder driven through the trait behaves — and
/// traces — byte-identically to one driven directly.
impl throttledb_governor::Policy for GatewayLadder {
    fn name(&self) -> &'static str {
        "ladder"
    }

    fn begin(&mut self) -> u64 {
        self.begin_task().0
    }

    fn report(
        &mut self,
        task: u64,
        bytes: u64,
        _signals: &throttledb_governor::PolicySignals,
        now: SimTime,
    ) -> throttledb_governor::PolicyDecision {
        self.report_memory(TaskId(task), bytes, now).into()
    }

    fn timeout(&mut self, task: u64, now: SimTime) {
        self.timeout_task(TaskId(task), now);
    }

    fn finish_into(&mut self, task: u64, now: SimTime, resumed: &mut Vec<u64>) {
        let mut scratch = std::mem::take(&mut self.policy_scratch);
        scratch.clear();
        self.finish_task_into(TaskId(task), now, &mut scratch);
        resumed.extend(scratch.iter().map(|t| t.0));
        self.policy_scratch = scratch;
    }

    fn tick(
        &mut self,
        _now: SimTime,
        compile_target: Option<u64>,
        _pressure: f64,
        _resumed: &mut Vec<u64>,
    ) {
        self.set_compilation_target(compile_target);
    }

    fn stats(&self) -> &ThrottleStats {
        &self.stats
    }

    fn active(&self) -> usize {
        self.tasks.len()
    }

    fn waiting(&self) -> usize {
        self.gateways.iter().map(|g| g.queued()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Concurrency;

    const MB: u64 = 1 << 20;

    /// A small ladder (1 CPU) so concurrency limits are easy to hit:
    /// capacities 4 / 1 / 1, thresholds 2 MB / 24 MB / 120 MB.
    fn small_ladder() -> GatewayLadder {
        GatewayLadder::new(ThrottleConfig::for_cpus(1))
    }

    fn now(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn disabled_ladder_never_blocks() {
        let mut l = GatewayLadder::new(ThrottleConfig::disabled(1));
        let tasks: Vec<TaskId> = (0..50).map(|_| l.begin_task()).collect();
        for t in &tasks {
            assert_eq!(
                l.report_memory(*t, 500 * MB, now(0)),
                LadderDecision::Proceed
            );
        }
    }

    #[test]
    fn small_queries_are_exempt() {
        let mut l = small_ladder();
        let t = l.begin_task();
        assert_eq!(l.report_memory(t, MB, now(0)), LadderDecision::Proceed);
        assert_eq!(
            l.holders_at(0),
            0,
            "no gateway acquired below the exemption floor"
        );
        l.finish_task(t, now(1));
        assert_eq!(l.stats().exempt_compilations, 1);
    }

    #[test]
    fn growing_memory_climbs_the_ladder_in_order() {
        let mut l = small_ladder();
        let t = l.begin_task();
        assert_eq!(l.report_memory(t, 3 * MB, now(0)), LadderDecision::Proceed);
        assert_eq!(l.holders_at(0), 1);
        assert_eq!(l.holders_at(1), 0);
        assert_eq!(l.report_memory(t, 30 * MB, now(1)), LadderDecision::Proceed);
        assert_eq!(l.holders_at(1), 1);
        assert_eq!(
            l.report_memory(t, 200 * MB, now(2)),
            LadderDecision::Proceed
        );
        assert_eq!(l.holders_at(2), 1);
        // Finishing releases everything.
        l.finish_task(t, now(3));
        assert_eq!(l.holders_at(0), 0);
        assert_eq!(l.holders_at(1), 0);
        assert_eq!(l.holders_at(2), 0);
    }

    #[test]
    fn fifth_small_compilation_waits_on_one_cpu() {
        let mut l = small_ladder();
        let tasks: Vec<TaskId> = (0..5).map(|_| l.begin_task()).collect();
        for t in &tasks[..4] {
            assert_eq!(l.report_memory(*t, 5 * MB, now(0)), LadderDecision::Proceed);
        }
        match l.report_memory(tasks[4], 5 * MB, now(1)) {
            LadderDecision::Wait { level, timeout } => {
                assert_eq!(level, 0);
                assert_eq!(timeout, l.config().monitors[0].timeout);
            }
            other => panic!("expected a wait, got {other:?}"),
        }
        assert_eq!(l.waiting_at(0), 1);
        // When one of the holders finishes, the waiter is admitted.
        let resumed = l.finish_task(tasks[0], now(10));
        assert_eq!(resumed, vec![tasks[4]]);
        assert_eq!(
            l.report_memory(tasks[4], 5 * MB, now(10)),
            LadderDecision::Proceed
        );
        assert!(l.stats().total_wait[0] >= SimDuration::from_secs(9));
    }

    #[test]
    fn big_gateway_serializes_the_largest_compilations() {
        let mut l = small_ladder();
        let a = l.begin_task();
        let b = l.begin_task();
        assert_eq!(
            l.report_memory(a, 200 * MB, now(0)),
            LadderDecision::Proceed
        );
        // The second giant blocks at the big gateway (level 2)... but first it
        // must pass levels 0 and 1, which it can (capacity 4 and 1 — level 1
        // has capacity 1 and is held by `a`, so it actually blocks there).
        match l.report_memory(b, 200 * MB, now(0)) {
            LadderDecision::Wait { level, .. } => assert!(level == 1 || level == 2),
            other => panic!("expected a wait, got {other:?}"),
        }
        let resumed = l.finish_task(a, now(5));
        assert_eq!(resumed, vec![b]);
        assert_eq!(
            l.report_memory(b, 200 * MB, now(5)),
            LadderDecision::Proceed
        );
    }

    #[test]
    fn waiters_do_not_lose_already_held_gateways() {
        let mut l = small_ladder();
        let a = l.begin_task();
        let b = l.begin_task();
        assert_eq!(l.report_memory(a, 30 * MB, now(0)), LadderDecision::Proceed);
        // b passes level 0 but blocks at level 1 (capacity 1).
        assert!(matches!(
            l.report_memory(b, 30 * MB, now(0)),
            LadderDecision::Wait { level: 1, .. }
        ));
        assert_eq!(
            l.holders_at(0),
            2,
            "b keeps holding the small gateway while queued"
        );
        assert_eq!(l.waiting_at(1), 1);
    }

    #[test]
    fn timeout_cancels_the_wait_and_counts() {
        let mut l = small_ladder();
        let a = l.begin_task();
        let b = l.begin_task();
        l.report_memory(a, 30 * MB, now(0));
        assert!(matches!(
            l.report_memory(b, 30 * MB, now(0)),
            LadderDecision::Wait { .. }
        ));
        l.timeout_task(b, now(301));
        l.finish_task(b, now(301));
        assert_eq!(l.stats().timeouts, 1);
        assert_eq!(l.waiting_at(1), 0);
        // a is unaffected.
        assert_eq!(
            l.report_memory(a, 31 * MB, now(302)),
            LadderDecision::Proceed
        );
    }

    #[test]
    fn dynamic_target_triggers_best_effort() {
        let mut l = small_ladder();
        // The broker says compilation may only use 40 MB in total.
        l.set_compilation_target(Some(40 * MB));
        let t = l.begin_task();
        assert_eq!(l.report_memory(t, 10 * MB, now(0)), LadderDecision::Proceed);
        // best_effort_fraction = 0.5 -> limit 20 MB.
        assert_eq!(
            l.report_memory(t, 25 * MB, now(1)),
            LadderDecision::FinishBestEffort
        );
        // The directive is delivered once; afterwards the task proceeds to wrap up.
        assert_eq!(l.report_memory(t, 26 * MB, now(2)), LadderDecision::Proceed);
        assert_eq!(l.stats().best_effort_completions, 1);
    }

    #[test]
    fn dynamic_threshold_pushes_hogs_into_higher_category() {
        let mut l = small_ladder();
        // Static medium threshold is 24 MB. With a 40 MB target and three
        // active small compilations, the dynamic medium threshold drops to
        // 40 * 0.45 / 3 = 6 MB.
        let tasks: Vec<TaskId> = (0..3).map(|_| l.begin_task()).collect();
        for t in &tasks {
            l.report_memory(*t, 3 * MB, now(0));
        }
        l.set_compilation_target(Some(40 * MB));
        let thresholds = l.effective_thresholds();
        assert!(
            thresholds[1] < 24 * MB,
            "medium threshold should drop under pressure: {}",
            thresholds[1]
        );
        // A 10 MB compilation now needs the medium gateway even though it is
        // below the static 24 MB threshold.
        let hog = l.begin_task();
        l.report_memory(hog, 10 * MB, now(1));
        assert_eq!(l.holders_at(1), 1);
    }

    #[test]
    fn category_counts_track_held_levels() {
        let mut l = small_ladder();
        let a = l.begin_task();
        let b = l.begin_task();
        let c = l.begin_task();
        l.report_memory(a, MB, now(0)); // exempt -> category 0
        l.report_memory(b, 5 * MB, now(0)); // small gateway -> category 1
        l.report_memory(c, 30 * MB, now(0)); // medium gateway -> category 2
        let counts = l.category_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 1);
        assert_eq!(l.active_tasks(), 3);
    }

    #[test]
    fn finish_is_idempotent_and_unknown_tasks_are_tolerated() {
        let mut l = small_ladder();
        let t = l.begin_task();
        l.report_memory(t, 5 * MB, now(0));
        assert!(l.finish_task(t, now(1)).is_empty());
        assert!(l.finish_task(t, now(2)).is_empty());
        assert_eq!(
            l.report_memory(TaskId(999), 500 * MB, now(3)),
            LadderDecision::Proceed
        );
    }

    #[test]
    fn eight_cpu_paper_config_allows_32_small_compilations() {
        let mut l = GatewayLadder::new(ThrottleConfig::paper_machine());
        let tasks: Vec<TaskId> = (0..33).map(|_| l.begin_task()).collect();
        let mut waited = 0;
        for t in &tasks {
            if matches!(
                l.report_memory(*t, 5 * MB, now(0)),
                LadderDecision::Wait { .. }
            ) {
                waited += 1;
            }
        }
        assert_eq!(waited, 1, "exactly the 33rd compilation must wait");
        assert_eq!(l.holders_at(0), 32);
    }

    #[test]
    fn decisions_translate_into_the_governor_vocabulary() {
        use throttledb_governor::AdmissionDecision;
        let at = now(10);
        assert_eq!(
            LadderDecision::Proceed.admission(at),
            AdmissionDecision::Admit { units: 1 }
        );
        assert_eq!(
            LadderDecision::FinishBestEffort.admission(at),
            AdmissionDecision::Degrade { units: 1 }
        );
        let wait = LadderDecision::Wait {
            level: 1,
            timeout: SimDuration::from_secs(300),
        };
        assert_eq!(
            wait.admission(at),
            AdmissionDecision::Wait { deadline: now(310) }
        );
    }

    #[test]
    fn waits_populate_the_per_gateway_histograms() {
        let mut l = small_ladder();
        let a = l.begin_task();
        let b = l.begin_task();
        l.report_memory(a, 30 * MB, now(0));
        assert!(matches!(
            l.report_memory(b, 30 * MB, now(0)),
            LadderDecision::Wait { level: 1, .. }
        ));
        l.finish_task(a, now(9));
        let summary = l.stats().wait_summary(1);
        assert_eq!(summary.count, 1);
        assert!(summary.min >= 8_000_000, "waited ~9 s: {summary:?}");
        assert_eq!(l.stats().wait_summary(0).count, 0);
    }

    #[test]
    fn policy_trait_drives_the_ladder_identically() {
        use throttledb_governor::{Policy, PolicyDecision, PolicySignals};
        let mut direct = small_ladder();
        let mut boxed: Box<dyn Policy> = Box::new(small_ladder());
        assert_eq!(boxed.name(), "ladder");
        let signals = PolicySignals::default();
        let mut ids = Vec::new();
        for _ in 0..5 {
            let d = direct.begin_task();
            let p = boxed.begin();
            assert_eq!(d.0, p);
            ids.push(d);
        }
        for (i, &t) in ids.iter().enumerate() {
            let want: PolicyDecision = direct.report_memory(t, 5 * MB, now(i as u64)).into();
            let got = boxed.report(t.0, 5 * MB, &signals, now(i as u64));
            assert_eq!(got, want);
        }
        assert_eq!(boxed.active(), direct.active_tasks());
        assert_eq!(boxed.waiting(), 1);
        let mut via_trait = Vec::new();
        boxed.finish_into(ids[0].0, now(10), &mut via_trait);
        let via_direct = direct.finish_task(ids[0], now(10));
        assert_eq!(
            via_trait,
            via_direct.iter().map(|t| t.0).collect::<Vec<u64>>()
        );
        assert_eq!(boxed.stats(), direct.stats());
        // tick installs the compilation target without resuming anyone.
        boxed.tick(now(11), Some(40 * MB), 1.0, &mut via_trait);
        direct.set_compilation_target(Some(40 * MB));
        let t = ids[1];
        assert_eq!(
            boxed.report(t.0, 25 * MB, &signals, now(12)),
            direct.report_memory(t, 25 * MB, now(12)).into()
        );
    }

    #[test]
    fn per_cpu_scaling_with_custom_monitor_set() {
        // Two-monitor ladder used by the ablation bench.
        let mut cfg = ThrottleConfig::for_cpus(2);
        cfg.monitors.truncate(2);
        cfg.monitors[1].concurrency = Concurrency::Global(1);
        let mut l = GatewayLadder::new(cfg);
        let a = l.begin_task();
        let b = l.begin_task();
        assert_eq!(
            l.report_memory(a, 100 * MB, now(0)),
            LadderDecision::Proceed
        );
        assert!(matches!(
            l.report_memory(b, 100 * MB, now(0)),
            LadderDecision::Wait { level: 1, .. }
        ));
    }
}
