//! A single memory-monitor gateway.
//!
//! A gateway is a counting semaphore with a FIFO wait queue, expressed as an
//! explicit state machine so that both the threaded deployment (which blocks
//! real threads on a condition variable) and the discrete-event engine
//! (which schedules virtual-time events) can drive the same policy code.
//! Waiting is backed by the resource-governor layer's
//! [`throttledb_governor::WaitQueue`], the same substrate the
//! execution grant queue uses, so cancellation (gateway timeouts) is O(1)
//! instead of a linear scan.

use crate::ladder::TaskId;
use std::collections::HashMap;
use throttledb_governor::{WaitQueue, WaiterKey};
use throttledb_sim::SimTime;

/// Result of asking a gateway for admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayAdmission {
    /// The task now holds the gateway.
    Acquired,
    /// The gateway is full; the task has been queued FIFO.
    Queued,
    /// The task already holds the gateway (idempotent re-request).
    AlreadyHeld,
}

/// One gateway: capacity, current holders and the wait queue.
#[derive(Debug, Clone)]
pub struct Gateway {
    capacity: u32,
    holders: Vec<TaskId>,
    waiters: WaitQueue<TaskId>,
    /// Ticket index for O(1) cancellation by task id.
    tickets: HashMap<TaskId, WaiterKey>,
}

impl Gateway {
    /// A gateway admitting at most `capacity` concurrent holders.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity >= 1, "a gateway must admit at least one task");
        Gateway {
            capacity,
            holders: Vec::new(),
            waiters: WaitQueue::new(),
            tickets: HashMap::new(),
        }
    }

    /// Maximum concurrent holders.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of current holders.
    pub fn in_use(&self) -> u32 {
        self.holders.len() as u32
    }

    /// Number of queued waiters.
    pub fn queued(&self) -> usize {
        self.waiters.len()
    }

    /// True when `task` currently holds this gateway.
    pub fn holds(&self, task: TaskId) -> bool {
        self.holders.contains(&task)
    }

    /// True when `task` is waiting in this gateway's queue.
    pub fn is_waiting(&self, task: TaskId) -> bool {
        self.tickets.contains_key(&task)
    }

    /// Ask for admission at an unspecified time with no wait deadline.
    /// Callers that track virtual time should prefer
    /// [`Gateway::request_at`], which stamps the enqueue time and deadline
    /// on the queue entry.
    pub fn request(&mut self, task: TaskId) -> GatewayAdmission {
        self.request_at(task, SimTime::ZERO, SimTime::MAX)
    }

    /// Ask for admission at `now`; a queued task should be abandoned after
    /// `deadline`.
    pub fn request_at(
        &mut self,
        task: TaskId,
        now: SimTime,
        deadline: SimTime,
    ) -> GatewayAdmission {
        if self.holds(task) {
            return GatewayAdmission::AlreadyHeld;
        }
        if self.is_waiting(task) {
            return GatewayAdmission::Queued;
        }
        // Admit only when capacity exists *and* no one is queued ahead
        // (FIFO fairness: a newcomer cannot jump the queue).
        if (self.holders.len() as u32) < self.capacity && self.waiters.is_empty() {
            self.holders.push(task);
            GatewayAdmission::Acquired
        } else {
            let key = self.waiters.push(task, now, deadline);
            self.tickets.insert(task, key);
            GatewayAdmission::Queued
        }
    }

    /// Release the gateway held by `task`. Returns the tasks admitted from
    /// the wait queue as a result (possibly empty).
    pub fn release(&mut self, task: TaskId) -> Vec<TaskId> {
        let mut admitted = Vec::new();
        self.release_into(task, &mut admitted);
        admitted
    }

    /// Allocation-free variant of [`Gateway::release`]: admitted tasks are
    /// appended to `out`, letting the caller reuse one scratch buffer
    /// across every release on the simulation hot path.
    pub fn release_into(&mut self, task: TaskId, out: &mut Vec<TaskId>) {
        let Some(pos) = self.holders.iter().position(|t| *t == task) else {
            return;
        };
        self.holders.swap_remove(pos);
        self.admit_waiters_into(out);
    }

    /// Remove `task` from the wait queue (it gave up, e.g. on timeout).
    /// Returns true if it was actually waiting. O(1).
    pub fn cancel_wait(&mut self, task: TaskId) -> bool {
        let Some(key) = self.tickets.remove(&task) else {
            return false;
        };
        self.waiters.cancel(key).is_some()
    }

    /// Grow or shrink capacity at runtime (used by ablation experiments).
    /// Returns tasks admitted if capacity grew.
    pub fn set_capacity(&mut self, capacity: u32) -> Vec<TaskId> {
        assert!(capacity >= 1);
        self.capacity = capacity;
        let mut admitted = Vec::new();
        self.admit_waiters_into(&mut admitted);
        admitted
    }

    fn admit_waiters_into(&mut self, admitted: &mut Vec<TaskId>) {
        while (self.holders.len() as u32) < self.capacity {
            let Some(waiter) = self.waiters.pop_front() else {
                break;
            };
            self.tickets.remove(&waiter.payload);
            self.holders.push(waiter.payload);
            admitted.push(waiter.payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }

    #[test]
    fn admits_up_to_capacity_then_queues() {
        let mut g = Gateway::new(2);
        assert_eq!(g.request(t(1)), GatewayAdmission::Acquired);
        assert_eq!(g.request(t(2)), GatewayAdmission::Acquired);
        assert_eq!(g.request(t(3)), GatewayAdmission::Queued);
        assert_eq!(g.in_use(), 2);
        assert_eq!(g.queued(), 1);
    }

    #[test]
    fn requests_are_idempotent() {
        let mut g = Gateway::new(1);
        assert_eq!(g.request(t(1)), GatewayAdmission::Acquired);
        assert_eq!(g.request(t(1)), GatewayAdmission::AlreadyHeld);
        assert_eq!(g.request(t(2)), GatewayAdmission::Queued);
        assert_eq!(g.request(t(2)), GatewayAdmission::Queued);
        assert_eq!(g.queued(), 1);
    }

    #[test]
    fn release_admits_waiters_fifo() {
        let mut g = Gateway::new(1);
        g.request(t(1));
        g.request(t(2));
        g.request(t(3));
        let admitted = g.release(t(1));
        assert_eq!(admitted, vec![t(2)]);
        assert!(g.holds(t(2)));
        assert!(!g.holds(t(1)));
        let admitted = g.release(t(2));
        assert_eq!(admitted, vec![t(3)]);
    }

    #[test]
    fn release_of_non_holder_is_a_noop() {
        let mut g = Gateway::new(1);
        g.request(t(1));
        assert!(g.release(t(99)).is_empty());
        assert!(g.holds(t(1)));
    }

    #[test]
    fn cancel_wait_removes_from_queue() {
        let mut g = Gateway::new(1);
        g.request(t(1));
        g.request(t(2));
        g.request(t(3));
        assert!(g.cancel_wait(t(2)));
        assert!(!g.cancel_wait(t(2)));
        let admitted = g.release(t(1));
        assert_eq!(admitted, vec![t(3)], "cancelled waiter must be skipped");
    }

    #[test]
    fn fifo_fairness_even_with_spare_capacity() {
        // A released slot goes to the longest waiter, and a newcomer cannot
        // jump the queue even if capacity momentarily frees up.
        let mut g = Gateway::new(2);
        g.request(t(1));
        g.request(t(2));
        g.request(t(3)); // queued
        g.release(t(1)); // admits 3
        assert!(g.holds(t(3)));
        g.request(t(4)); // full again -> queued
        g.request(t(5));
        g.release(t(2));
        assert!(g.holds(t(4)), "t4 has priority over t5");
        assert!(!g.holds(t(5)));
    }

    #[test]
    fn growing_capacity_admits_waiters() {
        let mut g = Gateway::new(1);
        g.request(t(1));
        g.request(t(2));
        g.request(t(3));
        let admitted = g.set_capacity(3);
        assert_eq!(admitted, vec![t(2), t(3)]);
        assert_eq!(g.in_use(), 3);
    }

    proptest! {
        /// Invariant: holders never exceed capacity, and no task is both a
        /// holder and a waiter, regardless of the operation sequence.
        #[test]
        fn prop_capacity_and_disjointness_invariants(
            capacity in 1u32..6,
            ops in proptest::collection::vec((0u8..3, 0u64..12), 1..200),
        ) {
            let mut g = Gateway::new(capacity);
            for (op, task) in ops {
                match op {
                    0 => { g.request(TaskId(task)); }
                    1 => { g.release(TaskId(task)); }
                    _ => { g.cancel_wait(TaskId(task)); }
                }
                prop_assert!(g.in_use() <= g.capacity());
                for holder in 0..12u64 {
                    prop_assert!(
                        !(g.holds(TaskId(holder)) && g.is_waiting(TaskId(holder))),
                        "task {holder} both holds and waits"
                    );
                }
            }
        }

        /// Invariant: if there is spare capacity, the wait queue is empty
        /// after any release (work-conservation).
        #[test]
        fn prop_work_conservation_after_release(
            capacity in 1u32..4,
            tasks in proptest::collection::vec(0u64..20, 1..40),
        ) {
            let mut g = Gateway::new(capacity);
            for task in &tasks {
                g.request(TaskId(*task));
            }
            for task in &tasks {
                g.release(TaskId(*task));
                if g.in_use() < g.capacity() {
                    prop_assert_eq!(g.queued(), 0);
                }
            }
        }
    }
}
