//! A real (blocking) deployment of the gateway ladder for multi-threaded
//! embedders.
//!
//! [`ThreadedThrottle`] wraps the [`GatewayLadder`] state machine in a mutex
//! plus condition variable and exposes a
//! [`throttledb_optimizer::MemoryGovernor`] per compilation.
//! From the optimizer's point of view nothing changes — "the only perceptible
//! difference ... is that the thread sometimes receives less time for its
//! work" — while the ladder decides which compilations proceed.

use crate::config::ThrottleConfig;
use crate::ladder::{GatewayLadder, LadderDecision, TaskId};
use crate::stats::ThrottleStats;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};
use throttledb_membroker::{MemoryBroker, SubcomponentKind};
use throttledb_optimizer::{GovernorDirective, MemoryGovernor};
use throttledb_sim::SimTime;

/// A thread-safe, blocking wrapper around the gateway ladder.
#[derive(Debug)]
pub struct ThreadedThrottle {
    ladder: Mutex<GatewayLadder>,
    resumed: Condvar,
    broker: Arc<MemoryBroker>,
    epoch: Instant,
}

impl ThreadedThrottle {
    /// Create a throttle over `broker` with the given configuration.
    pub fn new(config: ThrottleConfig, broker: Arc<MemoryBroker>) -> Self {
        ThreadedThrottle {
            ladder: Mutex::new(GatewayLadder::new(config)),
            resumed: Condvar::new(),
            broker,
            epoch: Instant::now(),
        }
    }

    /// Wall-clock time since the throttle was created, as virtual time for
    /// the ladder's statistics.
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// Refresh the dynamic-threshold input from the broker. Embedders call
    /// this from a housekeeping thread; the governor also calls it lazily.
    pub fn refresh_target(&self) {
        let target = if self.broker.pressure().is_constrained() {
            Some(self.broker.target_for_kind(SubcomponentKind::Compilation))
        } else {
            None
        };
        self.ladder.lock().set_compilation_target(target);
    }

    /// A snapshot of the throttle statistics.
    pub fn stats(&self) -> ThrottleStats {
        self.ladder.lock().stats().clone()
    }

    /// Number of live compilations.
    pub fn active_compilations(&self) -> usize {
        self.ladder.lock().active_tasks()
    }

    /// Create the governor for one compilation. Hand the result to
    /// [`Optimizer::optimize_with_governor`](throttledb_optimizer::Optimizer::optimize_with_governor).
    pub fn governor(self: &Arc<Self>) -> Box<dyn MemoryGovernor + Send> {
        let task = self.ladder.lock().begin_task();
        Box::new(ThrottledGovernor {
            throttle: Arc::clone(self),
            task,
            finished: false,
        })
    }
}

/// Per-compilation governor: blocks the compiling thread at gateways.
struct ThrottledGovernor {
    throttle: Arc<ThreadedThrottle>,
    task: TaskId,
    finished: bool,
}

impl MemoryGovernor for ThrottledGovernor {
    fn on_allocation(&mut self, used_bytes: u64, _peak_bytes: u64) -> GovernorDirective {
        self.throttle.refresh_target();
        let mut ladder = self.throttle.ladder.lock();
        loop {
            let now = self.throttle.now();
            match ladder.report_memory(self.task, used_bytes, now) {
                LadderDecision::Proceed => return GovernorDirective::Continue,
                LadderDecision::FinishBestEffort => return GovernorDirective::FinishWithBestPlan,
                LadderDecision::Wait { timeout, .. } => {
                    let wait = Duration::from_micros(timeout.as_micros());
                    let timed_out = self
                        .throttle
                        .resumed
                        .wait_for(&mut ladder, wait)
                        .timed_out();
                    if timed_out {
                        // Re-check: we may have been admitted right at the
                        // deadline; only abort if we are genuinely still blocked.
                        let now = self.throttle.now();
                        match ladder.report_memory(self.task, used_bytes, now) {
                            LadderDecision::Proceed => return GovernorDirective::Continue,
                            LadderDecision::FinishBestEffort => {
                                return GovernorDirective::FinishWithBestPlan
                            }
                            LadderDecision::Wait { .. } => {
                                ladder.timeout_task(self.task, now);
                                return GovernorDirective::Abort;
                            }
                        }
                    }
                    // Resumed (or spurious wakeup): loop and re-report.
                }
            }
        }
    }

    fn on_completion(&mut self, _peak_bytes: u64) {
        if self.finished {
            return;
        }
        self.finished = true;
        let now = self.throttle.now();
        let resumed = self.throttle.ladder.lock().finish_task(self.task, now);
        if !resumed.is_empty() {
            self.throttle.resumed.notify_all();
        } else {
            // Still notify: waiters re-check their state on wakeup and this
            // keeps the wakeup logic simple and obviously live.
            self.throttle.resumed.notify_all();
        }
    }
}

impl Drop for ThrottledGovernor {
    fn drop(&mut self) {
        // Safety net: never leak gateway holds if the optimizer unwound
        // without calling on_completion.
        self.on_completion(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use throttledb_membroker::BrokerConfig;

    const MB: u64 = 1 << 20;

    fn throttle(cpus: u32) -> (Arc<ThreadedThrottle>, Arc<MemoryBroker>) {
        let broker = MemoryBroker::new(BrokerConfig::paper_machine());
        let t = Arc::new(ThreadedThrottle::new(
            ThrottleConfig::for_cpus(cpus),
            broker.clone(),
        ));
        (t, broker)
    }

    #[test]
    fn small_compilations_run_unimpeded() {
        let (t, _) = throttle(1);
        let mut g = t.governor();
        assert_eq!(g.on_allocation(MB, MB), GovernorDirective::Continue);
        g.on_completion(MB);
        let stats = t.stats();
        assert_eq!(stats.compilations_started, 1);
        assert_eq!(stats.compilations_finished, 1);
        assert_eq!(stats.total_waits(), 0);
    }

    #[test]
    fn concurrent_medium_compilations_serialize_on_the_medium_gateway() {
        // 1 CPU -> medium gateway capacity 1. Two threads that both cross the
        // medium threshold can never be inside the "held" section together.
        let (t, _) = throttle(1);
        let concurrently_inside = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));

        let mut handles = Vec::new();
        for _ in 0..2 {
            let t = Arc::clone(&t);
            let inside = Arc::clone(&concurrently_inside);
            let max_seen = Arc::clone(&max_seen);
            handles.push(thread::spawn(move || {
                let mut g = t.governor();
                // Cross the small gateway, then the medium one.
                assert_eq!(g.on_allocation(5 * MB, 5 * MB), GovernorDirective::Continue);
                let d = g.on_allocation(30 * MB, 30 * MB);
                assert_eq!(d, GovernorDirective::Continue);
                let now_inside = inside.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now_inside, Ordering::SeqCst);
                thread::sleep(Duration::from_millis(30));
                inside.fetch_sub(1, Ordering::SeqCst);
                g.on_completion(30 * MB);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            max_seen.load(Ordering::SeqCst),
            1,
            "medium gateway (capacity 1) must serialize the two compilations"
        );
        let stats = t.stats();
        assert!(
            stats.waits[1] >= 1,
            "one of the two must have waited: {stats:?}"
        );
        assert_eq!(stats.timeouts, 0);
    }

    #[test]
    fn blocked_compilation_times_out_and_aborts() {
        let (t, _) = throttle(1);
        // Shorten the timeouts so the test is fast (keep them non-decreasing).
        {
            let mut ladder = t.ladder.lock();
            let mut cfg = ladder.config().clone();
            cfg.monitors[0].timeout = throttledb_sim::SimDuration::from_millis(50);
            cfg.monitors[1].timeout = throttledb_sim::SimDuration::from_millis(50);
            *ladder = GatewayLadder::new(cfg);
        }
        // First governor holds the medium gateway and never releases during
        // the test window.
        let g1 = {
            let mut g = t.governor();
            assert_eq!(
                g.on_allocation(30 * MB, 30 * MB),
                GovernorDirective::Continue
            );
            g
        };
        // Second governor must give up after the 50 ms timeout.
        let t2 = Arc::clone(&t);
        let handle = thread::spawn(move || {
            let mut g = t2.governor();
            let d = g.on_allocation(30 * MB, 30 * MB);
            g.on_completion(30 * MB);
            d
        });
        let directive = handle.join().unwrap();
        assert_eq!(directive, GovernorDirective::Abort);
        assert_eq!(t.stats().timeouts, 1);
        drop(g1);
        assert_eq!(t.active_compilations(), 0, "drop releases every gateway");
    }

    #[test]
    fn finishing_a_holder_unblocks_the_waiter() {
        let (t, _) = throttle(1);
        let holder = Arc::clone(&t);
        let waiter = Arc::clone(&t);

        let mut g1 = holder.governor();
        assert_eq!(
            g1.on_allocation(30 * MB, 30 * MB),
            GovernorDirective::Continue
        );

        let handle = thread::spawn(move || {
            let mut g2 = waiter.governor();
            let d = g2.on_allocation(30 * MB, 30 * MB);
            g2.on_completion(30 * MB);
            d
        });
        // Give the waiter a moment to queue, then release.
        thread::sleep(Duration::from_millis(50));
        g1.on_completion(30 * MB);
        assert_eq!(handle.join().unwrap(), GovernorDirective::Continue);
        assert_eq!(t.active_compilations(), 0);
    }

    #[test]
    fn broker_pressure_enables_best_effort_completion() {
        let (t, broker) = throttle(1);
        // Saturate the machine so the broker installs a (small) compilation
        // target.
        let hog = broker.register(SubcomponentKind::BufferPool);
        hog.allocate(5 << 30);
        let compile_clerk = broker.register(SubcomponentKind::Compilation);
        compile_clerk.allocate(600 << 20);
        broker.recalculate(SimTime::from_secs(1));
        assert!(broker.pressure().is_constrained());

        let mut g = t.governor();
        // A compilation ramping to hundreds of MB should be told to wrap up.
        let mut directive = GovernorDirective::Continue;
        for step in 1..=64u64 {
            directive = g.on_allocation(step * 8 * MB, step * 8 * MB);
            if directive != GovernorDirective::Continue {
                break;
            }
        }
        g.on_completion(0);
        assert_eq!(directive, GovernorDirective::FinishWithBestPlan);
        assert_eq!(t.stats().best_effort_completions, 1);
    }

    #[test]
    fn stats_survive_many_sequential_compilations() {
        let (t, _) = throttle(4);
        for i in 0..50u64 {
            let mut g = t.governor();
            let bytes = (1 + i % 40) * MB;
            g.on_allocation(bytes, bytes);
            g.on_completion(bytes);
        }
        let stats = t.stats();
        assert_eq!(stats.compilations_started, 50);
        assert_eq!(stats.compilations_finished, 50);
        assert!(stats.exempt_compilations > 0);
        assert!(stats.acquisitions[0] > 0);
        assert_eq!(stats.timeouts, 0);
    }
}
