//! Throttle statistics, the raw material of the paper's figures.
//!
//! [`ThrottleStats`] moved to the governor layer
//! (`throttledb_governor::stats`) when admission policies became
//! pluggable, so that every policy — not just the gateway ladder —
//! reports through the same counters. This module re-exports it for the
//! many call sites (and downstream crates) that address it through
//! `throttledb_core`.

pub use throttledb_governor::ThrottleStats;
