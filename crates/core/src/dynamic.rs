//! Dynamic gateway thresholds (§4.1, first extension).
//!
//! "We have made the monitor memory thresholds for the larger gateways
//! dynamic. This is based on the broker memory target. ... The thresholds
//! are computed attempting to divide the overall query compilation target
//! memory across the categories identified by the monitors. For example, the
//! second monitor threshold is computed as `[target] * F / S`, where F and S
//! are respectively the fraction of the target allotted to and the current
//! number of small query compilations."

use crate::config::ThrottleConfig;

/// Computes the effective (possibly lowered) thresholds of the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicThresholds;

impl DynamicThresholds {
    /// Compute effective thresholds for every monitor.
    ///
    /// * `config` — the static configuration (fractions `F`, static caps).
    /// * `compilation_target_bytes` — the broker's current target for the
    ///   whole compilation subcomponent (`None` when the system is
    ///   unconstrained → static thresholds apply).
    /// * `category_counts` — number of active compilations per category:
    ///   `category_counts[k]` is the number of compilations currently holding
    ///   exactly `k` gateways (`k = 0` are the exempt/tiny compilations,
    ///   `k = 1` are the "small" queries governed by the first monitor, ...).
    ///
    /// The first monitor threshold is always static (it exists to exempt
    /// diagnostic queries, not to partition the target). For monitor `k ≥ 1`
    /// the dynamic value is `target · F_{k-1} / S` where `S` is the number of
    /// compilations in the category directly below monitor `k` (those holding
    /// exactly `k` gateways — for the medium monitor, the "small query
    /// compilations" of the paper's formula); the effective threshold is the
    /// *minimum* of the static and dynamic values (dynamic thresholds only
    /// ever throttle more aggressively), clamped so the ladder stays strictly
    /// increasing.
    pub fn effective(
        config: &ThrottleConfig,
        compilation_target_bytes: Option<u64>,
        category_counts: &[usize],
    ) -> Vec<u64> {
        let static_thresholds: Vec<u64> =
            config.monitors.iter().map(|m| m.threshold_bytes).collect();
        let Some(target) = compilation_target_bytes else {
            return static_thresholds;
        };
        if !config.dynamic_thresholds {
            return static_thresholds;
        }

        let mut out = static_thresholds.clone();
        for level in 1..config.monitors.len() {
            let fraction = config.monitors[level - 1].dynamic_fraction;
            let occupants = category_counts.get(level).copied().unwrap_or(0).max(1) as u64;
            let dynamic = ((target as f64 * fraction) / occupants as f64) as u64;
            // Throttle-only: never raise a threshold above its static value,
            // and keep the ladder strictly increasing above the previous level.
            let floor = out[level - 1] + 1;
            out[level] = dynamic.min(static_thresholds[level]).max(floor);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ThrottleConfig {
        ThrottleConfig::paper_machine()
    }

    #[test]
    fn without_target_thresholds_are_static() {
        let c = cfg();
        let t = DynamicThresholds::effective(&c, None, &[10, 0, 0]);
        assert_eq!(t[0], c.monitors[0].threshold_bytes);
        assert_eq!(t[1], c.monitors[1].threshold_bytes);
        assert_eq!(t[2], c.monitors[2].threshold_bytes);
    }

    #[test]
    fn disabled_dynamic_thresholds_stay_static() {
        let mut c = cfg();
        c.dynamic_thresholds = false;
        let t = DynamicThresholds::effective(&c, Some(100 << 20), &[50, 10, 1]);
        assert_eq!(t[1], c.monitors[1].threshold_bytes);
    }

    #[test]
    fn more_small_compilations_lower_the_medium_threshold() {
        let c = cfg();
        let target = Some(200 << 20);
        let few = DynamicThresholds::effective(&c, target, &[0, 2, 0, 0]);
        let many = DynamicThresholds::effective(&c, target, &[0, 30, 0, 0]);
        assert!(
            many[1] < few[1],
            "with more small compilations the medium threshold must drop: {} vs {}",
            many[1],
            few[1]
        );
    }

    #[test]
    fn formula_matches_target_times_fraction_over_count() {
        let c = cfg();
        let target = 400u64 << 20;
        let t = DynamicThresholds::effective(&c, Some(target), &[0, 10, 0, 0]);
        let expected = ((target as f64 * c.monitors[0].dynamic_fraction) / 10.0) as u64;
        // The static cap may kick in; otherwise it is exactly the formula.
        assert_eq!(
            t[1],
            expected.min(c.monitors[1].threshold_bytes).max(t[0] + 1)
        );
    }

    #[test]
    fn dynamic_never_raises_above_static() {
        let c = cfg();
        // Huge target and a single small compilation would suggest a huge
        // dynamic threshold; it must be capped at the static value.
        let t = DynamicThresholds::effective(&c, Some(100 << 30), &[0, 1, 1, 0]);
        assert!(t[1] <= c.monitors[1].threshold_bytes);
        assert!(t[2] <= c.monitors[2].threshold_bytes);
    }

    #[test]
    fn ladder_stays_strictly_increasing() {
        let c = cfg();
        // Tiny target with many occupants would collapse all thresholds to
        // nearly zero; the clamp keeps them ordered.
        let t = DynamicThresholds::effective(&c, Some(1 << 20), &[0, 500, 200, 50]);
        assert!(t[0] < t[1]);
        assert!(t[1] < t[2]);
    }

    #[test]
    fn first_threshold_is_never_dynamic() {
        let c = cfg();
        let t = DynamicThresholds::effective(&c, Some(10 << 20), &[100, 100, 100, 100]);
        assert_eq!(t[0], c.monitors[0].threshold_bytes);
    }
}
