//! Throttle configuration: the gateway ladder's thresholds, concurrency
//! limits, timeouts and dynamic-threshold fractions.

use serde::{Deserialize, Serialize};
use throttledb_sim::SimDuration;

/// How many compilations may hold a gateway concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Concurrency {
    /// `n` holders per CPU (the paper's small gateway: 4 per CPU).
    PerCpu(u32),
    /// A fixed global limit (the paper's big gateway: 1).
    Global(u32),
}

impl Concurrency {
    /// Resolve to an absolute holder count for a machine with `cpus` CPUs.
    pub fn resolve(self, cpus: u32) -> u32 {
        match self {
            Concurrency::PerCpu(n) => (n * cpus).max(1),
            Concurrency::Global(n) => n.max(1),
        }
    }
}

/// One memory monitor (gateway) of the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Static memory threshold: a compilation must hold this gateway once
    /// its allocated bytes exceed the threshold.
    pub threshold_bytes: u64,
    /// Concurrency limit.
    pub concurrency: Concurrency,
    /// How long a compilation may wait at this gateway before being aborted
    /// with a timeout error. Later gateways get longer timeouts, biasing the
    /// system toward compilations that have made the most progress.
    pub timeout: SimDuration,
    /// Fraction `F` of the compilation memory target that queries *below*
    /// this gateway may collectively use before the dynamic threshold pushes
    /// the top consumers up into this gateway's category (§4.1).
    pub dynamic_fraction: f64,
}

/// Configuration of the whole throttle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThrottleConfig {
    /// Number of CPUs on the machine (8 on the paper's test server).
    pub cpus: u32,
    /// Whether throttling is active at all. With `enabled = false` the ladder
    /// admits everything immediately — the paper's baseline configuration.
    pub enabled: bool,
    /// Compilations below this many bytes never acquire any gateway, so
    /// small diagnostic queries always get through ("this enables an
    /// administrator to run diagnostic queries even if the system is
    /// overloaded").
    pub exempt_bytes: u64,
    /// The monitors, ordered by increasing threshold.
    pub monitors: Vec<MonitorConfig>,
    /// Whether §4.1 dynamic thresholds are applied to the larger gateways.
    pub dynamic_thresholds: bool,
    /// Whether a compilation that would exhaust memory finishes with the
    /// best plan found so far instead of failing (§4.1 extension 2).
    pub best_effort_plans: bool,
    /// When `best_effort_plans` is on: fraction of the compilation target a
    /// single compilation may reach before being told to wrap up.
    pub best_effort_fraction: f64,
}

impl ThrottleConfig {
    /// The paper's configuration for a machine with `cpus` CPUs: three
    /// monitors — 4/CPU, 1/CPU, 1 global — with increasing thresholds and
    /// timeouts, dynamic thresholds and best-effort plans enabled.
    pub fn for_cpus(cpus: u32) -> Self {
        ThrottleConfig {
            cpus,
            enabled: true,
            exempt_bytes: 2 << 20, // 2 MiB: diagnostic/OLTP compilations sail through
            monitors: vec![
                MonitorConfig {
                    threshold_bytes: 2 << 20, // small gateway: > 2 MiB
                    concurrency: Concurrency::PerCpu(4),
                    timeout: SimDuration::from_secs(120),
                    dynamic_fraction: 0.45,
                },
                MonitorConfig {
                    threshold_bytes: 24 << 20, // medium gateway: > 24 MiB
                    concurrency: Concurrency::PerCpu(1),
                    timeout: SimDuration::from_secs(300),
                    dynamic_fraction: 0.35,
                },
                MonitorConfig {
                    threshold_bytes: 120 << 20, // big gateway: > 120 MiB
                    concurrency: Concurrency::Global(1),
                    timeout: SimDuration::from_secs(600),
                    dynamic_fraction: 0.20,
                },
            ],
            dynamic_thresholds: true,
            best_effort_plans: true,
            best_effort_fraction: 0.5,
        }
    }

    /// The paper's evaluation machine: 8 CPUs.
    pub fn paper_machine() -> Self {
        ThrottleConfig::for_cpus(8)
    }

    /// A configuration with throttling disabled — the paper's baseline
    /// ("non-throttled") runs.
    pub fn disabled(cpus: u32) -> Self {
        ThrottleConfig {
            enabled: false,
            ..ThrottleConfig::for_cpus(cpus)
        }
    }

    /// Number of monitors (gateways).
    pub fn monitor_count(&self) -> usize {
        self.monitors.len()
    }

    /// Panics if the configuration is inconsistent.
    pub fn validate(&self) {
        assert!(self.cpus > 0, "need at least one CPU");
        assert!(!self.monitors.is_empty(), "need at least one monitor");
        for w in self.monitors.windows(2) {
            assert!(
                w[0].threshold_bytes < w[1].threshold_bytes,
                "monitor thresholds must be strictly increasing"
            );
            assert!(
                w[0].timeout <= w[1].timeout,
                "later monitors must not have shorter timeouts"
            );
            assert!(
                w[0].concurrency.resolve(self.cpus) >= w[1].concurrency.resolve(self.cpus),
                "later monitors must not allow more concurrency"
            );
        }
        assert!(
            self.exempt_bytes <= self.monitors[0].threshold_bytes,
            "the exemption floor cannot exceed the first monitor threshold"
        );
        assert!(
            (0.0..=1.0).contains(&self.best_effort_fraction),
            "best_effort_fraction must be in [0,1]"
        );
        let fraction_sum: f64 = self.monitors.iter().map(|m| m.dynamic_fraction).sum();
        assert!(
            (0.5..=1.5).contains(&fraction_sum),
            "dynamic fractions should roughly partition the target (sum = {fraction_sum})"
        );
    }
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        ThrottleConfig::paper_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_matches_the_paper() {
        let c = ThrottleConfig::paper_machine();
        c.validate();
        assert_eq!(c.cpus, 8);
        assert_eq!(c.monitor_count(), 3);
        // 4 per CPU, 1 per CPU, 1 global.
        assert_eq!(c.monitors[0].concurrency.resolve(8), 32);
        assert_eq!(c.monitors[1].concurrency.resolve(8), 8);
        assert_eq!(c.monitors[2].concurrency.resolve(8), 1);
        assert!(c.enabled);
        assert!(c.dynamic_thresholds);
        assert!(c.best_effort_plans);
    }

    #[test]
    fn thresholds_and_timeouts_increase() {
        let c = ThrottleConfig::paper_machine();
        assert!(c.monitors[0].threshold_bytes < c.monitors[1].threshold_bytes);
        assert!(c.monitors[1].threshold_bytes < c.monitors[2].threshold_bytes);
        assert!(c.monitors[0].timeout <= c.monitors[1].timeout);
        assert!(c.monitors[1].timeout <= c.monitors[2].timeout);
    }

    #[test]
    fn disabled_config_keeps_shape_but_is_off() {
        let c = ThrottleConfig::disabled(8);
        c.validate();
        assert!(!c.enabled);
        assert_eq!(c.monitor_count(), 3);
    }

    #[test]
    fn concurrency_resolution() {
        assert_eq!(Concurrency::PerCpu(4).resolve(8), 32);
        assert_eq!(Concurrency::PerCpu(1).resolve(1), 1);
        assert_eq!(Concurrency::Global(1).resolve(64), 1);
        assert_eq!(
            Concurrency::Global(0).resolve(4),
            1,
            "clamped to at least one"
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_thresholds_rejected() {
        let mut c = ThrottleConfig::paper_machine();
        c.monitors[2].threshold_bytes = 1;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "more concurrency")]
    fn increasing_concurrency_rejected() {
        let mut c = ThrottleConfig::paper_machine();
        c.monitors[2].concurrency = Concurrency::PerCpu(8);
        c.validate();
    }
}
