//! Stage 2: the execution memory grant.
//!
//! A compiled query asks its class's grant pool for execution memory up
//! front (SQL Server's "resource semaphore"). The pool admits it in full,
//! admits it reduced (the query will spill), or queues it FIFO with a
//! deadline; a queued query that outlives the deadline fails with a
//! resource error.

use super::QueryLifecycle;
use crate::metrics::FailureKind;
use crate::server::{Event, Server};
use crate::trace::TraceEvent;
use throttledb_executor::{GrantOutcome, GrantRequestId};

impl Server {
    /// Ask the class grant pool for `exec_grant_bytes` of execution memory
    /// and either start execution or queue with a timeout.
    pub(crate) fn request_grant(&mut self, id: u64, exec_grant_bytes: u64) {
        let Some(q) = self.queries.get(&id) else {
            return;
        };
        let class = q.class;
        let requested = exec_grant_bytes.max(1 << 20);
        let deadline = self.now + self.config.grant_timeout;
        let (grant_id, outcome) = self.classes[class]
            .grants
            .request_at(requested, self.now, deadline);
        if let Some(q) = self.queries.get_mut(&id) {
            q.grant_id = Some(grant_id);
            q.grant_requested = requested;
        }
        self.grant_to_query.insert((class, grant_id), id);
        match outcome {
            GrantOutcome::Granted { bytes } | GrantOutcome::Reduced { bytes } => {
                self.start_exec(id, bytes);
            }
            GrantOutcome::Queued => {
                if let Some(q) = self.queries.get_mut(&id) {
                    q.lifecycle.advance(QueryLifecycle::WaitingForGrant);
                }
                self.trace_push(TraceEvent::GrantQueued {
                    at: self.now,
                    query: id,
                    bytes: requested,
                });
                self.queue
                    .schedule(deadline, Event::GrantTimeout { query: id });
            }
        }
    }

    /// A grant wait expired. Only fires if the grant was never given
    /// (`start_exec` removes the mapping when it runs).
    pub(crate) fn on_grant_timeout(&mut self, id: u64) {
        let Some(q) = self.queries.get(&id) else {
            return;
        };
        let class = q.class;
        let Some(grant_id) = q.grant_id else { return };
        if !self.grant_to_query.contains_key(&(class, grant_id)) {
            return;
        }
        if self.classes[class].grants.cancel(grant_id) {
            self.grant_to_query.remove(&(class, grant_id));
            self.fail_query(id, FailureKind::GrantTimeout);
        }
    }

    /// Start every query whose queued grant was just admitted by a release.
    pub(crate) fn start_admitted(
        &mut self,
        class: usize,
        admitted: &[(GrantRequestId, GrantOutcome)],
    ) {
        for &(grant_id, outcome) in admitted {
            if let Some(&qid) = self.grant_to_query.get(&(class, grant_id)) {
                let bytes = match outcome {
                    GrantOutcome::Granted { bytes } | GrantOutcome::Reduced { bytes } => bytes,
                    GrantOutcome::Queued => continue,
                };
                self.start_exec(qid, bytes);
            }
        }
    }
}
