//! Stage 1: submission and compilation.
//!
//! A submitted query compiles in discrete memory-growth steps; after each
//! step the accumulated bytes are reported to the query's class admission
//! policy, which answers proceed / wait / finish-best-effort. Waits are
//! realised as virtual-time timeout events; admission is signalled by the
//! policy when a holder releases.

use super::{Query, QueryLifecycle, QueryOrigin};
use crate::metrics::FailureKind;
use crate::server::{Event, PlanKey, Server};
use crate::trace::TraceEvent;
use throttledb_governor::{PolicyDecision, PolicySignals};

impl Server {
    /// A materialized closed-loop client submits its next query: check its
    /// participation, start a fresh chain's deadline clock, and hand off to
    /// the shared submission path.
    pub(crate) fn on_submit(&mut self, client: u32) {
        if !self.client_active[client as usize] {
            // The client was deactivated by a scenario phase after this
            // submission was scheduled; it leaves the closed loop here.
            self.client_busy[client as usize] = false;
            return;
        }
        // A fresh chain (not a retry) starts its total-deadline clock here.
        if self.retry_attempts[client as usize] == 0 {
            self.first_attempt_at[client as usize] = self.now;
        }
        self.submit_query(QueryOrigin::Client { client });
    }

    /// Submit one query from any origin: choose a template, uniquify its
    /// text, and start (or skip, on a plan-cache hit) compilation. Returns
    /// whether the query entered the pipeline (`false` = shed at the door).
    ///
    /// This is the allocation-free hot path: the template is chosen as an
    /// interned [`throttledb_workload::TemplateId`], its profile is a dense
    /// vector lookup, and the uniquifier perturbs a cached parse and hands
    /// back only the digest of the unique text — no SQL string is cloned or
    /// built per submission (the RNG draws are identical to the allocating
    /// path, so seeded runs are unchanged; see the workload crate's
    /// equivalence tests). The draw sequence is origin-independent, which
    /// is what makes a cohort-compressed run's trace byte-identical to the
    /// same population materialized as individual clients.
    pub(crate) fn submit_query(&mut self, origin: QueryOrigin) -> bool {
        let class = match origin {
            QueryOrigin::Client { client } | QueryOrigin::Cohort { client, .. } => {
                self.class_of(client)
            }
            QueryOrigin::Source { source } => self.config.arrivals[source as usize].class,
        };
        let template =
            self.client_model
                .choose_id(&self.mix, self.profiles.catalog(), &mut self.rng);
        let profile = self.profiles.profile_of(template).jittered(&mut self.rng);
        let id = self.next_query;
        self.next_query += 1;
        let digest = self.uniquifier.uniquify_digest(
            template,
            self.profiles.catalog().sql(template),
            &mut self.rng,
            id,
        );
        self.trace_push(TraceEvent::Submitted {
            at: self.now,
            query: id,
            client: origin.client_id(self.config.clients),
            class,
        });

        // Circuit breaker: while the class is failing hard, large arrivals
        // are shed at the door (closed-loop clients back off as if the
        // attempt failed; open-loop arrivals are simply gone). The RNG
        // draws above happen unconditionally, so a breakered run's stream
        // stays aligned with an unbreakered one until behaviour actually
        // diverges.
        if self.breaker_admit(class, profile.peak_compile_bytes)
            == throttledb_governor::AdmissionDecision::Reject
        {
            self.metrics.shed += 1;
            self.trace_push(TraceEvent::Shed {
                at: self.now,
                query: id,
            });
            // A shed open-loop arrival never held an in-flight slot, so
            // there is nothing to release — the caller counts the shed.
            if !matches!(origin, QueryOrigin::Source { .. }) {
                self.reschedule_after_setback(origin);
            }
            return false;
        }

        // The uniquifier defeats the plan cache (as in the paper); text
        // digests and compiled-plan keys live in disjoint `PlanKey`
        // variants, so this lookup misses by construction — exactly the
        // old text-keyed behaviour, without carrying the text.
        if self.plan_cache.get(&PlanKey::Text(digest)).is_some() {
            let query = Query {
                origin,
                class,
                template,
                profile,
                task: self.classes[class].policy.begin(),
                compile_step: self.config.compile_steps,
                compile_bytes: 0,
                lifecycle: QueryLifecycle::Compiling,
                grant_id: None,
                grant_requested: 0,
            };
            self.queries.insert(id, query);
            // finish_compile releases the CPU slot the compile path would
            // have taken; take it here so the accounting stays balanced.
            self.running_cpu_tasks += 1;
            self.finish_compile(id);
            return true;
        }

        let task = self.classes[class].policy.begin();
        self.task_to_query.insert((class, task), id);
        self.queries.insert(
            id,
            Query {
                origin,
                class,
                template,
                profile,
                task,
                compile_step: 0,
                compile_bytes: 0,
                lifecycle: QueryLifecycle::Compiling,
                grant_id: None,
                grant_requested: 0,
            },
        );
        self.running_cpu_tasks += 1;
        let step = self.compile_step_duration(&profile);
        self.queue
            .schedule(self.now + step, Event::CompileStep { query: id });
        true
    }

    /// One compilation memory-growth step: allocate the step's bytes, report
    /// the total to the class ladder, and act on its decision.
    pub(crate) fn on_compile_step(&mut self, id: u64) {
        let Some(q) = self.queries.get(&id) else {
            return;
        };
        if q.lifecycle.waiting_level().is_some() {
            // A stale step event for a query that has since blocked.
            return;
        }
        let class = q.class;
        let profile = q.profile;
        let delta = (profile.peak_compile_bytes / self.config.compile_steps as u64).max(1);

        // Out-of-memory: the machine genuinely has no room for this step.
        if self.broker.available_bytes() < delta {
            self.fail_query(id, FailureKind::OutOfMemory);
            return;
        }
        let (task, bytes, step) = {
            let q = self.queries.get_mut(&id).expect("query exists");
            q.compile_bytes += delta;
            q.compile_step += 1;
            (q.task, q.compile_bytes, q.compile_step)
        };
        self.compile_clerk.allocate(delta);
        self.record_compile_gauge();

        // Cost-based policies reserve against the template's compile
        // profile rather than the bytes committed so far.
        let signals = PolicySignals {
            estimated_peak_bytes: profile.peak_compile_bytes,
            estimated_cpu_seconds: profile.compile_cpu_seconds,
        };
        match self.classes[class]
            .policy
            .report(task, bytes, &signals, self.now)
        {
            PolicyDecision::Proceed => {
                if step >= self.config.compile_steps {
                    self.finish_compile(id);
                } else {
                    let d = self.compile_step_duration(&profile);
                    self.queue
                        .schedule(self.now + d, Event::CompileStep { query: id });
                }
            }
            PolicyDecision::Wait { level, timeout } => {
                if let Some(q) = self.queries.get_mut(&id) {
                    q.lifecycle
                        .advance(QueryLifecycle::WaitingAtGateway { level });
                }
                self.trace_push(TraceEvent::GatewayBlocked {
                    at: self.now,
                    query: id,
                    level,
                });
                self.running_cpu_tasks = self.running_cpu_tasks.saturating_sub(1);
                self.queue.schedule(
                    self.now + timeout,
                    Event::CompileTimeout { query: id, level },
                );
            }
            PolicyDecision::FinishBestEffort => {
                self.metrics.best_effort_plans += 1;
                self.classes[class].best_effort_plans += 1;
                self.trace_push(TraceEvent::BestEffort {
                    at: self.now,
                    query: id,
                });
                self.finish_compile(id);
            }
        }
    }

    /// A gateway wait expired. If the query is still blocked at that level,
    /// abort it with a compile-timeout failure.
    pub(crate) fn on_compile_timeout(&mut self, id: u64, level: usize) {
        let still_waiting = self
            .queries
            .get(&id)
            .map(|q| q.lifecycle.waiting_level() == Some(level))
            .unwrap_or(false);
        if !still_waiting {
            return;
        }
        if let Some(q) = self.queries.get(&id) {
            self.classes[q.class].policy.timeout(q.task, self.now);
        }
        self.fail_query(id, FailureKind::CompileTimeout);
    }

    /// Compilation produced a plan (fully or best-effort): free compile
    /// memory, release the ladder, cache the plan, and hand the query to
    /// the grant stage.
    pub(crate) fn finish_compile(&mut self, id: u64) {
        let (class, task, compile_bytes, template, profile) = {
            let q = self.queries.get(&id).expect("query exists");
            (q.class, q.task, q.compile_bytes, q.template, q.profile)
        };
        // Compilation memory is freed when the plan is produced.
        self.compile_clerk.free(compile_bytes);
        self.record_compile_gauge();
        if let Some(q) = self.queries.get_mut(&id) {
            q.compile_bytes = 0;
        }
        self.task_to_query.remove(&(class, task));
        self.finish_policy_task(class, task);
        self.running_cpu_tasks = self.running_cpu_tasks.saturating_sub(1);

        // Cache the plan (uniquified submissions mean this rarely helps —
        // by design; the key is the copy-free (template, submission) pair).
        self.plan_cache.insert(
            PlanKey::Compiled(template, id),
            template,
            96 << 10,
            profile.compile_cpu_seconds,
        );

        self.request_grant(id, profile.exec_grant_bytes);
    }
}
