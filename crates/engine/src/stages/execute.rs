//! Stage 3: execution.
//!
//! Execution is modelled analytically: CPU seconds inflated by hash spills
//! (when the grant was reduced) and machine load, plus I/O seconds through
//! the buffer-pool hit-rate model over whatever physical memory the
//! brokered subcomponents have left free.

use super::{QueryLifecycle, QueryOrigin};
use crate::server::{Event, Server};
use crate::trace::TraceEvent;
use throttledb_sim::SimDuration;

impl Server {
    /// Begin executing query `id` with `granted_bytes` of execution memory.
    pub(crate) fn start_exec(&mut self, id: u64, granted_bytes: u64) {
        let Some(q) = self.queries.get_mut(&id) else {
            return;
        };
        let class = q.class;
        let profile = q.profile;
        let requested = q.grant_requested;
        q.lifecycle.advance(QueryLifecycle::Executing);
        if let Some(grant_id) = q.grant_id {
            self.grant_to_query.remove(&(class, grant_id));
        }
        self.trace_push(TraceEvent::ExecStarted {
            at: self.now,
            query: id,
            bytes: granted_bytes,
        });
        self.running_cpu_tasks += 1;

        // CPU time: parallelized over the machine, inflated by spills and by
        // CPU contention.
        let spill = if requested == 0 {
            1.0
        } else {
            let fraction = (granted_bytes as f64 / requested as f64).clamp(0.05, 1.0);
            1.0 + (1.0 / fraction - 1.0) * 0.45
        };
        let cpu_seconds =
            profile.exec_cpu_seconds * spill / self.config.exec_parallelism * self.load_factor();

        // I/O time: whatever memory is not claimed by compilation, grants and
        // caches acts as the page buffer pool.
        let pool_bytes = self
            .config
            .broker
            .brokered_bytes()
            .saturating_sub(self.broker.used_bytes());
        let touched =
            (profile.exec_footprint_bytes as f64 * self.config.io_touched_fraction) as u64;
        let io_seconds = self.hit_model.io_seconds(
            touched,
            pool_bytes,
            self.config.hot_working_set_bytes,
            self.config.io_bandwidth_bytes_per_sec,
        );

        let duration = SimDuration::from_secs_f64((cpu_seconds + io_seconds).max(1.0));
        self.queue
            .schedule(self.now + duration, Event::ExecFinish { query: id });
    }

    /// A query finished executing: release its grant (starting admitted
    /// waiters), record the completion, and schedule the client's next
    /// think-time submission.
    pub(crate) fn on_exec_finish(&mut self, id: u64) {
        let Some(q) = self.queries.remove(&id) else {
            return;
        };
        self.running_cpu_tasks = self.running_cpu_tasks.saturating_sub(1);
        if let Some(grant_id) = q.grant_id {
            self.release_grant(q.class, grant_id);
        }
        self.metrics.record_completion(self.now);
        self.trace_push(TraceEvent::Completed {
            at: self.now,
            query: id,
        });
        if self.active_faults > 0 {
            self.metrics.completed_during_fault += 1;
        }
        let class = &mut self.classes[q.class];
        class.completed += 1;
        if self.now >= self.metrics.warmup {
            class.completed_after_warmup += 1;
        }
        self.breaker_record(q.class, true);
        // Success ends the retry chain: closed-loop clients (materialized
        // or cohort) think and submit fresh work; an open-loop arrival
        // just releases its source's in-flight slot.
        match q.origin {
            QueryOrigin::Client { client } => {
                self.retry_attempts[client as usize] = 0;
                let think = self.client_model.think_time(&mut self.rng);
                self.schedule_submit(client, think);
            }
            QueryOrigin::Cohort { client, .. } => {
                let think = self.client_model.think_time(&mut self.rng);
                self.schedule_cohort_submit(client, 0, throttledb_sim::SimTime::ZERO, think);
            }
            QueryOrigin::Source { source } => {
                let src = &mut self.sources[source as usize];
                src.in_flight = src.in_flight.saturating_sub(1);
                src.completed += 1;
            }
        }
    }
}
