//! The query pipeline stages and their shared state machine.
//!
//! The engine server processes every query through three stages, each in
//! its own module:
//!
//! 1. [`compile`] — submission, compilation memory growth through the
//!    class's gateway ladder, gateway timeouts;
//! 2. [`grant`] — the execution memory-grant request against the class's
//!    grant pool, grant-wait timeouts;
//! 3. [`execute`] — the execution model (CPU, spill inflation, buffer-pool
//!    I/O) and completion.
//!
//! [`QueryLifecycle`] is the explicit state machine tying the stages
//! together; illegal transitions panic, so stage bugs surface immediately
//! in the deterministic simulation. Cross-stage policy — failing a query
//! out of any stage, resuming ladder waiters, distributing broker budgets
//! to the per-class pools — lives here in the stage root.

pub mod compile;
pub mod execute;
pub mod grant;

use crate::config::{PolicyKind, WorkloadClassConfig};
use crate::metrics::FailureKind;
use crate::profile::CompileProfile;
use crate::server::Server;
use crate::trace::TraceEvent;
use throttledb_core::{GatewayLadder, ThrottleConfig};
use throttledb_executor::{GrantManager, GrantRequestId};
use throttledb_governor::{BreakerConfig, CircuitBreaker, CostPolicy, PidPolicy, Policy};
use throttledb_membroker::{Clerk, SubcomponentKind};
use throttledb_sim::SimTime;

/// Who submitted a query — and therefore where its completion / failure
/// feedback is routed.
///
/// The three variants are the server's three population models:
/// materialized closed-loop clients carry retry state in per-client
/// vectors; cohort-compressed clients carry it *here*, inside the query
/// and its pending submit events, so a million-user population costs no
/// per-client memory; open-loop sources have no retry chain at all — a
/// failed arrival is simply gone, as in any open system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueryOrigin {
    /// A materialized closed-loop client.
    Client {
        /// Client id (index into the server's per-client vectors).
        client: u32,
    },
    /// A cohort-compressed closed-loop client: same id space and same
    /// random draws as [`QueryOrigin::Client`], but the retry chain's
    /// attempt count and first-submission time travel with the query.
    Cohort {
        /// Client id (class membership derives from the class bounds).
        client: u32,
        /// Consecutive setbacks on the current logical query.
        attempts: u32,
        /// When the current retry chain first submitted.
        first_at: SimTime,
    },
    /// An open-loop arrival source (index into the server's source table).
    Source {
        /// Source index into `ServerConfig::arrivals`.
        source: u32,
    },
}

impl QueryOrigin {
    /// The client id recorded in traces and metrics. Source arrivals use a
    /// stable pseudo-client id above the closed-loop population
    /// (`clients + source`), so per-source streams stay distinguishable in
    /// a trace without a per-arrival id allocation.
    pub(crate) fn client_id(self, clients: u32) -> u32 {
        match self {
            QueryOrigin::Client { client } | QueryOrigin::Cohort { client, .. } => client,
            QueryOrigin::Source { source } => clients + source,
        }
    }
}

/// Where a query currently is in the compile → grant → execute pipeline.
///
/// Terminal outcomes (completion, failure) are represented by the query
/// leaving the server's query table, not by a lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryLifecycle {
    /// Holding a CPU, growing compilation memory step by step.
    Compiling,
    /// Blocked at gateway `level` of its class's ladder.
    WaitingAtGateway {
        /// The gateway level being waited for.
        level: usize,
    },
    /// Compiled; queued in its class's grant pool for execution memory.
    WaitingForGrant,
    /// Executing with a memory grant.
    Executing,
}

impl QueryLifecycle {
    /// Move to `next`, panicking on an illegal transition.
    pub fn advance(&mut self, next: QueryLifecycle) {
        assert!(
            self.can_advance(next),
            "illegal query lifecycle transition {self:?} -> {next:?}"
        );
        *self = next;
    }

    /// The legal transitions of the pipeline.
    fn can_advance(self, next: QueryLifecycle) -> bool {
        use QueryLifecycle::*;
        matches!(
            (self, next),
            (Compiling, WaitingAtGateway { .. })
                | (WaitingAtGateway { .. }, Compiling)
                | (Compiling, WaitingForGrant)
                | (Compiling, Executing)
                | (WaitingForGrant, Executing)
        )
    }

    /// The gateway level being waited for, if blocked at one.
    pub fn waiting_level(self) -> Option<usize> {
        match self {
            QueryLifecycle::WaitingAtGateway { level } => Some(level),
            _ => None,
        }
    }

    /// True while the query occupies a CPU compiling.
    pub fn is_compiling(self) -> bool {
        matches!(self, QueryLifecycle::Compiling)
    }
}

/// One in-flight query.
#[derive(Debug)]
pub(crate) struct Query {
    pub origin: QueryOrigin,
    /// Index into the server's class table.
    pub class: usize,
    /// The interned template this submission instantiated (copy-free; the
    /// profile table and plan cache key on it directly).
    pub template: throttledb_workload::TemplateId,
    pub profile: CompileProfile,
    /// The task handle issued by the class's admission policy.
    pub task: u64,
    pub compile_step: u32,
    pub compile_bytes: u64,
    pub lifecycle: QueryLifecycle,
    pub grant_id: Option<GrantRequestId>,
    pub grant_requested: u64,
}

/// Runtime state of one workload class: its admission pools plus counters.
pub(crate) struct ClassRuntime {
    pub spec: WorkloadClassConfig,
    /// This class's admission policy (gateway ladder, PID controller, or
    /// cost-based reservation — per [`PolicyKind`]).
    pub policy: Box<dyn Policy>,
    /// This class's execution memory-grant pool.
    pub grants: GrantManager,
    /// This class's circuit breaker; `None` when disabled, so fault-free
    /// configurations pay nothing on the submit path.
    pub breaker: Option<CircuitBreaker>,
    pub completed: u64,
    pub completed_after_warmup: u64,
    pub failed: u64,
    pub best_effort_plans: u64,
}

impl ClassRuntime {
    /// Build the runtime for `spec`: an admission policy of `kind` over the
    /// scaled throttle parameters and a grant pool over this class's slice
    /// of the execution budget, reporting to the shared execution clerk.
    ///
    /// A disabled throttle always runs the (inert) ladder regardless of
    /// `kind`, so `throttle.enabled = false` means "no admission control"
    /// under every policy — and stats keep the monitor-count shape the
    /// metrics layer expects (see [`PolicyKind::levels`]).
    ///
    /// `compile_budget` is this class's slice of the broker's compilation
    /// target (already share-scaled by the caller); only the cost-based
    /// policy consumes it.
    pub fn new(
        spec: WorkloadClassConfig,
        base_throttle: &ThrottleConfig,
        exec_budget: u64,
        exec_clerk: &Clerk,
        kind: PolicyKind,
        compile_budget: u64,
        breaker: BreakerConfig,
    ) -> Self {
        let throttle = spec.scaled_throttle(base_throttle);
        let wait_timeout = throttle
            .monitors
            .first()
            .map(|m| m.timeout)
            .unwrap_or_default();
        let policy: Box<dyn Policy> = if !throttle.enabled {
            Box::new(GatewayLadder::new(throttle))
        } else {
            match kind {
                PolicyKind::Ladder => Box::new(GatewayLadder::new(throttle)),
                PolicyKind::Pid => Box::new(PidPolicy::new(
                    throttle.cpus,
                    throttle.exempt_bytes,
                    wait_timeout,
                )),
                PolicyKind::CostBased => Box::new(CostPolicy::new(
                    compile_budget,
                    throttle.exempt_bytes,
                    wait_timeout,
                )),
            }
        };
        let grants = GrantManager::new(
            scaled_budget(exec_budget, spec.grant_fraction),
            Some(exec_clerk.clone()),
        );
        ClassRuntime {
            spec,
            policy,
            grants,
            breaker: breaker.enabled.then(|| CircuitBreaker::new(breaker)),
            completed: 0,
            completed_after_warmup: 0,
            failed: 0,
            best_effort_plans: 0,
        }
    }
}

/// `budget * fraction`, exact when the fraction is 1 (the default class).
pub(crate) fn scaled_budget(budget: u64, fraction: f64) -> u64 {
    if (fraction - 1.0).abs() < f64::EPSILON {
        budget
    } else {
        (budget as f64 * fraction) as u64
    }
}

impl Server {
    /// Resume admission waiters of `class` admitted by a release: unblock
    /// each query and schedule its next compile step immediately.
    pub(crate) fn resume_tasks(&mut self, class: usize, resumed: &[u64]) {
        for &task in resumed {
            if let Some(&qid) = self.task_to_query.get(&(class, task)) {
                if let Some(q) = self.queries.get_mut(&qid) {
                    q.lifecycle.advance(QueryLifecycle::Compiling);
                }
                self.running_cpu_tasks += 1;
                self.queue
                    .schedule(self.now, crate::server::Event::CompileStep { query: qid });
            }
        }
    }

    /// Release the admission-policy holdings of `(class, task)` and resume
    /// every admitted waiter, recycling the server's scratch buffer so the
    /// per-query release path does not allocate.
    pub(crate) fn finish_policy_task(&mut self, class: usize, task: u64) {
        let mut resumed = std::mem::take(&mut self.scratch_resumed);
        resumed.clear();
        self.classes[class]
            .policy
            .finish_into(task, self.now, &mut resumed);
        self.resume_tasks(class, &resumed);
        self.scratch_resumed = resumed;
    }

    /// Release the grant held by `(class, grant_id)` and start every
    /// admitted waiter, recycling the server's scratch buffer.
    pub(crate) fn release_grant(&mut self, class: usize, grant_id: GrantRequestId) {
        let mut admitted = std::mem::take(&mut self.scratch_admitted);
        admitted.clear();
        self.classes[class]
            .grants
            .release_at_into(grant_id, self.now, &mut admitted);
        self.start_admitted(class, &admitted);
        self.scratch_admitted = admitted;
    }

    /// Fail `id` out of whatever stage it is in: release its ladder and
    /// grant holdings (admitting waiters), record the failure, and schedule
    /// the client's retry — "those aborted queries likely need to be
    /// resubmitted to the system."
    pub(crate) fn fail_query(&mut self, id: u64, kind: FailureKind) {
        let Some(q) = self.queries.remove(&id) else {
            return;
        };
        self.compile_clerk.free(q.compile_bytes);
        self.task_to_query.remove(&(q.class, q.task));
        if q.lifecycle.is_compiling() {
            self.running_cpu_tasks = self.running_cpu_tasks.saturating_sub(1);
        }
        self.finish_policy_task(q.class, q.task);
        if let Some(grant_id) = q.grant_id {
            self.grant_to_query.remove(&(q.class, grant_id));
            self.release_grant(q.class, grant_id);
        }
        self.metrics.record_failure(self.now, kind);
        self.trace_push(TraceEvent::Failed {
            at: self.now,
            query: id,
            kind,
        });
        self.classes[q.class].failed += 1;
        self.breaker_record(q.class, false);
        self.reschedule_after_setback(q.origin);
    }

    /// Broker housekeeping: recalculate, tick every class admission policy
    /// (dynamic-threshold target, memory-pressure trend), redistribute the
    /// execution budget over the class grant pools, and squeeze the plan
    /// cache under pressure.
    pub(crate) fn on_broker_tick(&mut self) {
        let decisions = self.broker.recalculate(self.now);
        let constrained = decisions
            .iter()
            .any(|d| d.notification.target_bytes.is_some());
        let compile_target = if constrained {
            Some(self.broker.target_for_kind(SubcomponentKind::Compilation))
        } else {
            None
        };
        let exec_target = self.broker.target_for_kind(SubcomponentKind::Execution);
        // The broker's memory-pressure trend signal: predicted compilation
        // demand over the recalculation horizon, relative to the kind's
        // target. >1 means the sampled trend overshoots the entitlement —
        // feedback policies tighten before the memory is actually committed.
        let compile_goal = self.broker.target_for_kind(SubcomponentKind::Compilation);
        let pressure = self.broker.predicted_by_kind(SubcomponentKind::Compilation) as f64
            / compile_goal.max(1) as f64;
        // Each class throttles independently on its own compilation counts,
        // so the broker's compilation target must be split across classes
        // (by normalized client share) — handing every policy the full
        // target would let N classes admit N× the intended memory.
        let total_share: f64 = self.classes.iter().map(|c| c.spec.client_share).sum();
        let mut resumed = std::mem::take(&mut self.scratch_resumed);
        for idx in 0..self.classes.len() {
            let class = &mut self.classes[idx];
            let share = class.spec.client_share / total_share;
            resumed.clear();
            class.policy.tick(
                self.now,
                compile_target.map(|t| scaled_budget(t, share)),
                pressure,
                &mut resumed,
            );
            // Scenario knob × active grant-collapse faults (both 1.0 in
            // fair weather).
            class.grants.set_budget(scaled_budget(
                scaled_budget(exec_target, class.spec.grant_fraction),
                self.grant_budget_scale * self.fault_grant_scale,
            ));
            self.resume_tasks(idx, &resumed);
        }
        self.scratch_resumed = resumed;
        // The plan cache responds to pressure by shrinking toward its target.
        if let Some(target) = decisions
            .iter()
            .find(|d| d.notification.kind_of_component == SubcomponentKind::PlanCache)
            .and_then(|d| d.notification.target_bytes)
        {
            if self.plan_cache.used_bytes() > target {
                self.plan_cache.shrink_to(target);
            }
        }
        if self.now + self.config.broker_tick < throttledb_sim::SimTime::ZERO + self.config.duration
        {
            self.queue.schedule(
                self.now + self.config.broker_tick,
                crate::server::Event::BrokerTick,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_permits_the_pipeline_transitions() {
        let mut l = QueryLifecycle::Compiling;
        l.advance(QueryLifecycle::WaitingAtGateway { level: 1 });
        assert_eq!(l.waiting_level(), Some(1));
        l.advance(QueryLifecycle::Compiling);
        assert!(l.is_compiling());
        l.advance(QueryLifecycle::WaitingForGrant);
        l.advance(QueryLifecycle::Executing);
        assert_eq!(l.waiting_level(), None);
    }

    #[test]
    fn lifecycle_permits_direct_compile_to_execute() {
        let mut l = QueryLifecycle::Compiling;
        l.advance(QueryLifecycle::Executing);
        assert_eq!(l, QueryLifecycle::Executing);
    }

    #[test]
    #[should_panic(expected = "illegal query lifecycle transition")]
    fn lifecycle_rejects_skipping_backwards() {
        let mut l = QueryLifecycle::Executing;
        l.advance(QueryLifecycle::Compiling);
    }

    #[test]
    #[should_panic(expected = "illegal query lifecycle transition")]
    fn lifecycle_rejects_grant_wait_from_gateway_wait() {
        let mut l = QueryLifecycle::WaitingAtGateway { level: 0 };
        l.advance(QueryLifecycle::WaitingForGrant);
    }

    #[test]
    fn scaled_budget_is_exact_for_the_default_class() {
        assert_eq!(scaled_budget(12345, 1.0), 12345);
        assert_eq!(scaled_budget(1000, 0.25), 250);
    }
}
